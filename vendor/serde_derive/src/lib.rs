//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! value-tree serde shim (see `vendor/serde`).
//!
//! Parses the item's token stream directly (no `syn`/`quote`) and emits
//! impls of the shim's `Serialize::to_value` / `Deserialize::from_value`.
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (declaration-order object keys, honoring
//!   `#[serde(default)]` and implicit-`None` `Option` fields);
//! * tuple structs — one field is a newtype (transparent, matching
//!   `#[serde(transparent)]`), several serialize as an array;
//! * enums, externally tagged: unit variants as strings, newtype/tuple
//!   variants as `{"Variant": payload}`, struct variants as
//!   `{"Variant": {fields}}`.
//!
//! Generic items are not supported (none are derived in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` (render to a `serde::value::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` (rebuild from a `serde::value::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model --

struct Field {
    name: String,
    has_default: bool,
    is_option: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --------------------------------------------------------------- parser --

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute groups; returns true when one of them was
    /// `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                if attr_is_serde_default(&g.stream()) {
                    has_default = true;
                }
            }
        }
        has_default
    }

    /// Skips `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }
}

fn attr_is_serde_default(attr: &TokenStream) -> bool {
    let mut it = attr.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item { name, shape: Shape::Struct(fields) }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body: {other:?}"),
            };
            Item { name, shape: Shape::Enum(parse_variants(body)) }
        }
        other => panic!("derive shim supports struct/enum, found `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let has_default = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // consume the type: everything until a comma at angle-bracket depth 0
        let mut angle_depth = 0i32;
        let mut first_ty_token: Option<String> = None;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            let t = c.next().expect("peeked token");
            if first_ty_token.is_none() {
                first_ty_token = Some(t.to_string());
            }
        }
        let is_option = first_ty_token.as_deref() == Some("Option");
        fields.push(Field { name, has_default, is_option });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in body {
        any = true;
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs(); // e.g. #[default]
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // optional discriminant (`= expr`) is not supported with payloads we
        // care about; skip to the next comma
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push((name, fields));
    }
    variants
}

// -------------------------------------------------------------- codegen --

const VALUE: &str = "::serde::value::Value";
const MAP: &str = "::serde::value::Map";
const DE_ERR: &str = "::serde::value::DeError";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = format!("let mut map = {MAP}::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "map.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str(&format!("{VALUE}::Object(map)"));
            s
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{VALUE}::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => format!("{VALUE}::Null"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {VALUE}::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => {{\n\
                         let mut map = {MAP}::new();\n\
                         map.insert(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0));\n\
                         {VALUE}::Object(map)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut map = {MAP}::new();\n\
                             map.insert(\"{vname}\".to_string(), {VALUE}::Array(vec![{items}]));\n\
                             {VALUE}::Object(map)\n}}\n",
                            binds = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::new();
                        for f in fs {
                            inner.push_str(&format!(
                                "inner.insert(\"{n}\".to_string(), \
                                 ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut inner = {MAP}::new();\n\
                             {inner}\
                             let mut map = {MAP}::new();\n\
                             map.insert(\"{vname}\".to_string(), {VALUE}::Object(inner));\n\
                             {VALUE}::Object(map)\n}}\n",
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {VALUE} {{\n{body}\n}}\n}}\n"
    )
}

/// Field initializer for a named field pulled out of `map`.
fn named_field_init(f: &Field) -> String {
    let missing = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        // serde treats absent Option fields as None
        format!("::serde::Deserialize::from_value(&{VALUE}::Null)?")
    } else {
        format!("return Err({DE_ERR}::missing_field(\"{}\"))", f.name)
    };
    format!(
        "{n}: match map.get(\"{n}\") {{\n\
         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
         None => {missing},\n}}",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(named_field_init).collect();
            format!(
                "match value {{\n\
                 {VALUE}::Object(map) => Ok({name} {{\n{inits},\n}}),\n\
                 other => Err({DE_ERR}::type_mismatch(\"struct {name}\", other)),\n}}",
                inits = inits.join(",\n"),
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 {VALUE}::Array(items) if items.len() == {n} => \
                 Ok({name}({inits})),\n\
                 other => Err({DE_ERR}::type_mismatch(\"tuple struct {name}\", other)),\n}}",
                inits = inits.join(", "),
            )
        }
        Shape::Struct(Fields::Unit) => format!("{{ let _ = value; Ok({name}) }}"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => \
                         Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\n\
                             {VALUE}::Array(items) if items.len() == {n} => \
                             Ok({name}::{vname}({inits})),\n\
                             other => Err({DE_ERR}::type_mismatch(\
                             \"{n}-element array for variant {vname}\", other)),\n}},\n",
                            inits = inits.join(", "),
                        ));
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs.iter().map(named_field_init).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match payload {{\n\
                             {VALUE}::Object(map) => Ok({name}::{vname} {{\n{inits},\n}}),\n\
                             other => Err({DE_ERR}::type_mismatch(\
                             \"object for variant {vname}\", other)),\n}},\n",
                            inits = inits.join(",\n"),
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 {VALUE}::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err({DE_ERR}::new(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 {VALUE}::Object(map) if map.len() == 1 => {{\n\
                 let (tag, payload) = map.iter().next().expect(\"one entry\");\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err({DE_ERR}::new(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 other => Err({DE_ERR}::type_mismatch(\"enum {name}\", other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &{VALUE}) -> ::std::result::Result<Self, {DE_ERR}> {{\n\
         {body}\n}}\n}}\n"
    )
}
