//! Vendored subset of `parking_lot`, backed by `std::sync` primitives.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! Provides `Mutex`, `RwLock` and `Condvar` with parking_lot's
//! no-poisoning API: `lock()`/`read()`/`write()` return guards directly.
//! Poisoning is erased by recovering the inner guard from a poisoned
//! result — matching parking_lot, which has no poisoning at all.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, r) = self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replaces the guard behind `slot` by passing it through `f`.
///
/// std's condvar consumes and returns guards; parking_lot's takes `&mut`.
/// Bridging requires moving out of the `&mut` temporarily. A placeholder
/// guard is not constructible, so this uses the classic take-and-replace
/// with `ManuallyDrop` + raw pointer reads/writes, which is sound because
/// `f` (a condvar wait) always returns a live guard for the same mutex.
fn take_mut_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // if `f` unwound, `slot` would hold a dropped guard; abort instead of
    // risking a double unlock (f is a condvar wait and does not panic)
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let old = std::ptr::read(slot);
        let bomb = AbortOnUnwind;
        let new = f(old);
        std::mem::forget(bomb);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        t.join().unwrap();
    }
}
