//! Vendored minimal property-testing harness with a proptest-compatible
//! surface.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, integer/float range strategies,
//! `collection::vec`, `bool::ANY`, `num::u8::ANY`, `any::<T>()`, tuple
//! strategies, `.prop_map`, and `[a-z]{n,m}`-style string strategies.
//! Cases are generated from a deterministic per-test seed; there is no
//! shrinking — a failing case reports its inputs via the assertion
//! message instead.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic seed for a named test.
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A source of generated values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, gen: &mut Gen) -> O {
        (self.f)(self.inner.generate(gen))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (gen.next() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (gen.next() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = gen.unit_f64();
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                v as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(gen),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Simple `[X-Y]{n,m}`-style string strategies (`&str` literals act as
/// strategies, matching proptest's regex strings for the subset used here).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        match parse_simple_regex(self) {
            Some((chars, lo, hi)) => {
                let len = lo + (gen.below((hi - lo + 1) as u64) as usize);
                (0..len).map(|_| chars[gen.below(chars.len() as u64) as usize]).collect()
            }
            // not a recognized pattern: treat it as a literal
            None => (*self).to_string(),
        }
    }
}

/// Parses `[a-z]{lo,hi}` / `[a-z]{n}` / `[a-z]` into (alphabet, lo, hi).
fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((chars, 1, 1));
    }
    let inner = quant.strip_prefix('{')?.strip_suffix('}')?;
    match inner.split_once(',') {
        Some((lo, hi)) => {
            Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
        }
        None => {
            let n: usize = inner.trim().parse().ok()?;
            Some((chars, n, n))
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u8>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range integer strategy (`num::u8::ANY` and friends).
#[derive(Debug, Clone, Copy, Default)]
pub struct NumAny<T>(std::marker::PhantomData<T>);

macro_rules! num_any {
    ($($t:ty => $module:ident),*) => {$(
        impl Strategy for NumAny<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.next() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = NumAny<$t>;
            fn arbitrary() -> NumAny<$t> {
                NumAny(std::marker::PhantomData)
            }
        }
        /// Strategies for this integer type.
        pub mod $module {
            /// Any value of the type.
            pub const ANY: super::NumAny<$t> = super::NumAny(std::marker::PhantomData);
        }
    )*};
}

/// Numeric strategies (`proptest::num::u8::ANY`).
pub mod num {
    use super::{Arbitrary, Gen, NumAny, Strategy};
    num_any! {
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Arbitrary, Gen, Strategy};

    /// Strategy producing either boolean.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, gen: &mut Gen) -> bool {
            gen.next() & 1 == 1
        }
    }

    /// Any boolean.
    pub const ANY: Any = Any;

    impl Arbitrary for bool {
        type Strategy = Any;
        fn arbitrary() -> Any {
            Any
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + gen.below(span) as usize;
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])+ fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut gen = $crate::Gen::new($crate::test_seed(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut gen);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut gen = crate::Gen::new(7);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(5u32..17), &mut gen);
            assert!((5..17).contains(&v));
            let f = crate::Strategy::generate(&(-1.0f32..1.0), &mut gen);
            assert!((-1.0..1.0).contains(&f));
            let i = crate::Strategy::generate(&(-50i64..-10), &mut gen);
            assert!((-50..-10).contains(&i));
            let u = crate::Strategy::generate(&(0u8..=255), &mut gen);
            let _ = u; // full range: only checks no panic
        }
    }

    #[test]
    fn vec_and_regex_strategies() {
        let mut gen = crate::Gen::new(11);
        for _ in 0..100 {
            let v = crate::Strategy::generate(
                &crate::collection::vec(0usize..10, 2..5),
                &mut gen,
            );
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let s = crate::Strategy::generate(&"[a-z]{0,12}", &mut gen);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(
            x in 1usize..100,
            pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b)),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(x >= 1);
            prop_assert_eq!(pair.0 as usize + x - x, pair.0 as usize);
            let _ = flag;
            prop_assert!(x < 100, "x was {x}");
        }
    }
}
