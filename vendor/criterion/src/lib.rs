//! Vendored minimal Criterion-compatible benchmark harness.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! Supports the subset the workspace's benches use: `bench_function` with
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`, and
//! `Criterion::default().sample_size(n)`. Each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and prints the per-iteration
//! median and range — enough to keep the kernels honest without the full
//! statistical machinery.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver; collects timing samples for named functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a named benchmark and prints a summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        // warm-up + calibration: grow iteration count until one sample
        // takes ~2ms so short kernels aren't pure timer noise
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 2;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{name:<32} time: [{} {} {}] ({} samples x {} iters)",
            format_time(lo),
            format_time(median),
            format_time(hi),
            self.sample_size,
            bencher.iters,
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Re-export for compatibility with criterion's prelude habit.
pub use std::hint::black_box;

/// Declares a benchmark group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
