//! Vendored serialization framework with a serde-compatible surface.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! Instead of serde's streaming serializer/visitor architecture, this
//! implementation converts through an in-memory [`value::Value`] tree —
//! `Serialize` renders to a `Value`, `Deserialize` reads back from one.
//! The `serde_json` vendor crate shares the same `Value`, so derived
//! types round-trip through JSON exactly like they would with real serde
//! for the representations this workspace uses (externally-tagged enums,
//! struct maps in declaration order, newtype transparency).

#![warn(missing_docs)]

pub mod value;

use value::{DeError, Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Fails when the tree's shape or types don't match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Module alias so `serde::de::Error`-style paths keep working.
pub mod de {
    pub use crate::value::DeError as Error;

    /// Owned deserialization (all our `Deserialize` impls are owned).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => Ok(map.clone()),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::type_mismatch(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "number {n} out of range for {}",
                    stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::type_mismatch(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "number {n} out of range for {}",
                    stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // widen like serde_json: f32 is serialized via f64
        Value::Number(Number::from_f64_lossy(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::type_mismatch("f32", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64_lossy(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::type_mismatch("f64", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::type_mismatch("char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::type_mismatch("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::type_mismatch("3-tuple", other)),
        }
    }
}

/// Types usable as JSON object keys (strings and integers, which
/// serde_json renders as strings).
pub trait MapKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    ///
    /// # Errors
    ///
    /// Fails when the string doesn't parse as this key type.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::new(format!(
                        "invalid {} object key `{key}`",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        // sort for a stable rendering, like serde_json's BTreeMap-backed Map
        let mut entries: Vec<(String, &V)> =
            self.iter().map(|(k, v)| (k.to_key(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k, v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_key(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}
