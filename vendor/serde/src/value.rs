//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Map),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Convert to `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Convert to `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Convert to `i64` if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` when this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` when this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` when this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` when this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Looks up `key` in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Writes compact JSON into `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes two-space-indented JSON into `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}

impl PartialEq<f32> for Value {
    fn eq(&self, other: &f32) -> bool {
        *self == f64::from(*other)
    }
}

macro_rules! value_eq_signed {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}
value_eq_signed!(i8, i16, i32, i64, isize);

macro_rules! value_eq_unsigned {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}
value_eq_unsigned!(u8, u16, u32, u64, usize);

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::from_f64_lossy(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::from_f64_lossy(f64::from(f)))
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::from_u64(n as u64))
            }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::from_i64(n as i64))
            }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float (NaN/inf render as `null`, like serde_json).
    Float(f64),
}

impl Number {
    /// A number from a `u64`.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// A number from an `i64` (non-negative values normalize to `PosInt`).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// A finite float, or `None` (serde_json-compatible constructor).
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number::Float(f))
    }

    /// A float, keeping non-finite values (rendered as `null`).
    pub fn from_f64_lossy(f: f64) -> Number {
        Number::Float(f)
    }

    /// This number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(n) => Some(*n as f64),
            Number::NegInt(n) => Some(*n as f64),
            Number::Float(f) => Some(*f),
        }
    }

    /// This number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            _ => None,
        }
    }

    /// This number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(*n).ok(),
            Number::NegInt(n) => Some(*n),
            Number::Float(_) => None,
        }
    }

    /// `true` for floats.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }

    /// `true` for `u64`-representable integers.
    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if !x.is_finite() {
                    // serde_json refuses non-finite floats; render as null
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 1e16 {
                    // keep the ".0" so floats stay floats on re-parse
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An object: key/value pairs preserving insertion order (so derived
/// structs serialize fields in declaration order, like real serde_json).
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `key` → `value`, replacing and returning any existing value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Order-insensitive equality, matching serde_json's sorted-map
    /// semantics.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl std::ops::Index<&str> for Map {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Deserialization (or parse) error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// An "expected X, found Y" error.
    pub fn type_mismatch(expected: &str, found: &Value) -> DeError {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError::new(format!("expected {expected}, found {kind}"))
    }

    /// A "missing field" error, like serde's.
    pub fn missing_field(name: &str) -> DeError {
        DeError::new(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
