//! Generator implementations. Only `StdRng` is provided: a ChaCha12 block
//! cipher in counter mode, the same algorithm the real `rand` 0.8 uses.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Words buffered per refill (4 ChaCha blocks, like rand_chacha).
const BUF_WORDS: usize = 64;

/// The standard RNG: ChaCha12, seeded explicitly.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// 8 key words from the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12-13 of the ChaCha state).
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn block(&self, counter: u64, out: &mut [u32; BLOCK_WORDS]) {
        // "expand 32-byte k"
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        // 12 rounds = 6 double rounds
        for _ in 0..6 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        *out = state;
    }

    fn refill(&mut self) {
        let mut block = [0u32; BLOCK_WORDS];
        for i in 0..(BUF_WORDS / BLOCK_WORDS) {
            self.block(self.counter, &mut block);
            self.counter = self.counter.wrapping_add(1);
            self.buf[i * BLOCK_WORDS..(i + 1) * BLOCK_WORDS].copy_from_slice(&block);
        }
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        // combine two consecutive u32s (low word first), spanning a refill
        // boundary if needed — BlockRng's read_u64 semantics
        if self.index >= BUF_WORDS {
            self.refill();
        }
        if self.index == BUF_WORDS - 1 {
            let low = self.buf[BUF_WORDS - 1];
            self.refill();
            let high = self.buf[0];
            self.index = 1;
            (u64::from(high) << 32) | u64::from(low)
        } else {
            let low = self.buf[self.index];
            let high = self.buf[self.index + 1];
            self.index += 2;
            (u64::from(high) << 32) | u64::from(low)
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}
