//! The standard distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// Types that can produce values of type `T` given randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int_32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_int_64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int_32!(u8, u16, u32, i8, i16, i32);
standard_int_64!(u64, i64, usize, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // one bit, like rand 0.8 (i32 sign test)
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 bits of precision, multiply-based: [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, via widening multiply + rejection for
    //! integers and the `[1, 2)` mantissa trick for floats.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Marker for types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self)
            -> Self;
    }

    /// Range argument accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_range(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = (*self.start(), *self.end());
            assert!(low <= high, "gen_range: empty inclusive range");
            T::sample_range_inclusive(rng, low, high)
        }
    }

    #[inline]
    fn sample_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
        // range == 0 encodes the full 2^32 range
        if range == 0 {
            return rng.next_u32();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let m = u64::from(v) * u64::from(range);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return hi;
            }
        }
    }

    #[inline]
    fn sample_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
        if range == 0 {
            return rng.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let m = u128::from(v) * u128::from(range);
            let (hi, lo) = ((m >> 64) as u64, m as u64);
            if lo <= zone {
                return hi;
            }
        }
    }

    macro_rules! uniform_int {
        ($($t:ty => $unsigned:ty, $sample:ident),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                    let range = high.wrapping_sub(low) as $unsigned;
                    low.wrapping_add($sample(rng, range.into()) as $t)
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: $t,
                    high: $t,
                ) -> $t {
                    // widen before the +1 so only a genuine full-u32 range
                    // hits the range==0 "whole type" encoding
                    let range = (high.wrapping_sub(low) as $unsigned) as u64 + 1;
                    if range > u32::MAX as u64 {
                        low.wrapping_add(rng.next_u32() as $t)
                    } else {
                        low.wrapping_add($sample(rng, range as u32) as $t)
                    }
                }
            }
        )*};
    }

    uniform_int!(
        u8 => u8, sample_u32,
        u16 => u16, sample_u32,
        u32 => u32, sample_u32,
        i8 => u8, sample_u32,
        i16 => u16, sample_u32,
        i32 => u32, sample_u32,
    );

    macro_rules! uniform_int_64 {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                    let range = high.wrapping_sub(low) as u64;
                    low.wrapping_add(sample_u64(rng, range) as $t)
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: $t,
                    high: $t,
                ) -> $t {
                    let range = (high.wrapping_sub(low) as u64).wrapping_add(1);
                    low.wrapping_add(sample_u64(rng, range) as $t)
                }
            }
        )*};
    }

    uniform_int_64!(u64, i64, usize, isize);

    macro_rules! uniform_float {
        ($($t:ty => $next:ident, $shift:expr, $one_bits:expr),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                    let scale = high - low;
                    let offset = low - scale;
                    // [1, 2) via mantissa bits, then scale
                    let value1_2 = <$t>::from_bits((rng.$next() >> $shift) | $one_bits);
                    value1_2 * scale + offset
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: $t,
                    high: $t,
                ) -> $t {
                    // the closed/open distinction is below sampling noise for
                    // the workspace's uses; clamp keeps the contract honest
                    Self::sample_range(rng, low, high).min(high)
                }
            }
        )*};
    }

    uniform_float!(
        f32 => next_u32, 9, 0x3f80_0000u32,
        f64 => next_u64, 12, 0x3ff0_0000_0000_0000u64,
    );
}
