//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds hermetically (no network, no registry), so the
//! handful of external crates it uses are vendored as minimal API-compatible
//! implementations under `vendor/` and wired in with `[patch.crates-io]`.
//!
//! The subset implemented here is exactly what the workspace uses:
//! `rngs::StdRng` (a ChaCha12 generator, like the real crate), the
//! `RngCore`/`SeedableRng`/`Rng` traits with `gen`, `gen_range` and
//! `gen_bool`, and `seq::SliceRandom::shuffle`. The generator, the
//! `seed_from_u64` key-expansion (PCG32) and the uniform-range sampling
//! (widening-multiply with rejection) follow the upstream algorithms so
//! seeded streams behave statistically identically; all consumers in this
//! workspace only rely on determinism-for-a-fixed-seed, which holds by
//! construction.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::Standard;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically `[u8; N]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance, expanding `state` into a full seed with
    /// PCG32 (the same expansion rand_core 0.6 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing helpers layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&Standard, self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // 64-bit fixed-point comparison, like rand's Bernoulli
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc, "different seeds must diverge");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..2000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f as f64;
        }
        let mean = sum / 2000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} suspicious");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
