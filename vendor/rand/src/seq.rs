//! Sequence helpers: in-place Fisher–Yates shuffle.

use crate::{Rng, RngCore};

/// Randomization helpers for slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, back to front — the same
    /// traversal rand 0.8 uses, including its 32-bit index fast path).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    // `&mut R` is Sized and forwards RngCore, satisfying Rng's bounds
    let mut by_ref = &mut *rng;
    if ubound <= u32::MAX as usize {
        Rng::gen_range(&mut by_ref, 0..ubound as u32) as usize
    } else {
        Rng::gen_range(&mut by_ref, 0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
