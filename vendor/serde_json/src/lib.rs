//! Vendored JSON text layer with a serde_json-compatible surface.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! Shares the [`Value`] tree with the vendored `serde` crate, so derived
//! types print and parse exactly like the subset of real serde_json this
//! workspace relies on: compact `to_string`, two-space `to_string_pretty`,
//! a full JSON parser behind `from_str`, and the `json!` literal macro.

#![warn(missing_docs)]

pub use serde::value::{Number, Value};

/// Object type; the generic parameters exist only for signature
/// compatibility (`serde_json::Map<String, Value>`), and only the
/// `(String, Value)` instantiation exists.
pub type Map<K = String, V = Value> = <(K, V) as ObjectKind>::Map;

/// Maps `Map<K, V>` type parameters onto the one real object type.
pub trait ObjectKind {
    /// The concrete map type.
    type Map;
}

impl ObjectKind for (String, Value) {
    type Map = serde::value::Map;
}

/// JSON serialization/deserialization error.
pub use serde::value::DeError as Error;

#[doc(hidden)]
pub use serde::value::Map as __Map;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for this implementation; the `Result` keeps the real
/// serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for this implementation (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for this implementation.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Fails when the tree's shape doesn't match `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses a JSON document into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or when the document's shape doesn't match `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::__Map::new();
        $crate::json_object!(map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([$($elems:expr,)*]) => {
        $crate::Value::Array(vec![$($elems,)*])
    };
    ([$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    ([$($elems:expr,)*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_array!([$($elems,)* $crate::json!({$($map)*}),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_array!([$($elems,)* $crate::json!([$($arr)*]),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_array!([$($elems,)* $crate::__to_value(&$next),] $($rest)*)
    };
    ([$($elems:expr,)*] $last:expr) => {
        $crate::json_array!([$($elems,)* $crate::__to_value(&$last),])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($map:ident ()) => {};
    ($map:ident () $key:tt : $($rest:tt)*) => {
        $crate::json_object_value!($map [$key] $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    ($map:ident [$key:tt] null $(, $($rest:tt)*)?) => {
        let _ = $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_object!($map () $($($rest)*)?);
    };
    ($map:ident [$key:tt] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        let _ = $map.insert(($key).to_string(), $crate::json!({$($inner)*}));
        $crate::json_object!($map () $($($rest)*)?);
    };
    ($map:ident [$key:tt] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        let _ = $map.insert(($key).to_string(), $crate::json!([$($inner)*]));
        $crate::json_object!($map () $($($rest)*)?);
    };
    ($map:ident [$key:tt] $value:expr , $($rest:tt)*) => {
        let _ = $map.insert(($key).to_string(), $crate::__to_value(&$value));
        $crate::json_object!($map () $($rest)*);
    };
    ($map:ident [$key:tt] $value:expr) => {
        let _ = $map.insert(($key).to_string(), $crate::__to_value(&$value));
    };
}

// --------------------------------------------------------------- parser --

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { input: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::value::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // surrogate pair
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {}", self.pos))),
                },
                Some(c) if c < 0x80 => {
                    if c < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(c as char);
                }
                Some(c) => {
                    // multi-byte UTF-8: the input is a valid &str, so re-read
                    // the whole character from the source
                    let start = self.pos - 1;
                    let width = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let text = std::str::from_utf8(&self.input[start..start + width])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(text);
                    self.pos = start + width;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("number bytes are ascii");
        let number = if is_float {
            let f: f64 =
                text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            Number::from_f64_lossy(f)
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(n) => Number::from_i64(n),
                Err(_) => Number::from_f64_lossy(
                    text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::from_u64(n),
                Err(_) => Number::from_f64_lossy(
                    text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_json() {
        let text = r#"{"name":"kws","count":3,"ratio":0.5,"tags":["a","b"],"none":null,"ok":true}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["name"], "kws");
        assert_eq!(value["count"], 3);
        assert_eq!(value["ratio"], 0.5);
        assert_eq!(value["tags"][1], "b");
        assert!(value["none"].is_null());
        assert_eq!(value["ok"], true);
        assert_eq!(to_string(&value).unwrap(), text);
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let id = 7u32;
        let v = json!({
            "success": true,
            "inner": { "list": [1, 2.5, null], "label": "x" },
            "id": id,
        });
        assert_eq!(v["success"], true);
        assert_eq!(v["inner"]["list"][0], 1);
        assert_eq!(v["inner"]["list"][1], 2.5);
        assert!(v["inner"]["list"][2].is_null());
        assert_eq!(v["inner"]["label"], "x");
        assert_eq!(v["id"], 7);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""a\n\t\"\\ é 😀 ü""#).unwrap();
        assert_eq!(v, "a\n\t\"\\ \u{e9} \u{1f600} ü");
    }

    #[test]
    fn float_formatting_keeps_floats_floaty() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("1.0").unwrap();
        assert!((back - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": 1,}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
