//! Vendored subset of the `bytes` crate: cheaply-cloneable byte buffers
//! with little-endian cursor reads/writes.
//!
//! Part of the workspace's hermetic-build vendor set (see `vendor/rand`).
//! `Bytes` is an `Arc<[u8]>` window advanced by [`Buf`] reads; `BytesMut`
//! is a growable buffer written through [`BufMut`].

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads and returns the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `i16`.
    fn get_i16_le(&mut self) -> i16 {
        self.get_u16_le() as i16
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_reads() {
        let mut out = BytesMut::with_capacity(8);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u16_le(0x1234);
        out.put_i16_le(-2);
        let mut buf = Bytes::copy_from_slice(&out.to_vec());
        assert_eq!(buf.remaining(), 8);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_i16_le(), -2);
        assert!(buf.is_empty());
    }

    #[test]
    fn copy_to_bytes_windows() {
        let mut buf = Bytes::copy_from_slice(b"RIFFrest");
        let tag = buf.copy_to_bytes(4);
        assert_eq!(&tag[..], b"RIFF");
        assert_eq!(buf.chunk(), b"rest");
        buf.advance(1);
        assert_eq!(buf.remaining(), 3);
    }
}
