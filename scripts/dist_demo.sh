#!/usr/bin/env bash
# Runs the distributed-training bench (worker count × injected crash
# rate, seeded fault scripts on a virtual clock) and sanity-checks the
# JSONL rows it writes: the full sweep grid is present and every row
# reports weights_identical:true — the bin itself asserts each cell's
# final weight checksum equals the no-fault serial-SGD reference, so a
# determinism regression fails the run before the rows are written.
#
# EI_DIST_FAULT_SEED selects the fault script (default 42).
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${EI_DIST_FAULT_SEED:-42}"
echo "==> EDGELAB_QUICK=1 EI_DIST_FAULT_SEED=$seed cargo run --release -p ei-bench --bin dist_training"
EDGELAB_QUICK=1 EI_DIST_FAULT_SEED="$seed" cargo run --release -p ei-bench --bin dist_training

echo "==> checking results/dist_training.json"
out=results/dist_training.json
for workers in 1 2 4; do
  for rate in 0 0.15 0.3; do
    marker="\"workers\":$workers,\"crash_rate\":$rate,"
    if ! grep -qF -- "$marker" "$out"; then
      echo "MISSING from $out: $marker" >&2
      exit 1
    fi
    echo "  found workers=$workers crash_rate=$rate"
  done
done
if grep -qF -- '"weights_identical":false' "$out"; then
  echo "a distributed run diverged from the serial-SGD reference" >&2
  exit 1
fi
if grep -vqF '"weights_identical":true' "$out"; then
  echo "a row is missing the weights_identical assertion" >&2
  exit 1
fi

echo "==> dist demo passed"
