#!/usr/bin/env bash
# Runs the always-on telemetry bench (quiet-path overhead + fault-dump
# determinism on a virtual clock) and sanity-checks the JSONL rows it
# writes: the quiet-path row must report overhead_ratio <= 1.05 and the
# fault-dump row dumps_identical:true — the bin itself asserts both, so
# a regression fails the run before the rows are written.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p ei-bench --bin obs_overhead"
cargo run --release -p ei-bench --bin obs_overhead

echo "==> checking results/obs_overhead.json"
out=results/obs_overhead.json
for marker in '"kind":"quiet_path"' '"kind":"fault_dumps"'; do
  if ! grep -qF -- "$marker" "$out"; then
    echo "MISSING from $out: $marker" >&2
    exit 1
  fi
  echo "  found $marker"
done
if ! grep -qF -- '"dumps_identical":true' "$out"; then
  echo "flight dumps diverged across pool widths or runs" >&2
  exit 1
fi
awk -F'"overhead_ratio":' '
  NF > 1 {
    split($2, a, /[,}]/); if (a[1] + 0 > 1.05) { bad = 1 }
  }
  END { exit bad }' "$out" || {
    echo "always-on telemetry overhead exceeded 1.05x" >&2
    exit 1
  }

echo "==> obs demo passed"
