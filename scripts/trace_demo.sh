#!/usr/bin/env bash
# Runs the traced MLOps pipeline example and sanity-checks that the
# collected JSONL trace contains records from every instrumented layer:
# job lifecycle, flow stages, per-epoch training, and per-layer profiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release --example mlops_pipeline"
out="$(cargo run --release --example mlops_pipeline)"

echo "==> checking the trace for records from every layer"
for marker in \
  '"type":"span_start"' \
  '"type":"span_end"' \
  'job.queued' \
  'job.finished' \
  'flow.stage' \
  'train.epoch' \
  'profile.layer' \
  'profile.inference_ms'; do
  if ! grep -qF -- "$marker" <<<"$out"; then
    echo "MISSING from trace output: $marker" >&2
    exit 1
  fi
  echo "  found $marker"
done

echo "==> trace demo passed"
