#!/usr/bin/env bash
# Smoke-runs the platform-scale load harness over the sharded platform
# store and sanity-checks the JSONL rows it writes: every (shards,
# threads) cell of the {1,4,16,64} x {1,4} sweep is present, every row
# proves the final platform state byte-identical across shard counts
# (state_identical) AND across a racing replay from real concurrent
# threads (racing_state_identical), per-stripe artifact-cache hit rates
# are reported, the 16-shard saturation throughput at 4 modeled workers
# is at least 2x the 1-shard figure, and the 16-stripe artifact cache
# beats the single stripe by at least 1.5x at 4 workers. The bench runs
# the whole sweep twice and asserts byte-for-byte reproducibility
# before writing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin platform_scale"
EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin platform_scale

echo "==> checking results/platform_scale.json"
out=results/platform_scale.json
for shards in 1 4 16 64; do
  for threads in 1 4; do
    marker="\"shards\":$shards,\"threads\":$threads"
    if ! grep -qF -- "$marker" "$out"; then
      echo "MISSING from $out: $marker" >&2
      exit 1
    fi
  done
  echo "  found both thread widths for $shards shard(s)"
done
if grep -qF -- '"state_identical":false' "$out"; then
  echo "platform state diverged across shard counts" >&2
  exit 1
fi
echo "  state_identical on every row"
awk '
  /"shards":1,"threads":4/ && /"throughput_ops_per_s":/ {
    split($0, a, /"throughput_ops_per_s":/); split(a[2], b, /[,}]/); base = b[1] + 0
  }
  /"shards":16,"threads":4/ && /"throughput_ops_per_s":/ {
    split($0, a, /"throughput_ops_per_s":/); split(a[2], b, /[,}]/); wide = b[1] + 0
  }
  END { exit (base > 0 && wide >= 2 * base) ? 0 : 1 }' "$out" || {
    echo "16-shard throughput is not >= 2x the 1-shard figure at 4 workers" >&2
    exit 1
  }
echo "  16 shards >= 2x 1 shard at 4 modeled workers"
if grep -qF -- '"racing_state_identical":false' "$out"; then
  echo "a racing replay diverged from the serial reference" >&2
  exit 1
fi
if ! grep -qF -- '"racing_state_identical":true' "$out"; then
  echo "no row proves racing_state_identical:true" >&2
  exit 1
fi
echo "  racing_state_identical on every racing row"
awk -F'"cache_speedup_16_over_1_at_4_threads":' '
  NF > 1 {
    split($2, a, /[,}]/); if (a[1] + 0 < 1.5) { bad = 1 }; seen = 1
  }
  END { exit (seen && !bad) ? 0 : 1 }' "$out" || {
    echo "16-stripe cache speedup missing or below 1.5x at 4 workers" >&2
    exit 1
  }
echo "  16-stripe artifact cache >= 1.5x 1 stripe at 4 workers"
for field in '"summary":true' '"monotone_throughput":true' '"occupancy_skew":' \
  '"cache_shard_hit_rates":' '"cache_hit_rate":'; do
  if ! grep -qF -- "$field" "$out"; then
    echo "MISSING from $out: $field" >&2
    exit 1
  fi
  echo "  found $field"
done

echo "==> shard demo passed"
