#!/usr/bin/env bash
# Smoke-runs the multi-tenant serving bench with a shortened trace and
# sanity-checks the JSONL rows it writes: every tenant/engine pair is
# present, the summary row carries the cache and throughput fields, and
# the trace stayed byte-for-byte reproducible (the bench replays it twice
# and asserts equality before writing).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin serving"
EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin serving

echo "==> checking results/serving.json"
out=results/serving.json
for tenant in alpha beta gamma; do
  for engine in TFLM EON; do
    marker="\"tenant\":\"$tenant\",\"engine\":\"$engine\""
    if ! grep -qF -- "$marker" "$out"; then
      echo "MISSING from $out: $marker" >&2
      exit 1
    fi
    echo "  found $marker"
  done
done
for field in '"summary":true' '"throughput_rps":' '"cache_hit_rate":' '"cold_hit_speedup":'; do
  if ! grep -qF -- "$field" "$out"; then
    echo "MISSING from $out: $field" >&2
    exit 1
  fi
  echo "  found $field"
done

echo "==> serving demo passed"
