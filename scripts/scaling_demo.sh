#!/usr/bin/env bash
# Smoke-runs the parallel-scaling bench with shrunk workloads and
# sanity-checks the JSONL rows it writes: every workload/mode pair is
# present, and the tuner report stayed byte-identical across thread
# counts (report_identical:false would trip the bench's own assert, but
# check here too so a refactor can't silently drop the field).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin scaling"
EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin scaling

echo "==> checking results/parallel_scaling.json"
out=results/parallel_scaling.json
for marker in \
  '"workload":"tuner","mode":"cpu"' \
  '"workload":"tuner","mode":"modeled_service"' \
  '"workload":"dsp","mode":"cpu"' \
  '"report_identical":true'; do
  if ! grep -qF -- "$marker" "$out"; then
    echo "MISSING from $out: $marker" >&2
    exit 1
  fi
  echo "  found $marker"
done
if grep -qF -- '"report_identical":false' "$out"; then
  echo "parallel tuner report diverged from serial" >&2
  exit 1
fi

echo "==> scaling demo passed"
