#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (EI_THREADS=1, forced-serial pool)"
EI_THREADS=1 cargo test -q

echo "==> cargo test -q (EI_THREADS=4, parallel pool)"
EI_THREADS=4 cargo test -q

echo "==> serving integration suite (EI_THREADS=1 and 4)"
EI_THREADS=1 cargo test -q --test serving
EI_THREADS=4 cargo test -q --test serving

echo "==> cargo test --doc"
cargo test --doc

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> results/*.json rows carry schema_version"
if compgen -G "results/*.json" > /dev/null; then
  for f in results/*.json; do
    if grep -vqF '"schema_version":' "$f"; then
      echo "row without schema_version in $f" >&2
      exit 1
    fi
    echo "  ok $f"
  done
else
  echo "  (no results/*.json yet — run the bench binaries to generate them)"
fi

echo "==> all checks passed"
