#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (EI_THREADS=1, forced-serial pool)"
EI_THREADS=1 cargo test -q

echo "==> cargo test -q (EI_THREADS=4, parallel pool)"
EI_THREADS=4 cargo test -q

echo "==> cargo test --doc"
cargo test --doc

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
