#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (EI_THREADS=1, forced-serial pool)"
EI_THREADS=1 cargo test -q

echo "==> cargo test -q (EI_THREADS=4, parallel pool)"
EI_THREADS=4 cargo test -q

echo "==> serving integration suite (EI_THREADS=1 and 4)"
EI_THREADS=1 cargo test -q --test serving
EI_THREADS=4 cargo test -q --test serving

echo "==> kernel parity suite (EI_THREADS=1 and 4)"
EI_THREADS=1 cargo test -q --test kernel_parity
EI_THREADS=4 cargo test -q --test kernel_parity

echo "==> distributed training suite (EI_THREADS=1 and 4 × two fault seeds)"
for seed in 42 1337; do
  EI_THREADS=1 EI_DIST_FAULT_SEED=$seed cargo test -q --test dist_training
  EI_THREADS=4 EI_DIST_FAULT_SEED=$seed cargo test -q --test dist_training
done

echo "==> observability suite (EI_THREADS=1 and 4)"
EI_THREADS=1 cargo test -q --test observability
EI_THREADS=4 cargo test -q --test observability

echo "==> streaming suite (EI_THREADS=1 and 4)"
EI_THREADS=1 cargo test -q --test streaming
EI_THREADS=4 cargo test -q --test streaming

echo "==> shard-invariance suite (EI_THREADS=1 and 4 × EI_SHARDS=1 and 16)"
for shards in 1 16; do
  EI_THREADS=1 EI_SHARDS=$shards cargo test -q --test shard_invariance
  EI_THREADS=4 EI_SHARDS=$shards cargo test -q --test shard_invariance
done

echo "==> cargo test --doc"
cargo test --doc

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> results/*.json rows carry schema_version"
if compgen -G "results/*.json" > /dev/null; then
  for f in results/*.json; do
    if grep -vqF '"schema_version":' "$f"; then
      echo "row without schema_version in $f" >&2
      exit 1
    fi
    echo "  ok $f"
  done
else
  echo "  (no results/*.json yet — run the bench binaries to generate them)"
fi

echo "==> results/kernels.json kernels are bitwise-equal and ≥2x on dense"
if [ -f results/kernels.json ]; then
  for marker in \
    '"shape":"dense_mlp","kernel":"blocked"' \
    '"shape":"dense_mlp_int8","kernel":"blocked_fused"' \
    '"shape":"kws_conv","kernel":"blocked_par"' \
    '"shape":"vision_depthwise","kernel":"blocked_par"'; do
    if ! grep -qF -- "$marker" results/kernels.json; then
      echo "MISSING from results/kernels.json: $marker" >&2
      exit 1
    fi
  done
  if grep -qF -- '"bitwise_equal":false' results/kernels.json; then
    echo "a kernel variant diverged from the naive reference" >&2
    exit 1
  fi
  awk -F'"speedup_vs_naive":' '
    /"shape":"dense_mlp","kernel":"blocked"/ {
      split($2, a, ","); if (a[1] + 0 < 2.0) { bad = 1 }
    }
    END { exit bad }' results/kernels.json || {
      echo "dense_mlp blocked speedup dropped below 2x" >&2
      exit 1
    }
  awk -F'"speedup_vs_naive":' '
    /"kernel":"blocked_par"/ {
      # single-core CI hosts put parallel rows at ~1.0x; a 0.9 floor
      # absorbs timer noise while catching the 0.88x im2col regression
      split($2, a, ","); if (a[1] + 0 < 0.9) { bad = 1 }
    }
    END { exit bad }' results/kernels.json || {
      echo "a blocked_par kernel regressed below 0.9x naive" >&2
      exit 1
    }
  echo "  ok results/kernels.json"
else
  echo "  (no results/kernels.json yet — run scripts/kernels_demo.sh)"
fi

echo "==> results/dist_training.json weights are bitwise-identical"
if [ -f results/dist_training.json ]; then
  if grep -vqF '"schema_version":' results/dist_training.json; then
    echo "row without schema_version in results/dist_training.json" >&2
    exit 1
  fi
  if grep -vqF '"weights_identical":true' results/dist_training.json; then
    echo "a row is missing weights_identical:true" >&2
    exit 1
  fi
  if grep -qF -- '"weights_identical":false' results/dist_training.json; then
    echo "a distributed run diverged from the serial-SGD reference" >&2
    exit 1
  fi
  echo "  ok results/dist_training.json"
else
  echo "  (no results/dist_training.json yet — run scripts/dist_demo.sh)"
fi

echo "==> results/obs_overhead.json telemetry stays under 5% with identical dumps"
if [ -f results/obs_overhead.json ]; then
  if grep -vqF '"schema_version":' results/obs_overhead.json; then
    echo "row without schema_version in results/obs_overhead.json" >&2
    exit 1
  fi
  if ! grep -qF -- '"dumps_identical":true' results/obs_overhead.json; then
    echo "flight dumps diverged across pool widths or runs" >&2
    exit 1
  fi
  awk -F'"overhead_ratio":' '
    NF > 1 {
      split($2, a, /[,}]/); if (a[1] + 0 > 1.05) { bad = 1 }
    }
    END { exit bad }' results/obs_overhead.json || {
      echo "always-on telemetry overhead exceeded 1.05x" >&2
      exit 1
    }
  echo "  ok results/obs_overhead.json"
else
  echo "  (no results/obs_overhead.json yet — run scripts/obs_demo.sh)"
fi

echo "==> results/streaming.json features are bitwise-identical with bounded staleness"
if [ -f results/streaming.json ]; then
  if grep -vqF '"schema_version":' results/streaming.json; then
    echo "row without schema_version in results/streaming.json" >&2
    exit 1
  fi
  if ! grep -qF -- '"features_identical":true' results/streaming.json; then
    echo "no row proves features_identical:true" >&2
    exit 1
  fi
  if grep -qF -- '"features_identical":false' results/streaming.json; then
    echo "incremental streaming DSP diverged from the batch oracle" >&2
    exit 1
  fi
  awk -F'"staleness_p99_ms":' '
    NF > 1 {
      # drop-oldest backpressure bounds staleness even when overloaded;
      # the ceiling catches a broken shed policy letting backlogs grow
      split($2, a, /[,}]/); if (a[1] + 0 > 500) { bad = 1 }
    }
    END { exit bad }' results/streaming.json || {
      echo "p99 window staleness exceeded the 500 ms ceiling" >&2
      exit 1
    }
  echo "  ok results/streaming.json"
else
  echo "  (no results/streaming.json yet — run scripts/stream_demo.sh)"
fi

echo "==> results/platform_scale.json state is shard-count invariant and throughput scales"
if [ -f results/platform_scale.json ]; then
  if grep -vqF '"schema_version":' results/platform_scale.json; then
    echo "row without schema_version in results/platform_scale.json" >&2
    exit 1
  fi
  if ! grep -qF -- '"state_identical":true' results/platform_scale.json; then
    echo "no row proves state_identical:true" >&2
    exit 1
  fi
  if grep -qF -- '"state_identical":false' results/platform_scale.json; then
    echo "platform state diverged across shard counts" >&2
    exit 1
  fi
  awk '
    /"shards":1,"threads":4/ && /"throughput_ops_per_s":/ {
      split($0, a, /"throughput_ops_per_s":/); split(a[2], b, /[,}]/); base = b[1] + 0
    }
    /"shards":16,"threads":4/ && /"throughput_ops_per_s":/ {
      split($0, a, /"throughput_ops_per_s":/); split(a[2], b, /[,}]/); wide = b[1] + 0
    }
    END { exit (base > 0 && wide >= 2 * base) ? 0 : 1 }' results/platform_scale.json || {
      echo "16-shard throughput dropped below 2x the 1-shard figure at 4 workers" >&2
      exit 1
    }
  if ! grep -qF -- '"racing_state_identical":true' results/platform_scale.json; then
    echo "no row proves racing_state_identical:true" >&2
    exit 1
  fi
  if grep -qF -- '"racing_state_identical":false' results/platform_scale.json; then
    echo "a racing replay diverged from the serial reference" >&2
    exit 1
  fi
  if ! grep -qF -- '"cache_shard_hit_rates":' results/platform_scale.json; then
    echo "no row carries per-shard cache hit rates" >&2
    exit 1
  fi
  awk -F'"cache_speedup_16_over_1_at_4_threads":' '
    NF > 1 {
      split($2, a, /[,}]/); if (a[1] + 0 < 1.5) { bad = 1 }; seen = 1
    }
    END { exit (seen && !bad) ? 0 : 1 }' results/platform_scale.json || {
      echo "16-stripe cache speedup missing or below 1.5x at 4 workers" >&2
      exit 1
    }
  echo "  ok results/platform_scale.json"
else
  echo "  (no results/platform_scale.json yet — run scripts/shard_demo.sh)"
fi

echo "==> no orphaned results/*.txt shadowing a JSON successor"
for f in results/*.txt; do
  [ -e "$f" ] || continue
  stem=$(basename "$f" .txt)
  if grep -rqF "ResultsWriter::new(\"$stem\")" crates/bench/src; then
    echo "orphaned $f: the \"$stem\" bench writes results/$stem.json now — delete the stale .txt" >&2
    exit 1
  fi
done
echo "  ok: no stale .txt outputs"

echo "==> all checks passed"
