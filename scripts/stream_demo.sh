#!/usr/bin/env bash
# Smoke-runs the streaming-session bench with shortened streams and
# sanity-checks the JSONL rows it writes: every scenario/tenant pair is
# present, every row proves the incremental DSP features bitwise-equal to
# batch recomputation, the overloaded scenario actually shed windows, and
# the sweep stayed byte-for-byte reproducible (the bench runs everything
# twice — and on both a 1-thread and a 4-thread pool — and asserts
# equality before writing).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin streaming"
EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin streaming

echo "==> checking results/streaming.json"
out=results/streaming.json
for scenario in nominal bursty overloaded; do
  for tenant in alpha beta gamma; do
    marker="\"scenario\":\"$scenario\",\"tenant\":\"$tenant\""
    if ! grep -qF -- "$marker" "$out"; then
      echo "MISSING from $out: $marker" >&2
      exit 1
    fi
  done
  echo "  found all tenants for scenario $scenario"
done
if grep -qF -- '"features_identical":false' "$out"; then
  echo "incremental DSP diverged from the batch oracle" >&2
  exit 1
fi
echo "  features_identical on every row"
awk -F'"drops_backpressure":' '
  /"scenario":"overloaded"/ && NF > 1 {
    split($2, a, /[,}]/); total += a[1]
  }
  END { exit total > 0 ? 0 : 1 }' "$out" || {
    echo "the overloaded scenario shed no windows — backpressure is not engaging" >&2
    exit 1
  }
echo "  overloaded scenario shed windows through backpressure"
for field in '"summary":true' '"pools_identical":true' '"staleness_p99_ms":'; do
  if ! grep -qF -- "$field" "$out"; then
    echo "MISSING from $out: $field" >&2
    exit 1
  fi
  echo "  found $field"
done

echo "==> streaming demo passed"
