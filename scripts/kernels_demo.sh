#!/usr/bin/env bash
# Runs the kernel-layer bench (naive reference vs blocked/fused kernels
# over the MLP-dense, KWS-conv and vision-depthwise shape classes) and
# sanity-checks the JSONL rows it writes: every shape/kernel pair is
# present, every row reports bitwise_equal:true, and the bench's own ≥2×
# speedup assert ran (the bin exits non-zero if the blocked kernel ever
# regresses below 2× naive on the large-GEMM shape).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin kernels"
EDGELAB_QUICK=1 cargo run --release -p ei-bench --bin kernels

echo "==> checking results/kernels.json"
out=results/kernels.json
for marker in \
  '"shape":"dense_mlp","kernel":"naive"' \
  '"shape":"dense_mlp","kernel":"blocked"' \
  '"shape":"dense_mlp","kernel":"blocked_par"' \
  '"shape":"dense_mlp_int8","kernel":"blocked_fused"' \
  '"shape":"kws_conv","kernel":"blocked_par"' \
  '"shape":"vision_depthwise","kernel":"blocked_par"'; do
  if ! grep -qF -- "$marker" "$out"; then
    echo "MISSING from $out: $marker" >&2
    exit 1
  fi
  echo "  found $marker"
done
if grep -qF -- '"bitwise_equal":false' "$out"; then
  echo "a kernel variant diverged from the naive reference" >&2
  exit 1
fi

echo "==> kernels demo passed"
