//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor construction and manipulation.
///
/// Every public fallible function in this crate returns
/// [`TensorError`] so callers can uniformly propagate
/// failures with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape the operation received.
        actual: Vec<usize>,
    },
    /// The element count implied by a shape does not match the data length.
    LengthMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// An index was outside the bounds of the tensor.
    IndexOutOfBounds {
        /// Offending flat or per-axis index.
        index: usize,
        /// Length of the axis (or of the whole tensor for flat access).
        len: usize,
    },
    /// The tensor held a different element type than the accessor assumed.
    DTypeMismatch {
        /// Type the accessor wanted.
        expected: &'static str,
        /// Type the tensor holds.
        actual: &'static str,
    },
    /// An arena allocation did not fit in the remaining pool.
    ArenaExhausted {
        /// Bytes requested (after alignment).
        requested: usize,
        /// Bytes remaining in the pool.
        remaining: usize,
    },
    /// A shape with zero dimensions or a zero-sized axis was rejected.
    InvalidShape(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape implies {expected}, buffer has {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TensorError::DTypeMismatch { expected, actual } => {
                write!(f, "dtype mismatch: expected {expected}, tensor holds {actual}")
            }
            TensorError::ArenaExhausted { requested, remaining } => {
                write!(f, "arena exhausted: requested {requested} bytes, {remaining} remaining")
            }
            TensorError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::ShapeMismatch { expected: vec![2, 3], actual: vec![3, 2] };
        let s = e.to_string();
        assert!(s.starts_with("shape mismatch"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants = vec![
            TensorError::ShapeMismatch { expected: vec![1], actual: vec![2] },
            TensorError::LengthMismatch { expected: 4, actual: 5 },
            TensorError::IndexOutOfBounds { index: 9, len: 3 },
            TensorError::DTypeMismatch { expected: "f32", actual: "i8" },
            TensorError::ArenaExhausted { requested: 128, remaining: 64 },
            TensorError::InvalidShape("empty".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
