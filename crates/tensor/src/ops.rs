//! Small dense-math helpers shared across the workspace.
//!
//! [`matmul`] executes through the cache-blocked kernel in [`crate::gemm`]
//! (bitwise-identical to the naive oracle in `gemm::reference`); the
//! quantized integer kernels live in `ei-quant`, and the cost of running
//! either on a device is modeled in `ei-device`.

use crate::{Result, Shape, Tensor, TensorError};

/// `c = a @ b` for 2-D `f32` tensors (`a: MxK`, `b: KxN`).
///
/// # Errors
///
/// Fails when either input is not 2-D `f32` or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use ei_tensor::{Shape, Tensor, ops::matmul};
///
/// # fn main() -> Result<(), ei_tensor::TensorError> {
/// let a = Tensor::from_f32(Shape::d2(1, 2), vec![1.0, 2.0])?;
/// let b = Tensor::from_f32(Shape::d2(2, 1), vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.as_f32()?, &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::InvalidShape("matmul requires rank-2 inputs".into()));
    }
    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let (k2, n) = (b.shape().dims()[0], b.shape().dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch { expected: vec![m, k], actual: vec![k2, n] });
    }
    let av = a.as_f32()?;
    let bv = b.as_f32()?;
    let mut out = vec![0.0f32; m * n];
    crate::gemm::gemm_f32(m, k, n, av, bv, None, &mut out);
    Tensor::from_f32(Shape::d2(m, n), out)
}

/// Element-wise `a + b` for equally-shaped `f32` tensors.
///
/// # Errors
///
/// Fails on shape or dtype mismatch.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().dims().to_vec(),
            actual: b.shape().dims().to_vec(),
        });
    }
    let out: Vec<f32> = a.as_f32()?.iter().zip(b.as_f32()?).map(|(x, y)| x + y).collect();
    Tensor::from_f32(a.shape().clone(), out)
}

/// Element-wise `a * s` for an `f32` tensor and a scalar.
///
/// # Errors
///
/// Fails if `a` is not `f32`.
pub fn scale(a: &Tensor, s: f32) -> Result<Tensor> {
    let out: Vec<f32> = a.as_f32()?.iter().map(|x| x * s).collect();
    Tensor::from_f32(a.shape().clone(), out)
}

/// Index of the maximum element of a slice (first occurrence on ties).
///
/// Returns 0 for an empty slice.
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Numerically-stable softmax over a slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population standard deviation of a slice (0 for slices shorter than 2).
pub fn std_dev(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|&x| (x - m).powi(2)).sum::<f32>() / values.len() as f32).sqrt()
}

/// Squared Euclidean distance between equally-long slices.
///
/// # Panics
///
/// Panics (debug assertion) if the slices have different lengths.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Dot product of equally-long slices.
///
/// # Panics
///
/// Panics (debug assertion) if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_f32(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::from_f32(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_f32(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_f32(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_f32().unwrap(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros_f32(Shape::d2(2, 3));
        let b = Tensor::zeros_f32(Shape::d2(2, 3));
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros_f32(Shape::d1(3));
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::vector_f32(vec![1.0, 2.0]);
        let b = Tensor::vector_f32(vec![3.0, 5.0]);
        assert_eq!(add(&a, &b).unwrap().as_f32().unwrap(), &[4.0, 7.0]);
        assert_eq!(scale(&a, 2.0).unwrap().as_f32().unwrap(), &[2.0, 4.0]);
        let c = Tensor::zeros_f32(Shape::d1(3));
        assert!(add(&a, &c).is_err());
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p[0] + p[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(logits in proptest::collection::vec(-20.0f32..20.0, 1..16)) {
            let p = softmax(&logits);
            let sum: f32 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            // softmax preserves argmax
            prop_assert_eq!(argmax(&p), argmax(&logits));
        }

        #[test]
        fn prop_matmul_distributes_over_scale(
            m in 1usize..4, k in 1usize..4, n in 1usize..4, s in -3.0f32..3.0
        ) {
            let a = Tensor::from_f32(
                Shape::d2(m, k),
                (0..m * k).map(|i| (i as f32) * 0.25 - 1.0).collect(),
            ).unwrap();
            let b = Tensor::from_f32(
                Shape::d2(k, n),
                (0..k * n).map(|i| 1.0 - (i as f32) * 0.5).collect(),
            ).unwrap();
            let lhs = matmul(&scale(&a, s).unwrap(), &b).unwrap();
            let rhs = scale(&matmul(&a, &b).unwrap(), s).unwrap();
            for (x, y) in lhs.as_f32().unwrap().iter().zip(rhs.as_f32().unwrap()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
