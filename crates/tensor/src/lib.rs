#![warn(missing_docs)]

//! Tensor substrate for the `edgelab` TinyML stack.
//!
//! TinyML targets have kilobytes of SRAM and flat memory hierarchies
//! (paper §2.1), so this crate is built around two ideas:
//!
//! * [`Tensor`] — a dense, row-major (channels-last) tensor with a small,
//!   fixed set of element types ([`DType`]) that mirror what embedded
//!   inference engines actually ship: `f32` for reference/float models,
//!   `i8` for quantized weights/activations, and `i32` for accumulators
//!   and biases.
//! * [`Arena`] — a bump allocator over one contiguous byte pool, the same
//!   discipline TFLite-Micro uses for its "tensor arena". The memory
//!   planner in `ei-runtime` assigns offsets into an arena; this crate
//!   provides the pool itself plus high-water-mark accounting so RAM
//!   estimates (paper §4.4) are byte-accurate.
//!
//! # Example
//!
//! ```
//! use ei_tensor::{Shape, Tensor};
//!
//! let t = Tensor::zeros_f32(Shape::d2(2, 3));
//! assert_eq!(t.len(), 6);
//! assert_eq!(t.shape().dims(), &[2, 3]);
//! ```

pub mod arena;
pub mod error;
pub mod gemm;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use arena::{Arena, ArenaHandle};
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::{DType, Tensor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
