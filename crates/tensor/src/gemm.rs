//! Cache-blocked GEMM kernels — the workhorse every dense/conv layer in
//! the stack lowers to.
//!
//! Two kernels live here:
//!
//! * [`gemm_f32`] — blocked/tiled `f32` GEMM with an optional per-column
//!   bias init. The inner loops are tiled `MR`×`NR` with `KC`-deep packed
//!   panels of `B`, so `B` is streamed through cache once per K-block
//!   instead of strided column-by-column for every output element (the
//!   naive dot-product loop's failure mode).
//! * [`gemm_i8_fused`] — int8 × int8 → int32 GEMM whose requantization
//!   epilogue (fixed-point multiplier + activation clamp, supplied as a
//!   closure) runs on the accumulator **while it is still in registers**:
//!   no int32 intermediate is ever materialized, which is the fusion TFLM
//!   applies on Cortex-M targets.
//!
//! # Bitwise parity with the naive oracles
//!
//! The naive kernels this crate has always shipped stay available under
//! [`reference`] and remain the ground truth. The blocked kernels are
//! **bitwise-identical** to them, not merely close, because for every
//! output element `c[i][j]`:
//!
//! * the contributions `a[i][p] * b[p][j]` are added in ascending-`p`
//!   order into a single accumulator (M/N tiling never reorders the K
//!   loop, and K-blocks are processed in ascending order, accumulating
//!   into the same output storage);
//! * zero inputs are skipped under exactly the same `a[i][p] == 0.0` test
//!   the reference applies (float adds of `±0.0` and `0.0 * inf` are not
//!   bitwise no-ops, so the skip must match, not approximate).
//!
//! Since float addition is deterministic, an identical operand sequence
//! gives identical bits — at any tiling, and under any row/column
//! partition a thread pool applies on top.

/// Register-tile rows (output rows accumulated simultaneously).
pub const MR: usize = 4;
/// Register-tile columns. 8 `f32` lanes keeps the `MR`×`NR` accumulator
/// block within the baseline x86-64 SSE register file.
pub const NR: usize = 8;
/// Depth of one packed K-panel of `B` (`KC * NR * 4` bytes ≈ 8 kB,
/// resident in L1 while a panel is live).
pub const KC: usize = 256;

/// `out[i*w + j] (+)= sum_p a[i*k + p] * b[p*n + col0 + j]` over columns
/// `[col0, col0 + w)` where `w = out.len() / m`, skipping `a` zeros,
/// accumulating into whatever `out` already holds (bias or partial sums).
///
/// This is the accumulate-only core: callers init `out` (zeros or bias)
/// first. Row and column partitions compose freely — each element's
/// accumulation order only depends on `p`.
///
/// # Panics
///
/// Debug-asserts buffer sizes are consistent.
pub fn gemm_f32_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    col0: usize,
    out: &mut [f32],
) {
    let w = out.len().checked_div(m).unwrap_or(0);
    debug_assert_eq!(out.len(), m * w);
    debug_assert!(a.len() >= m * k);
    debug_assert!(b.len() >= k * n);
    debug_assert!(col0 + w <= n);
    if m == 0 || w == 0 || k == 0 {
        return;
    }
    if m < MR {
        // Packing amortizes over MR rows; below that (e.g. single-window
        // dense inference, m == 1) stream B directly.
        gemm_rows_direct(m, k, n, a, b, col0, w, out);
        return;
    }
    let mut panel = [0.0f32; KC * NR];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let mut jr = 0;
        while jr < w {
            let nr = NR.min(w - jr);
            // pack B[pc..pc+kc][col0+jr..+nr] into a contiguous kc x nr panel
            for p in 0..kc {
                let src = (pc + p) * n + col0 + jr;
                panel[p * nr..p * nr + nr].copy_from_slice(&b[src..src + nr]);
            }
            let mut ir = 0;
            while ir < m {
                let mr = MR.min(m - ir);
                if mr == MR && nr == NR {
                    micro_kernel_f32(kc, &a[ir * k + pc..], k, &panel, &mut out[ir * w + jr..], w);
                } else {
                    micro_kernel_f32_edge(
                        kc,
                        mr,
                        nr,
                        &a[ir * k + pc..],
                        k,
                        &panel,
                        &mut out[ir * w + jr..],
                        w,
                    );
                }
                ir += MR;
            }
            jr += NR;
        }
        pc += KC;
    }
}

/// Full `MR`×`NR` register tile: accumulators live in `acc` across the
/// whole K-panel, loaded/stored from `out` once per panel.
#[inline]
fn micro_kernel_f32(kc: usize, a: &[f32], lda: usize, panel: &[f32], out: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&out[r * ldc..r * ldc + NR]);
    }
    for p in 0..kc {
        let bp = &panel[p * NR..p * NR + NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let x = a[r * lda + p];
            if x != 0.0 {
                for (o, &bv) in row.iter_mut().zip(bp) {
                    *o += x * bv;
                }
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Partial tile at the M/N edges; same accumulation order, bounded loops.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel_f32_edge(
    kc: usize,
    mr: usize,
    nr: usize,
    a: &[f32],
    lda: usize,
    panel: &[f32],
    out: &mut [f32],
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&out[r * ldc..r * ldc + nr]);
    }
    for p in 0..kc {
        let bp = &panel[p * nr..p * nr + nr];
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let x = a[r * lda + p];
            if x != 0.0 {
                for (o, &bv) in row[..nr].iter_mut().zip(bp) {
                    *o += x * bv;
                }
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        out[r * ldc..r * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

/// Unpacked fallback for tiny row counts: identical operand sequence,
/// just no panel staging.
#[allow(clippy::too_many_arguments)] // mirrors gemm_f32_acc's signature + w
fn gemm_rows_direct(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    col0: usize,
    w: usize,
    out: &mut [f32],
) {
    for i in 0..m {
        let orow = &mut out[i * w..(i + 1) * w];
        for p in 0..k {
            let x = a[i * k + p];
            if x == 0.0 {
                continue;
            }
            let brow = &b[p * n + col0..p * n + col0 + w];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += x * bv;
            }
        }
    }
}

/// Blocked `c = a @ b (+ bias)` for row-major `f32` buffers
/// (`a: m×k`, `b: k×n`, `bias: n` broadcast over rows, `out: m×n`).
///
/// Bitwise-identical to [`reference::matmul_f32`]; see the module docs
/// for why.
///
/// # Panics
///
/// Debug-asserts buffer sizes are consistent.
pub fn gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    match bias {
        Some(bias) => {
            debug_assert_eq!(bias.len(), n);
            for row in out.chunks_mut(n) {
                row.copy_from_slice(bias);
            }
        }
        None => out.fill(0.0),
    }
    gemm_f32_acc(m, k, n, a, b, 0, out);
}

/// Fused int8 GEMM: `acc[i][j] = bias[j] + sum_p (a[i*k+p] - a_zp) *
/// b[p*n+j]`, with `epilogue(j, acc)` — requantization plus activation
/// clamp — applied to each accumulator before it leaves registers.
///
/// `a` rows are the im2col'd activations (padding positions hold the code
/// `a_zp`, which contributes exactly zero), `b` is `k×n` row-major int8
/// weights (output channel fastest, the layout `ei-quant` stores), and
/// `bias` is the int32 per-column bias at scale `s_in * s_w`.
///
/// Integer addition is exact, so the result equals
/// [`reference::matmul_i8`] + the same epilogue unconditionally; ascending
/// K order is kept anyway so even wrapping arithmetic would agree.
///
/// # Panics
///
/// Debug-asserts buffer sizes are consistent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_fused(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    a_zp: i32,
    b: &[i8],
    bias: &[i32],
    epilogue: impl Fn(usize, i32) -> i8,
    out: &mut [i8],
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(a.len() >= m * k);
    debug_assert!(b.len() >= k * n);
    debug_assert_eq!(bias.len(), n);
    if m == 0 || n == 0 {
        return;
    }
    if m < MR {
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[j];
                for p in 0..k {
                    let x = a[i * k + p] as i32 - a_zp;
                    if x != 0 {
                        acc += x * b[p * n + j] as i32;
                    }
                }
                out[i * n + j] = epilogue(j, acc);
            }
        }
        return;
    }
    // One K pass (k fits comfortably: panels are i8), NR-wide B panels,
    // MR×NR i32 accumulators; the epilogue fires as each tile retires.
    let mut panel = vec![0i8; k * NR];
    let mut jr = 0;
    while jr < n {
        let nr = NR.min(n - jr);
        for p in 0..k {
            let src = p * n + jr;
            panel[p * nr..p * nr + nr].copy_from_slice(&b[src..src + nr]);
        }
        let mut ir = 0;
        while ir < m {
            let mr = MR.min(m - ir);
            let mut acc = [[0i32; NR]; MR];
            for row in acc.iter_mut().take(mr) {
                row[..nr].copy_from_slice(&bias[jr..jr + nr]);
            }
            for p in 0..k {
                let bp = &panel[p * nr..p * nr + nr];
                for (r, row) in acc.iter_mut().enumerate().take(mr) {
                    let x = a[(ir + r) * k + p] as i32 - a_zp;
                    if x != 0 {
                        for (o, &bv) in row[..nr].iter_mut().zip(bp) {
                            *o += x * bv as i32;
                        }
                    }
                }
            }
            for (r, row) in acc.iter().enumerate().take(mr) {
                let orow = &mut out[(ir + r) * n + jr..(ir + r) * n + jr + nr];
                for (o, (j, &v)) in orow.iter_mut().zip(row[..nr].iter().enumerate()) {
                    *o = epilogue(jr + j, v);
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// The naive loop nests the blocked kernels are verified against. These
/// are the oracles: slow, obvious, and the definition of correct bits.
pub mod reference {
    /// Textbook `i → j → p` dot-product matmul with bias init and the
    /// `a == 0.0` skip: one accumulator per output element, walking a
    /// strided column of `b` per dot product. Per element this is the
    /// exact operand sequence [`super::gemm_f32`] reproduces (ascending
    /// `p`, same skip) — only the interleaving across elements differs,
    /// which float addition never observes.
    ///
    /// # Panics
    ///
    /// Debug-asserts buffer sizes are consistent.
    pub fn matmul_f32(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = match bias {
                    Some(bias) => bias[j],
                    None => 0.0,
                };
                for p in 0..k {
                    let x = a[i * k + p];
                    if x == 0.0 {
                        continue;
                    }
                    acc += x * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Naive int8 GEMM accumulators: `j`-outer like the historical
    /// `ei-quant` kernels, one i32 per output element.
    ///
    /// # Panics
    ///
    /// Debug-asserts buffer sizes are consistent.
    pub fn matmul_i8(
        m: usize,
        k: usize,
        n: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        bias: &[i32],
    ) -> Vec<i32> {
        debug_assert!(a.len() >= m * k);
        debug_assert!(b.len() >= k * n);
        debug_assert_eq!(bias.len(), n);
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[j];
                for p in 0..k {
                    acc += (a[i * k + p] as i32 - a_zp) * b[p * n + j] as i32;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic data with zeros, negative zeros and sign changes to
    /// exercise the skip semantics.
    fn data(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                match h % 7 {
                    0 => 0.0,
                    1 => -0.0,
                    _ => ((h % 97) as f32 - 48.0) * 0.031,
                }
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn blocked_matches_reference_bitwise_over_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (1, 300, 17),
            (5, 1, 9),
            (3, 17, 3),
            (4, 8, 16),
            (13, 33, 7),
            (7, KC + 3, NR + 1),
            (MR + 1, 2 * KC + 1, 2 * NR + 3),
            (31, 64, 1),
        ] {
            let a = data(m * k, 1);
            let b = data(k * n, 2);
            let bias = data(n, 3);
            let mut want = vec![0.0f32; m * n];
            reference::matmul_f32(m, k, n, &a, &b, Some(&bias), &mut want);
            let mut got = vec![0.0f32; m * n];
            gemm_f32(m, k, n, &a, &b, Some(&bias), &mut got);
            assert_eq!(bits(&want), bits(&got), "shape ({m},{k},{n})");
            // and without bias
            reference::matmul_f32(m, k, n, &a, &b, None, &mut want);
            gemm_f32(m, k, n, &a, &b, None, &mut got);
            assert_eq!(bits(&want), bits(&got), "no-bias shape ({m},{k},{n})");
        }
    }

    #[test]
    fn column_partition_composes_bitwise() {
        let (m, k, n) = (9, 70, 29);
        let a = data(m * k, 4);
        let b = data(k * n, 5);
        let bias = data(n, 6);
        let mut whole = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, Some(&bias), &mut whole);
        // compute columns [0, 11) and [11, 29) separately
        for (col0, w) in [(0usize, 11usize), (11, 18)] {
            let mut part = vec![0.0f32; m * w];
            for i in 0..m {
                part[i * w..(i + 1) * w].copy_from_slice(&bias[col0..col0 + w]);
            }
            gemm_f32_acc(m, k, n, &a, &b, col0, &mut part);
            for i in 0..m {
                assert_eq!(
                    bits(&part[i * w..(i + 1) * w]),
                    bits(&whole[i * n + col0..i * n + col0 + w]),
                );
            }
        }
    }

    #[test]
    fn fused_i8_matches_reference_accumulators() {
        for &(m, k, n) in &[(1, 4, 3), (2, 9, 5), (6, 40, 11), (17, 64, NR), (5, 3, 1)] {
            let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..k * n).map(|i| ((i * 53 + 7) % 251) as i8).collect();
            let bias: Vec<i32> = (0..n).map(|j| j as i32 * 100 - 150).collect();
            let a_zp = -3;
            let want: Vec<i8> = reference::matmul_i8(m, k, n, &a, a_zp, &b, &bias)
                .iter()
                .map(|&acc| (acc >> 4).clamp(-128, 127) as i8)
                .collect();
            let mut got = vec![0i8; m * n];
            gemm_i8_fused(
                m,
                k,
                n,
                &a,
                a_zp,
                &b,
                &bias,
                |_, acc| (acc >> 4).clamp(-128, 127) as i8,
                &mut got,
            );
            assert_eq!(want, got, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn empty_dims_are_no_ops() {
        let mut out: Vec<f32> = vec![];
        gemm_f32(0, 3, 0, &[], &[], None, &mut out);
        let mut out = vec![1.0f32; 4];
        // k == 0: bias init only
        gemm_f32(2, 0, 2, &[], &[], Some(&[0.5, -0.5]), &mut out);
        assert_eq!(out, vec![0.5, -0.5, 0.5, -0.5]);
        let mut out: Vec<i8> = vec![];
        gemm_i8_fused(0, 3, 0, &[], 0, &[], &[], |_, a| a as i8, &mut out);
    }
}
