//! Dense tensor shapes with row-major (channels-last) layout.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense tensor shape of rank 1–4.
///
/// Layout is always row-major with the last axis contiguous, matching the
/// NHWC / channels-last convention used by embedded inference engines.
///
/// # Example
///
/// ```
/// use ei_tensor::Shape;
///
/// let s = Shape::d3(49, 40, 1); // 49 MFCC frames x 40 coefficients x 1 channel
/// assert_eq!(s.len(), 49 * 40);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from arbitrary dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `dims` is empty, has more
    /// than four axes, or contains a zero-sized axis.
    pub fn new(dims: &[usize]) -> Result<Self> {
        if dims.is_empty() {
            return Err(TensorError::InvalidShape("shape must have at least one axis".into()));
        }
        if dims.len() > 4 {
            return Err(TensorError::InvalidShape(format!(
                "rank {} exceeds the supported maximum of 4",
                dims.len()
            )));
        }
        if dims.contains(&0) {
            return Err(TensorError::InvalidShape("zero-sized axis".into()));
        }
        Ok(Shape { dims: dims.to_vec() })
    }

    /// 1-D shape of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn d1(n: usize) -> Self {
        Shape::new(&[n]).expect("d1 dimensions must be non-zero")
    }

    /// 2-D shape (`rows`, `cols`).
    ///
    /// # Panics
    ///
    /// Panics if either axis is zero.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols]).expect("d2 dimensions must be non-zero")
    }

    /// 3-D shape (`h`, `w`, `c`) — channels last.
    ///
    /// # Panics
    ///
    /// Panics if any axis is zero.
    pub fn d3(h: usize, w: usize, c: usize) -> Self {
        Shape::new(&[h, w, c]).expect("d3 dimensions must be non-zero")
    }

    /// 4-D shape (`n`, `h`, `w`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if any axis is zero.
    pub fn d4(n: usize, h: usize, w: usize, c: usize) -> Self {
        Shape::new(&[n, h, w, c]).expect("d4 dimensions must be non-zero")
    }

    /// The dimensions of this shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count (product of all axes).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Length of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index: axis, len: self.dims.len() })
    }

    /// Row-major strides (elements, not bytes).
    ///
    /// ```
    /// use ei_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-axis index.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` has the wrong rank or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims.clone(),
                actual: index.to_vec(),
            });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, len: d });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Returns a copy of this shape with a leading batch axis of `n` prepended.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the result would exceed rank 4.
    pub fn with_batch(&self, n: usize) -> Result<Shape> {
        let mut dims = Vec::with_capacity(self.dims.len() + 1);
        dims.push(n);
        dims.extend_from_slice(&self.dims);
        Shape::new(&dims)
    }

    /// Returns this shape flattened to 1-D.
    pub fn flattened(&self) -> Shape {
        Shape::d1(self.len())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::d1(n)
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self> {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_zero() {
        assert!(Shape::new(&[]).is_err());
        assert!(Shape::new(&[2, 0]).is_err());
        assert!(Shape::new(&[1, 2, 3, 4, 5]).is_err());
    }

    #[test]
    fn len_and_rank() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.dim(2).unwrap(), 4);
        assert!(s.dim(4).is_err());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d1(7).strides(), vec![1]);
        assert_eq!(Shape::d2(3, 5).strides(), vec![5, 1]);
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::d2(2, 2);
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[2, 0]).is_err());
    }

    #[test]
    fn with_batch_and_flatten() {
        let s = Shape::d2(3, 4);
        assert_eq!(s.with_batch(8).unwrap().dims(), &[8, 3, 4]);
        assert_eq!(s.flattened().dims(), &[12]);
        let four = Shape::d4(1, 1, 1, 1);
        assert!(four.with_batch(2).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d3(49, 40, 1).to_string(), "(49x40x1)");
    }

    proptest! {
        #[test]
        fn prop_offsets_bijective(dims in proptest::collection::vec(1usize..6, 1..=4)) {
            let s = Shape::new(&dims).unwrap();
            let strides = s.strides();
            // last axis stride is always 1 in row-major layout
            prop_assert_eq!(*strides.last().unwrap(), 1usize);
            // maximum index maps to len-1
            let max_index: Vec<usize> = dims.iter().map(|d| d - 1).collect();
            prop_assert_eq!(s.offset(&max_index).unwrap(), s.len() - 1);
        }
    }
}
