//! Deterministic weight initializers.
//!
//! Training on the platform must be reproducible across runs (paper §2.4
//! calls out the ML reproducibility crisis), so every initializer takes an
//! explicit seed and uses a counter-free, self-contained generator.

use crate::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initialization scheme for a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros — used for biases.
    Zeros,
    /// Constant fill — used for classifier bias initialization from class
    /// priors (paper §4.3 "classifier bias initialisation").
    Constant(f32),
    /// Glorot/Xavier uniform: `U(-l, l)` with `l = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))` — the right choice in
    /// front of ReLU activations.
    HeNormal,
    /// Uniform in `[-bound, bound]`.
    Uniform(f32),
}

/// Creates an `f32` tensor initialized per `init`.
///
/// `fan_in`/`fan_out` are the effective connection counts; for dense layers
/// these are the input/output widths, for convolutions
/// `kernel_elems * in_channels` and `kernel_elems * out_channels`.
///
/// # Example
///
/// ```
/// use ei_tensor::{Shape, init::{Init, init_tensor}};
///
/// let w = init_tensor(Shape::d2(16, 8), Init::XavierUniform, 16, 8, 42);
/// assert_eq!(w.len(), 128);
/// ```
pub fn init_tensor(shape: Shape, init: Init, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let n = shape.len();
    let data: Vec<f32> = match init {
        Init::Zeros => vec![0.0; n],
        Init::Constant(c) => vec![c; n],
        Init::XavierUniform => {
            let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.gen_range(-limit..=limit)).collect()
        }
        Init::HeNormal => {
            let std = (2.0 / fan_in.max(1) as f32).sqrt();
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| sample_gaussian(&mut rng) * std).collect()
        }
        Init::Uniform(bound) => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.gen_range(-bound..=bound)).collect()
        }
    };
    Tensor::from_f32(shape, data).expect("init buffer length matches shape by construction")
}

/// Samples a standard normal via Box–Muller.
fn sample_gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let z = init_tensor(Shape::d1(4), Init::Zeros, 4, 4, 0);
        assert!(z.as_f32().unwrap().iter().all(|&x| x == 0.0));
        let c = init_tensor(Shape::d1(4), Init::Constant(0.5), 4, 4, 0);
        assert!(c.as_f32().unwrap().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = init_tensor(Shape::d2(8, 8), Init::XavierUniform, 8, 8, 7);
        let b = init_tensor(Shape::d2(8, 8), Init::XavierUniform, 8, 8, 7);
        assert_eq!(a, b);
        let c = init_tensor(Shape::d2(8, 8), Init::XavierUniform, 8, 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_within_limit() {
        let fan_in = 32;
        let fan_out = 16;
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let t = init_tensor(Shape::d2(fan_in, fan_out), Init::XavierUniform, fan_in, fan_out, 1);
        for &x in t.as_f32().unwrap() {
            assert!(x.abs() <= limit + 1e-6);
        }
    }

    #[test]
    fn he_normal_has_plausible_spread() {
        let fan_in = 64;
        let t = init_tensor(Shape::d2(64, 64), Init::HeNormal, fan_in, 64, 3);
        let data = t.as_f32().unwrap();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 = data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / data.len() as f32;
        let expected_var = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!(
            (var / expected_var) > 0.5 && (var / expected_var) < 2.0,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn uniform_bound_respected() {
        let t = init_tensor(Shape::d1(256), Init::Uniform(0.1), 1, 1, 9);
        assert!(t.as_f32().unwrap().iter().all(|x| x.abs() <= 0.1 + 1e-7));
    }
}
