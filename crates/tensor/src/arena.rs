//! TFLM-style tensor arena: one contiguous pool, bump allocation,
//! high-water-mark accounting.
//!
//! Embedded inference engines avoid `malloc` by pre-reserving one block of
//! SRAM (the "tensor arena") and carving activations out of it. Porting the
//! Edge Impulse SDK to a new target only requires such an allocator (paper
//! §4.6). [`Arena`] reproduces that discipline and records the peak number
//! of bytes ever in use, which is exactly the RAM figure the platform
//! reports to users (paper §4.4, Table 4).

use crate::{Result, TensorError};

/// Alignment for all arena allocations, in bytes.
///
/// 16 matches TFLM's default buffer alignment (good for SIMD loads).
pub const ARENA_ALIGN: usize = 16;

/// A handle to a region allocated from an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaHandle {
    /// Byte offset of the region within the pool.
    pub offset: usize,
    /// Usable size of the region in bytes (pre-alignment request).
    pub size: usize,
}

/// A fixed-capacity bump allocator.
///
/// # Example
///
/// ```
/// use ei_tensor::Arena;
///
/// # fn main() -> Result<(), ei_tensor::TensorError> {
/// let mut arena = Arena::with_capacity(1024);
/// let a = arena.alloc(100)?;
/// let b = arena.alloc(100)?;
/// assert_ne!(a.offset, b.offset);
/// assert!(arena.high_water_mark() >= 200);
/// arena.reset();
/// assert_eq!(arena.bytes_in_use(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Arena {
    capacity: usize,
    cursor: usize,
    high_water: usize,
    allocations: usize,
}

impl Arena {
    /// Creates an arena with `capacity` bytes of pool space.
    pub fn with_capacity(capacity: usize) -> Arena {
        Arena { capacity, cursor: 0, high_water: 0, allocations: 0 }
    }

    /// Allocates `size` bytes, aligned to [`ARENA_ALIGN`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ArenaExhausted`] if the aligned request does
    /// not fit in the remaining pool.
    pub fn alloc(&mut self, size: usize) -> Result<ArenaHandle> {
        let aligned = align_up(size, ARENA_ALIGN);
        let remaining = self.capacity - self.cursor;
        if aligned > remaining {
            return Err(TensorError::ArenaExhausted { requested: aligned, remaining });
        }
        let handle = ArenaHandle { offset: self.cursor, size };
        self.cursor += aligned;
        self.high_water = self.high_water.max(self.cursor);
        self.allocations += 1;
        Ok(handle)
    }

    /// Releases every allocation, keeping the high-water mark.
    ///
    /// Mirrors how an inference engine reuses its arena between invocations.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently in use (aligned).
    pub fn bytes_in_use(&self) -> usize {
        self.cursor
    }

    /// The largest number of bytes that were ever simultaneously in use.
    ///
    /// This is the figure an integrator would size their static arena with.
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Number of successful allocations over the arena's lifetime.
    pub fn allocation_count(&self) -> usize {
        self.allocations
    }
}

impl Default for Arena {
    /// A 256 kB arena — the SRAM capacity of the Arduino Nano 33 BLE Sense
    /// (paper Table 1).
    fn default() -> Self {
        Arena::with_capacity(256 * 1024)
    }
}

/// Rounds `n` up to the next multiple of `align`.
///
/// # Panics
///
/// Debug-asserts that `align` is a power of two.
pub fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut a = Arena::with_capacity(64);
        assert!(a.alloc(48).is_ok());
        let err = a.alloc(32).unwrap_err();
        assert_eq!(err, TensorError::ArenaExhausted { requested: 32, remaining: 16 });
    }

    #[test]
    fn handles_do_not_overlap() {
        let mut a = Arena::with_capacity(1024);
        let h1 = a.alloc(10).unwrap();
        let h2 = a.alloc(10).unwrap();
        assert!(h1.offset + align_up(h1.size, ARENA_ALIGN) <= h2.offset);
    }

    #[test]
    fn reset_keeps_high_water() {
        let mut a = Arena::with_capacity(1024);
        a.alloc(500).unwrap();
        let hw = a.high_water_mark();
        a.reset();
        assert_eq!(a.bytes_in_use(), 0);
        assert_eq!(a.high_water_mark(), hw);
        a.alloc(100).unwrap();
        assert_eq!(a.high_water_mark(), hw, "smaller second pass must not lower the mark");
    }

    #[test]
    fn default_is_nano33_sram() {
        assert_eq!(Arena::default().capacity(), 256 * 1024);
    }

    #[test]
    fn allocation_count_accumulates() {
        let mut a = Arena::with_capacity(256);
        a.alloc(8).unwrap();
        a.alloc(8).unwrap();
        a.reset();
        a.alloc(8).unwrap();
        assert_eq!(a.allocation_count(), 3);
    }

    proptest! {
        #[test]
        fn prop_allocations_aligned_and_disjoint(sizes in proptest::collection::vec(1usize..128, 1..20)) {
            let mut arena = Arena::with_capacity(64 * 1024);
            let mut prev_end = 0usize;
            for s in sizes {
                let h = arena.alloc(s).unwrap();
                prop_assert_eq!(h.offset % ARENA_ALIGN, 0);
                prop_assert!(h.offset >= prev_end);
                prev_end = h.offset + align_up(s, ARENA_ALIGN);
            }
            prop_assert_eq!(arena.high_water_mark(), prev_end);
        }
    }
}
