//! Dense tensors over the small fixed set of TinyML element types.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// Element type of a [`Tensor`].
///
/// The set is deliberately small: it matches what quantized embedded
/// inference actually uses (paper §4.5 — fully int8 weight and activation
/// quantization with 32-bit bias/accumulators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float — reference and "float32" deployments.
    F32,
    /// 8-bit signed integer — quantized weights and activations.
    I8,
    /// 32-bit signed integer — biases and accumulators.
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::I8 => 1,
        }
    }

    /// Human-readable name (`"f32"`, `"i8"`, `"i32"`).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I8 => "i8",
            DType::I32 => "i32",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Backing storage for a [`Tensor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Storage {
    F32(Vec<f32>),
    I8(Vec<i8>),
    I32(Vec<i32>),
}

impl Storage {
    fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::I8(_) => DType::I8,
            Storage::I32(_) => DType::I32,
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I8(v) => v.len(),
            Storage::I32(v) => v.len(),
        }
    }
}

/// A dense, row-major tensor.
///
/// # Example
///
/// ```
/// use ei_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), ei_tensor::TensorError> {
/// let t = Tensor::from_f32(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get_f32(&[1, 0])?, 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    storage: Storage,
}

impl Tensor {
    /// Creates an all-zero `f32` tensor.
    pub fn zeros_f32(shape: Shape) -> Tensor {
        let n = shape.len();
        Tensor { shape, storage: Storage::F32(vec![0.0; n]) }
    }

    /// Creates an all-zero `i8` tensor.
    pub fn zeros_i8(shape: Shape) -> Tensor {
        let n = shape.len();
        Tensor { shape, storage: Storage::I8(vec![0; n]) }
    }

    /// Creates an all-zero `i32` tensor.
    pub fn zeros_i32(shape: Shape) -> Tensor {
        let n = shape.len();
        Tensor { shape, storage: Storage::I32(vec![0; n]) }
    }

    /// Creates an `f32` tensor filled with `value`.
    pub fn full_f32(shape: Shape, value: f32) -> Tensor {
        let n = shape.len();
        Tensor { shape, storage: Storage::F32(vec![value; n]) }
    }

    /// Wraps an `f32` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.len()`.
    pub fn from_f32(shape: Shape, data: Vec<f32>) -> Result<Tensor> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, storage: Storage::F32(data) })
    }

    /// Wraps an `i8` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.len()`.
    pub fn from_i8(shape: Shape, data: Vec<i8>) -> Result<Tensor> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, storage: Storage::I8(data) })
    }

    /// Wraps an `i32` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.len()`.
    pub fn from_i32(shape: Shape, data: Vec<i32>) -> Result<Tensor> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, storage: Storage::I32(data) })
    }

    /// Convenience constructor for a 1-D `f32` tensor.
    pub fn vector_f32(data: Vec<f32>) -> Tensor {
        let shape = Shape::d1(data.len().max(1));
        if data.is_empty() {
            return Tensor::zeros_f32(shape);
        }
        Tensor { shape, storage: Storage::F32(data) }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.storage.dtype()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// `true` if the tensor has no elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.storage.len() == 0
    }

    /// Size of the tensor's payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_bytes()
    }

    /// Borrows the `f32` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`f32` tensors.
    pub fn as_f32(&self) -> Result<&[f32]> {
        match &self.storage {
            Storage::F32(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "f32", actual: other.dtype().name() })
            }
        }
    }

    /// Mutably borrows the `f32` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`f32` tensors.
    pub fn as_f32_mut(&mut self) -> Result<&mut [f32]> {
        match &mut self.storage {
            Storage::F32(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "f32", actual: other.dtype().name() })
            }
        }
    }

    /// Borrows the `i8` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`i8` tensors.
    pub fn as_i8(&self) -> Result<&[i8]> {
        match &self.storage {
            Storage::I8(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "i8", actual: other.dtype().name() })
            }
        }
    }

    /// Mutably borrows the `i8` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`i8` tensors.
    pub fn as_i8_mut(&mut self) -> Result<&mut [i8]> {
        match &mut self.storage {
            Storage::I8(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "i8", actual: other.dtype().name() })
            }
        }
    }

    /// Borrows the `i32` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`i32` tensors.
    pub fn as_i32(&self) -> Result<&[i32]> {
        match &self.storage {
            Storage::I32(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "i32", actual: other.dtype().name() })
            }
        }
    }

    /// Mutably borrows the `i32` payload.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`i32` tensors.
    pub fn as_i32_mut(&mut self) -> Result<&mut [i32]> {
        match &mut self.storage {
            Storage::I32(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "i32", actual: other.dtype().name() })
            }
        }
    }

    /// Reads one `f32` element by multi-axis index.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch or out-of-bounds index.
    pub fn get_f32(&self, index: &[usize]) -> Result<f32> {
        let off = self.shape.offset(index)?;
        Ok(self.as_f32()?[off])
    }

    /// Writes one `f32` element by multi-axis index.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch or out-of-bounds index.
    pub fn set_f32(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.as_f32_mut()?[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshaped(&self, shape: Shape) -> Result<Tensor> {
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: self.len() });
        }
        Ok(Tensor { shape, storage: self.storage.clone() })
    }

    /// Extracts the underlying `f32` buffer, consuming the tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] for non-`f32` tensors.
    pub fn into_f32(self) -> Result<Vec<f32>> {
        match self.storage {
            Storage::F32(v) => Ok(v),
            other => {
                Err(TensorError::DTypeMismatch { expected: "f32", actual: other.dtype().name() })
            }
        }
    }

    /// Converts any tensor to `f32` values (dequantization is *not* applied;
    /// integer payloads are cast element-wise).
    pub fn to_f32_lossy(&self) -> Vec<f32> {
        match &self.storage {
            Storage::F32(v) => v.clone(),
            Storage::I8(v) => v.iter().map(|&x| x as f32).collect(),
            Storage::I32(v) => v.iter().map(|&x| x as f32).collect(),
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros_f32(Shape::d1(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::I8.to_string(), "i8");
    }

    #[test]
    fn construction_validates_length() {
        assert!(Tensor::from_f32(Shape::d2(2, 2), vec![0.0; 3]).is_err());
        assert!(Tensor::from_i8(Shape::d1(4), vec![0; 4]).is_ok());
        assert!(Tensor::from_i32(Shape::d1(4), vec![0; 5]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros_f32(Shape::d3(2, 3, 4));
        t.set_f32(&[1, 2, 3], 42.0).unwrap();
        assert_eq!(t.get_f32(&[1, 2, 3]).unwrap(), 42.0);
        assert_eq!(t.get_f32(&[0, 0, 0]).unwrap(), 0.0);
        assert!(t.get_f32(&[2, 0, 0]).is_err());
    }

    #[test]
    fn dtype_mismatch_reported() {
        let t = Tensor::zeros_i8(Shape::d1(3));
        let err = t.as_f32().unwrap_err();
        assert_eq!(err, TensorError::DTypeMismatch { expected: "f32", actual: "i8" });
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_f32(Shape::d2(2, 3), (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshaped(Shape::d3(3, 2, 1)).unwrap();
        assert_eq!(r.as_f32().unwrap(), t.as_f32().unwrap());
        assert!(t.reshaped(Shape::d1(5)).is_err());
    }

    #[test]
    fn size_bytes_accounts_for_dtype() {
        assert_eq!(Tensor::zeros_f32(Shape::d1(10)).size_bytes(), 40);
        assert_eq!(Tensor::zeros_i8(Shape::d1(10)).size_bytes(), 10);
        assert_eq!(Tensor::zeros_i32(Shape::d1(10)).size_bytes(), 40);
    }

    #[test]
    fn lossy_cast() {
        let t = Tensor::from_i8(Shape::d1(3), vec![-1, 0, 7]).unwrap();
        assert_eq!(t.to_f32_lossy(), vec![-1.0, 0.0, 7.0]);
    }

    #[test]
    fn vector_constructor() {
        let t = Tensor::vector_f32(vec![1.0, 2.0]);
        assert_eq!(t.shape().dims(), &[2]);
        let empty = Tensor::vector_f32(vec![]);
        assert_eq!(empty.len(), 1, "empty input falls back to a 1-element zero tensor");
    }
}
