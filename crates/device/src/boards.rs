//! Board profiles and the hardware-heterogeneity axis (paper §2.2).

use crate::{DeviceError, Result};
use serde::{Deserialize, Serialize};

/// Processor micro-architecture class, which selects the cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuArch {
    /// Arm Cortex-M4F: single-precision FPU, DSP extensions (SMLAD dual
    /// 16-bit MAC — what CMSIS-NN exploits for int8).
    CortexM4F,
    /// Arm Cortex-M7: like M4F but dual-issue with better memory paths.
    CortexM7,
    /// Arm Cortex-M0+: no FPU, no DSP extensions — everything in software.
    CortexM0Plus,
    /// Tensilica LX6 (ESP32): hardware FPU, no int8 SIMD.
    TensilicaLx6,
}

/// A deployment target: identity, clock and memory capacities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Board {
    /// Marketing name, e.g. `"Arduino Nano 33 BLE Sense"`.
    pub name: String,
    /// Processor description, e.g. `"Arm Cortex-M4"`.
    pub processor: String,
    /// Core clock in hertz.
    pub clock_hz: u64,
    /// On-board flash in bytes.
    pub flash_bytes: usize,
    /// Working RAM in bytes.
    pub ram_bytes: usize,
    /// Micro-architecture class (selects the cycle model).
    pub arch: CpuArch,
}

impl Board {
    /// Arduino Nano 33 BLE Sense (paper Table 1, row 1).
    pub fn nano33_ble_sense() -> Board {
        Board {
            name: "Arduino Nano 33 BLE Sense".into(),
            processor: "Arm Cortex-M4".into(),
            clock_hz: 64_000_000,
            flash_bytes: 1024 * 1024,
            ram_bytes: 256 * 1024,
            arch: CpuArch::CortexM4F,
        }
    }

    /// ESP-EYE / ESP32 (paper Table 1, row 2).
    pub fn esp_eye() -> Board {
        Board {
            name: "ESP-EYE (ESP32)".into(),
            processor: "Tensilica LX6".into(),
            clock_hz: 160_000_000,
            flash_bytes: 4 * 1024 * 1024,
            ram_bytes: 8 * 1024 * 1024,
            arch: CpuArch::TensilicaLx6,
        }
    }

    /// Raspberry Pi Pico / RP2040 (paper Table 1, row 3).
    pub fn raspberry_pi_pico() -> Board {
        Board {
            name: "Ras. Pi Pico (RP2040)".into(),
            processor: "Arm Cortex-M0+".into(),
            clock_hz: 133_000_000,
            flash_bytes: 16 * 1024 * 1024,
            ram_bytes: 264 * 1024,
            arch: CpuArch::CortexM0Plus,
        }
    }

    /// A Cortex-M7 target (e.g. Portenta H7 class), included to exercise
    /// the heterogeneity axis beyond the paper's three boards.
    pub fn cortex_m7_480() -> Board {
        Board {
            name: "Generic Cortex-M7".into(),
            processor: "Arm Cortex-M7".into(),
            clock_hz: 480_000_000,
            flash_bytes: 2 * 1024 * 1024,
            ram_bytes: 1024 * 1024,
            arch: CpuArch::CortexM7,
        }
    }

    /// ST B-L475E-IOT01A Discovery kit: a Cortex-M4 with only 128 kB of
    /// working SRAM — the tightest RAM gate in the registry.
    pub fn st_iot_discovery() -> Board {
        Board {
            name: "ST IoT Discovery (B-L475E)".into(),
            processor: "Arm Cortex-M4".into(),
            clock_hz: 80_000_000,
            flash_bytes: 1024 * 1024,
            ram_bytes: 128 * 1024,
            arch: CpuArch::CortexM4F,
        }
    }

    /// Every board in the registry (paper boards first).
    pub fn all() -> Vec<Board> {
        vec![
            Board::nano33_ble_sense(),
            Board::esp_eye(),
            Board::raspberry_pi_pico(),
            Board::cortex_m7_480(),
            Board::st_iot_discovery(),
        ]
    }

    /// The three boards evaluated in the paper, in Table 1 order.
    pub fn paper_boards() -> Vec<Board> {
        vec![Board::nano33_ble_sense(), Board::esp_eye(), Board::raspberry_pi_pico()]
    }

    /// Looks a board up by (case-insensitive substring) name.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownBoard`] when nothing matches.
    pub fn by_name(name: &str) -> Result<Board> {
        let needle = name.to_lowercase();
        Board::all()
            .into_iter()
            .find(|b| b.name.to_lowercase().contains(&needle))
            .ok_or_else(|| DeviceError::UnknownBoard(name.to_string()))
    }
}

/// An attached neural accelerator (e.g. a Syntiant NDP-class part, paper
/// §4.3): multiplies the MAC rate for int8 models it supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Accelerator name.
    pub name: String,
    /// Factor by which supported MACs run faster than the host CPU.
    pub mac_speedup: f32,
    /// `true` when only int8 artifacts are supported (the common case).
    pub int8_only: bool,
}

impl Accelerator {
    /// A representative always-on audio NN accelerator.
    pub fn syntiant_like() -> Accelerator {
        Accelerator {
            name: "NDP-class audio accelerator".into(),
            mac_speedup: 20.0,
            int8_only: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_boards_match_table1() {
        let boards = Board::paper_boards();
        assert_eq!(boards.len(), 3);
        assert_eq!(boards[0].clock_hz, 64_000_000);
        assert_eq!(boards[0].ram_bytes, 256 * 1024);
        assert_eq!(boards[1].clock_hz, 160_000_000);
        assert_eq!(boards[1].flash_bytes, 4 * 1024 * 1024);
        assert_eq!(boards[2].clock_hz, 133_000_000);
        assert_eq!(boards[2].ram_bytes, 264 * 1024);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Board::by_name("nano 33").unwrap().arch, CpuArch::CortexM4F);
        assert_eq!(Board::by_name("pico").unwrap().arch, CpuArch::CortexM0Plus);
        assert!(Board::by_name("nonexistent").is_err());
    }

    #[test]
    fn registry_contains_every_board() {
        assert_eq!(Board::all().len(), 5);
        assert_eq!(Board::by_name("discovery").unwrap().ram_bytes, 128 * 1024);
        assert_eq!(Board::by_name("m7").unwrap().arch, CpuArch::CortexM7);
    }

    #[test]
    fn serde_round_trip() {
        let b = Board::esp_eye();
        let json = serde_json::to_string(&b).unwrap();
        let back: Board = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn accelerator_defaults() {
        let a = Accelerator::syntiant_like();
        assert!(a.int8_only);
        assert!(a.mac_speedup > 1.0);
    }
}
