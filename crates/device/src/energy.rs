//! Energy and battery-life estimation (paper §2.1).
//!
//! "Many TinyML applications operate on battery power … Due to the limited
//! energy budget, any wireless transmission can quickly deplete the
//! battery. Since data is often only transmitted once a specific
//! prediction is made, false positives contribute to battery drain with no
//! benefit. Therefore, the accuracy of a model can directly impact the
//! energy consumption of the system." This module quantifies exactly that:
//! compute energy from the cycle model's latencies, sleep floor, and radio
//! cost per (possibly false) detection event.

use crate::boards::{Board, CpuArch};

/// Electrical profile of a board class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Power while the core runs inference/DSP, in milliwatts.
    pub active_mw: f64,
    /// Sleep/idle floor, in milliwatts.
    pub sleep_mw: f64,
    /// Energy per wireless transmission event (e.g. one BLE notification
    /// burst), in millijoules.
    pub radio_mj_per_tx: f64,
}

/// Representative power profile per micro-architecture (datasheet-class
/// numbers for the paper's boards).
pub fn power_profile(arch: CpuArch) -> PowerProfile {
    match arch {
        // nRF52840 class
        CpuArch::CortexM4F => {
            PowerProfile { active_mw: 16.0, sleep_mw: 0.01, radio_mj_per_tx: 6.0 }
        }
        CpuArch::CortexM7 => PowerProfile { active_mw: 110.0, sleep_mw: 0.5, radio_mj_per_tx: 6.0 },
        // RP2040 class
        CpuArch::CortexM0Plus => {
            PowerProfile { active_mw: 30.0, sleep_mw: 0.18, radio_mj_per_tx: 6.0 }
        }
        // ESP32 with WiFi radio
        CpuArch::TensilicaLx6 => {
            PowerProfile { active_mw: 160.0, sleep_mw: 0.8, radio_mj_per_tx: 40.0 }
        }
    }
}

/// A battery, described by its usable energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable energy in milliwatt-hours.
    pub capacity_mwh: f64,
}

impl Battery {
    /// A CR2032 coin cell (~225 mAh at 3 V) — the paper's "coin cell".
    pub fn coin_cell() -> Battery {
        Battery { capacity_mwh: 225.0 * 3.0 }
    }

    /// A small 500 mAh LiPo at 3.7 V.
    pub fn lipo_500() -> Battery {
        Battery { capacity_mwh: 500.0 * 3.7 }
    }
}

/// The workload seen by the energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyWorkload {
    /// End-to-end latency of one classification (DSP + inference), ms.
    pub total_ms: f64,
    /// Classifications per hour (continuous duty = 3600 000 / stride_ms).
    pub inferences_per_hour: f64,
    /// Radio transmissions per hour — true detections *plus false
    /// accepts*, which is how model accuracy enters the energy budget.
    pub transmissions_per_hour: f64,
}

/// The energy estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Average power draw in milliwatts.
    pub avg_power_mw: f64,
    /// Share of average power spent computing (0–1).
    pub compute_share: f64,
    /// Share spent on the radio (0–1).
    pub radio_share: f64,
    /// Battery life in hours for the given battery.
    pub battery_life_hours: f64,
}

/// Estimates average power and battery life for a board + workload.
///
/// The duty cycle is capped at 100%: if the requested inference rate
/// exceeds what the latency allows, the device simply computes constantly.
pub fn estimate_energy(
    board: &Board,
    workload: EnergyWorkload,
    battery: Battery,
) -> EnergyEstimate {
    let profile = power_profile(board.arch);
    let active_s_per_hour = (workload.total_ms / 1000.0 * workload.inferences_per_hour).min(3600.0);
    let duty = active_s_per_hour / 3600.0;
    let compute_mw = profile.active_mw * duty;
    let sleep_mw = profile.sleep_mw * (1.0 - duty);
    // mJ/hour -> mW: divide by 3600
    let radio_mw = workload.transmissions_per_hour * profile.radio_mj_per_tx / 3600.0;
    let avg = compute_mw + sleep_mw + radio_mw;
    EnergyEstimate {
        avg_power_mw: avg,
        compute_share: if avg > 0.0 { compute_mw / avg } else { 0.0 },
        radio_share: if avg > 0.0 { radio_mw / avg } else { 0.0 },
        battery_life_hours: if avg > 0.0 { battery.capacity_mwh / avg } else { f64::INFINITY },
    }
}

/// Energy of a single classification in millijoules — the "race to sleep"
/// comparison unit across boards.
pub fn energy_per_inference_mj(board: &Board, total_ms: f64) -> f64 {
    power_profile(board.arch).active_mw * total_ms / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boards::Board;

    fn kws_workload(tx_per_hour: f64) -> EnergyWorkload {
        EnergyWorkload {
            total_ms: 500.0,
            inferences_per_hour: 3_600.0, // one per second
            transmissions_per_hour: tx_per_hour,
        }
    }

    #[test]
    fn false_accepts_shorten_battery_life() {
        // the paper's §2.1 claim: FAR drains the battery with no benefit
        let board = Board::nano33_ble_sense();
        let clean = estimate_energy(&board, kws_workload(2.0), Battery::coin_cell());
        let noisy = estimate_energy(&board, kws_workload(120.0), Battery::coin_cell());
        assert!(
            noisy.battery_life_hours < clean.battery_life_hours * 0.98,
            "120 false tx/h must cost battery: {} vs {}",
            noisy.battery_life_hours,
            clean.battery_life_hours
        );
        assert!(noisy.radio_share > clean.radio_share);
    }

    #[test]
    fn duty_cycle_capped_at_continuous() {
        let board = Board::nano33_ble_sense();
        let absurd = EnergyWorkload {
            total_ms: 5_000.0,
            inferences_per_hour: 1e9,
            transmissions_per_hour: 0.0,
        };
        let estimate = estimate_energy(&board, absurd, Battery::coin_cell());
        let active = power_profile(board.arch).active_mw;
        assert!(estimate.avg_power_mw <= active + 1e-9);
        assert!((estimate.compute_share - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sleeping_device_lasts_much_longer() {
        let board = Board::nano33_ble_sense();
        let rare = EnergyWorkload {
            total_ms: 500.0,
            inferences_per_hour: 60.0, // once a minute
            transmissions_per_hour: 0.5,
        };
        let continuous = estimate_energy(&board, kws_workload(2.0), Battery::coin_cell());
        let duty_cycled = estimate_energy(&board, rare, Battery::coin_cell());
        assert!(duty_cycled.battery_life_hours > 10.0 * continuous.battery_life_hours);
    }

    #[test]
    fn esp_radio_is_expensive() {
        let esp = Board::esp_eye();
        let nano = Board::nano33_ble_sense();
        let w = kws_workload(60.0);
        let esp_est = estimate_energy(&esp, w, Battery::lipo_500());
        let nano_est = estimate_energy(&nano, w, Battery::lipo_500());
        assert!(esp_est.avg_power_mw > nano_est.avg_power_mw);
    }

    #[test]
    fn race_to_sleep_energy_per_inference() {
        // the M0+ draws less power but runs ~4x longer on float KWS, so it
        // costs MORE energy per inference than the M4 — the race-to-sleep
        // effect that makes quantization an energy optimization
        let nano = Board::nano33_ble_sense();
        let pico = Board::raspberry_pi_pico();
        let nano_mj = energy_per_inference_mj(&nano, 2_785.0);
        let pico_mj = energy_per_inference_mj(&pico, 5_856.0);
        assert!(pico_mj > nano_mj, "pico {pico_mj} mJ vs nano {nano_mj} mJ");
        // and int8's 5x latency cut is a 5x energy cut
        let int8_mj = energy_per_inference_mj(&nano, 520.0);
        assert!(nano_mj / int8_mj > 4.0);
    }
}
