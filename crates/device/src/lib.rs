#![warn(missing_docs)]

//! Embedded device models and resource estimation for `edgelab`.
//!
//! Edge Impulse "uses Renode and device-specific benchmarking to produce
//! estimates of preprocessing and model inference times" plus RAM/flash
//! estimates before anything is flashed (paper §4.4). This crate is that
//! estimator: per-board cycle-cost models driven by the deterministic
//! op/flop counts the DSP blocks and model artifacts expose.
//!
//! The three boards of paper Table 1 are built in:
//!
//! | Board | Processor | Clock | Flash | RAM |
//! |---|---|---|---|---|
//! | Arduino Nano 33 BLE Sense | Arm Cortex-M4F | 64 MHz | 1 MB | 256 kB |
//! | ESP-EYE (ESP32) | Tensilica LX6 | 160 MHz | 4 MB | 8 MB* |
//! | Raspberry Pi Pico (RP2040) | Arm Cortex-M0+ | 133 MHz | 16 MB | 264 kB |
//!
//! *The ESP-EYE's 8 MB is external PSRAM; the paper's Table 1 lists it as
//! the working RAM, which is what the fit check uses.
//!
//! The cycle constants are calibrated so the *relative* behaviour of paper
//! Table 2 holds: int8 quantization speeds conv nets up ~5–9× on the two
//! Cortex-M parts (CMSIS-NN dual-MAC vs slow float) but <2.5× on the LX6
//! (hardware FPU, no int8 SIMD), and DSP preprocessing is a large share of
//! end-to-end latency on keyword spotting.

pub mod boards;
pub mod cycles;
pub mod energy;
pub mod error;
pub mod profile;

pub use boards::{Accelerator, Board, CpuArch};
pub use energy::{estimate_energy, Battery, EnergyEstimate, EnergyWorkload};
pub use error::DeviceError;
pub use profile::{FitCheck, LayerProfile, ProfileReport, Profiler};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DeviceError>;
