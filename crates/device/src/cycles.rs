//! Per-architecture cycle-cost constants.
//!
//! Calibrated against the paper's Table 2 measurements so the model
//! reproduces its qualitative structure:
//!
//! * Cortex-M4F: float convolutions through TFLM are slow (~35 cycles per
//!   MAC), CMSIS-NN int8 uses the dual 16-bit MAC (~5 cycles/MAC) — hence
//!   the large int8 speedups the paper reports on the Nano 33;
//! * Tensilica LX6: a hardware FPU makes float decent (~20 cycles/MAC) but
//!   there is no int8 SIMD (~11 cycles/MAC) — hence the paper's much
//!   smaller quantization gain on the ESP-EYE;
//! * Cortex-M0+: everything is software (~145 cycles per float MAC,
//!   ~26 for int8) — the Pico's large absolute latencies.

use crate::boards::CpuArch;

/// Cycles per multiply–accumulate for float32 models.
pub fn cycles_per_float_mac(arch: CpuArch) -> f64 {
    match arch {
        CpuArch::CortexM4F => 35.0,
        CpuArch::CortexM7 => 18.0,
        CpuArch::CortexM0Plus => 145.0,
        CpuArch::TensilicaLx6 => 20.0,
    }
}

/// Cycles per multiply–accumulate for fully int8 models.
pub fn cycles_per_int8_mac(arch: CpuArch) -> f64 {
    match arch {
        CpuArch::CortexM4F => 5.0,
        CpuArch::CortexM7 => 3.0,
        CpuArch::CortexM0Plus => 26.0,
        CpuArch::TensilicaLx6 => 11.0,
    }
}

/// Cycles per floating-point DSP operation (FFT butterflies, filterbank
/// MACs, window multiplies).
pub fn cycles_per_dsp_flop(arch: CpuArch) -> f64 {
    match arch {
        CpuArch::CortexM4F => 3.5,
        CpuArch::CortexM7 => 2.0,
        CpuArch::CortexM0Plus => 30.0,
        CpuArch::TensilicaLx6 => 18.0,
    }
}

/// Per-op dispatch overhead cycles of the TFLM interpreter (registry
/// lookup, tensor preparation). The EON path replaces this with
/// [`EON_DISPATCH_CYCLES`].
pub const TFLM_DISPATCH_CYCLES: f64 = 4_000.0;

/// Per-op dispatch overhead of a compiled (EON) step — effectively a
/// function call.
pub const EON_DISPATCH_CYCLES: f64 = 150.0;

/// Fixed per-invocation overhead outside preprocessing and inference
/// (buffer handoff, timestamping) — the "some overhead not measured in
/// either" the paper notes under Table 2.
pub const INVOKE_OVERHEAD_CYCLES: f64 = 20_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_always_at_least_as_fast_as_float() {
        for arch in
            [CpuArch::CortexM4F, CpuArch::CortexM7, CpuArch::CortexM0Plus, CpuArch::TensilicaLx6]
        {
            assert!(cycles_per_int8_mac(arch) < cycles_per_float_mac(arch));
        }
    }

    #[test]
    fn quantization_gain_small_on_lx6_large_on_m4() {
        let m4_gain =
            cycles_per_float_mac(CpuArch::CortexM4F) / cycles_per_int8_mac(CpuArch::CortexM4F);
        let lx6_gain = cycles_per_float_mac(CpuArch::TensilicaLx6)
            / cycles_per_int8_mac(CpuArch::TensilicaLx6);
        assert!(m4_gain > 4.0, "m4 gain {m4_gain}");
        assert!(lx6_gain < 2.5, "lx6 gain {lx6_gain}");
    }

    #[test]
    fn m0_is_slowest_everywhere() {
        for f in [cycles_per_float_mac, cycles_per_int8_mac, cycles_per_dsp_flop] {
            for arch in [CpuArch::CortexM4F, CpuArch::CortexM7, CpuArch::TensilicaLx6] {
                assert!(f(CpuArch::CortexM0Plus) > f(arch));
            }
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the modeled-cost invariant
    fn dispatch_overheads_ordered() {
        assert!(TFLM_DISPATCH_CYCLES > 10.0 * EON_DISPATCH_CYCLES);
    }
}
