//! Error type for device estimation.

use std::fmt;

/// Errors produced by the device estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The requested board name is not in the registry.
    UnknownBoard(String),
    /// An accelerator was paired with an artifact it cannot execute.
    IncompatibleAccelerator(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownBoard(name) => write!(f, "unknown board: {name}"),
            DeviceError::IncompatibleAccelerator(msg) => {
                write!(f, "incompatible accelerator: {msg}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DeviceError::UnknownBoard("x".into()).to_string().contains("x"));
    }
}
