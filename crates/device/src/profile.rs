//! The profiler: latency, RAM and flash estimates plus capacity gating.
//!
//! This is the estimation service behind the Studio's on-page numbers and
//! the EON Tuner's constraint filtering (paper §4.4, Fig. 3): given a
//! board, a DSP block cost and a deployed model, it predicts preprocessing
//! and inference milliseconds and checks whether the deployment fits the
//! board at all — the source of the "-" cells in paper Table 2.

use crate::boards::{Accelerator, Board};
use crate::cycles::{
    cycles_per_dsp_flop, cycles_per_float_mac, cycles_per_int8_mac, EON_DISPATCH_CYCLES,
    INVOKE_OVERHEAD_CYCLES, TFLM_DISPATCH_CYCLES,
};
use ei_dsp::DspCost;
use ei_runtime::{EngineKind, InferenceEngine, MemoryReport, ModelArtifact};
use ei_trace::Tracer;

/// RAM the application firmware needs outside the model (stack, sensor
/// driver buffers, SDK state).
pub const APP_RAM_OVERHEAD_BYTES: usize = 16 * 1024;

/// Flash the base firmware occupies outside the model and engine (HAL,
/// drivers, SDK glue).
pub const APP_FLASH_OVERHEAD_BYTES: usize = 96 * 1024;

/// Result of checking a deployment against a board's capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitCheck {
    /// `true` when both RAM and flash fit.
    pub fits: bool,
    /// Human-readable reasons when it does not.
    pub reasons: Vec<String>,
}

/// Complete pre-deployment estimate for one board.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Board name the estimate is for.
    pub board: String,
    /// Preprocessing latency in milliseconds.
    pub dsp_ms: f64,
    /// Model inference latency in milliseconds.
    pub inference_ms: f64,
    /// End-to-end latency including invoke overhead.
    pub total_ms: f64,
    /// DSP scratch RAM in bytes.
    pub dsp_ram_bytes: usize,
    /// Model RAM (arena + runtime state) in bytes.
    pub model_ram_bytes: usize,
    /// Model flash (weights + format + code) in bytes.
    pub model_flash_bytes: usize,
    /// Capacity check against the board.
    pub fit: FitCheck,
}

impl ProfileReport {
    /// Total RAM the deployment needs (model + DSP + application).
    pub fn total_ram_bytes(&self) -> usize {
        self.model_ram_bytes + self.dsp_ram_bytes + APP_RAM_OVERHEAD_BYTES
    }

    /// Total flash the deployment needs (model + application).
    pub fn total_flash_bytes(&self) -> usize {
        self.model_flash_bytes + APP_FLASH_OVERHEAD_BYTES
    }
}

/// One row of the per-layer latency breakdown on a specific board.
///
/// Rows come from [`InferenceEngine::op_profile`] (MACs, weight and
/// planned arena bytes) costed with the board's cycle model plus the
/// engine's per-op dispatch overhead. [`Profiler::inference_ms`] is
/// *defined* as the sum of `ms` over these rows, so the breakdown always
/// adds up exactly to the end-to-end estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Kernel-style op name.
    pub name: &'static str,
    /// Multiply–accumulate count of the op.
    pub macs: u64,
    /// Modeled cycles on this board, including per-op dispatch.
    pub cycles: f64,
    /// Modeled milliseconds on this board.
    pub ms: f64,
    /// Planned output activation buffer size in bytes.
    pub arena_bytes: usize,
    /// Parameter bytes the op reads from flash.
    pub weight_bytes: usize,
}

/// Latency/memory estimator for one board (optionally with an accelerator).
#[derive(Debug, Clone)]
pub struct Profiler {
    board: Board,
    accelerator: Option<Accelerator>,
}

impl Profiler {
    /// Creates a profiler for a board.
    pub fn new(board: Board) -> Profiler {
        Profiler { board, accelerator: None }
    }

    /// Attaches a neural accelerator (builder style).
    #[must_use]
    pub fn with_accelerator(mut self, accelerator: Accelerator) -> Profiler {
        self.accelerator = Some(accelerator);
        self
    }

    /// The profiled board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Estimates preprocessing latency for a DSP cost.
    pub fn dsp_ms(&self, cost: DspCost) -> f64 {
        let cycles = cost.flops as f64 * cycles_per_dsp_flop(self.board.arch);
        cycles / self.board.clock_hz as f64 * 1_000.0
    }

    /// Effective cycles per MAC for an artifact on this board, after any
    /// attached accelerator.
    fn effective_cycles_per_mac(&self, artifact: &ModelArtifact) -> f64 {
        let per_mac = if artifact.is_quantized() {
            cycles_per_int8_mac(self.board.arch)
        } else {
            cycles_per_float_mac(self.board.arch)
        };
        match &self.accelerator {
            Some(acc) if artifact.is_quantized() || !acc.int8_only => {
                per_mac / acc.mac_speedup as f64
            }
            _ => per_mac,
        }
    }

    /// Per-op dispatch overhead of an engine, in cycles.
    fn dispatch_cycles(kind: EngineKind) -> f64 {
        match kind {
            EngineKind::TflmInterpreter => TFLM_DISPATCH_CYCLES,
            EngineKind::EonCompiled => EON_DISPATCH_CYCLES,
        }
    }

    /// Estimates inference latency for an engine-bound model.
    ///
    /// Defined as the sum of [`Profiler::per_layer_profile`] row latencies,
    /// so the per-layer breakdown always sums exactly to this estimate.
    pub fn inference_ms(&self, engine: &dyn InferenceEngine) -> f64 {
        self.per_layer_profile(engine).iter().map(|l| l.ms).sum()
    }

    /// Checks a memory report (plus DSP scratch) against the board.
    pub fn fit(&self, memory: MemoryReport, dsp_scratch_bytes: usize) -> FitCheck {
        let ram_needed = memory.ram_total() + dsp_scratch_bytes + APP_RAM_OVERHEAD_BYTES;
        let flash_needed = memory.flash_total() + APP_FLASH_OVERHEAD_BYTES;
        let mut reasons = Vec::new();
        if ram_needed > self.board.ram_bytes {
            reasons.push(format!(
                "needs {} kB RAM, board has {} kB",
                ram_needed / 1024,
                self.board.ram_bytes / 1024
            ));
        }
        if flash_needed > self.board.flash_bytes {
            reasons.push(format!(
                "needs {} kB flash, board has {} kB",
                flash_needed / 1024,
                self.board.flash_bytes / 1024
            ));
        }
        FitCheck { fits: reasons.is_empty(), reasons }
    }

    /// Full per-layer breakdown of a model on this board — the per-layer
    /// timing view the Studio shows next to the overall estimate.
    ///
    /// Rows are in execution order; each carries the op's MACs, modeled
    /// cycles and milliseconds (including the engine's per-op dispatch
    /// overhead), its planned arena bytes and its weight bytes.
    /// [`Profiler::inference_ms`] is the exact sum of the `ms` column.
    pub fn per_layer_profile(&self, engine: &dyn InferenceEngine) -> Vec<LayerProfile> {
        let per_mac = self.effective_cycles_per_mac(engine.artifact());
        let dispatch = Self::dispatch_cycles(engine.kind());
        engine
            .op_profile()
            .into_iter()
            .map(|op| {
                let cycles = op.macs as f64 * per_mac + dispatch;
                LayerProfile {
                    name: op.name,
                    macs: op.macs,
                    cycles,
                    ms: cycles / self.board.clock_hz as f64 * 1_000.0,
                    arena_bytes: op.arena_bytes,
                    weight_bytes: op.weight_bytes,
                }
            })
            .collect()
    }

    /// Per-op latency breakdown as `(op name, estimated milliseconds)` in
    /// execution order — a thin view over [`Profiler::per_layer_profile`].
    pub fn per_op_profile(&self, engine: &dyn InferenceEngine) -> Vec<(&'static str, f64)> {
        self.per_layer_profile(engine).into_iter().map(|l| (l.name, l.ms)).collect()
    }

    /// Emits the per-layer breakdown through a tracer and returns it.
    ///
    /// Opens a `profile` span carrying the board and engine, emits one
    /// `profile.layer` event per row plus a closing `profile.total` event,
    /// and sets the `profile.inference_ms` gauge. The total equals the sum
    /// of the emitted rows exactly.
    pub fn emit_profile(&self, tracer: &Tracer, engine: &dyn InferenceEngine) -> Vec<LayerProfile> {
        let layers = self.per_layer_profile(engine);
        let total_ms: f64 = layers.iter().map(|l| l.ms).sum();
        let span = tracer.span_with(
            "profile",
            vec![
                ("board", self.board.name.as_str().into()),
                ("engine", engine.kind().to_string().into()),
                ("ops", layers.len().into()),
            ],
        );
        for layer in &layers {
            span.event(
                "profile.layer",
                vec![
                    ("op", layer.name.into()),
                    ("macs", layer.macs.into()),
                    ("cycles", layer.cycles.into()),
                    ("ms", layer.ms.into()),
                    ("arena_bytes", layer.arena_bytes.into()),
                    ("weight_bytes", layer.weight_bytes.into()),
                ],
            );
        }
        span.event("profile.total", vec![("inference_ms", total_ms.into())]);
        tracer.gauge("profile.inference_ms").set(total_ms);
        layers
    }

    /// Produces the full pre-deployment estimate for a DSP block + engine
    /// pair — what the Studio shows per target and what the EON Tuner
    /// filters on.
    pub fn profile(
        &self,
        dsp_cost: Option<DspCost>,
        engine: &dyn InferenceEngine,
    ) -> ProfileReport {
        let dsp_ms = dsp_cost.map_or(0.0, |c| self.dsp_ms(c));
        let inference_ms = self.inference_ms(engine);
        let overhead_ms = INVOKE_OVERHEAD_CYCLES / self.board.clock_hz as f64 * 1_000.0;
        let memory = engine.memory();
        let dsp_scratch = dsp_cost.map_or(0, |c| c.scratch_bytes);
        ProfileReport {
            board: self.board.name.clone(),
            dsp_ms,
            inference_ms,
            total_ms: dsp_ms + inference_ms + overhead_ms,
            dsp_ram_bytes: dsp_scratch,
            model_ram_bytes: memory.ram_total(),
            model_flash_bytes: memory.flash_total(),
            fit: self.fit(memory, dsp_scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_dsp::{blocks::MfccBlock, DspBlock, MfccConfig};
    use ei_nn::presets;
    use ei_nn::spec::Dims;
    use ei_nn::Sequential;
    use ei_runtime::{EonProgram, Interpreter, ModelArtifact};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kws_artifacts() -> (ModelArtifact, ModelArtifact) {
        let spec = presets::ds_cnn(Dims::new(49, 13, 1), 12, 64);
        let model = Sequential::build(&spec, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let calib: Vec<Vec<f32>> =
            (0..4).map(|_| (0..49 * 13).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let qmodel = ei_quant::quantize_model(&model, &calib).unwrap();
        (ModelArtifact::Float(model), ModelArtifact::Int8(qmodel))
    }

    #[test]
    fn int8_speedup_large_on_m4_small_on_lx6() {
        let (float_a, int8_a) = kws_artifacts();
        let float_eon = EonProgram::compile(float_a).unwrap();
        let int8_eon = EonProgram::compile(int8_a).unwrap();
        let m4 = Profiler::new(Board::nano33_ble_sense());
        let lx6 = Profiler::new(Board::esp_eye());
        let m4_gain = m4.inference_ms(&float_eon) / m4.inference_ms(&int8_eon);
        let lx6_gain = lx6.inference_ms(&float_eon) / lx6.inference_ms(&int8_eon);
        assert!(m4_gain > 4.0, "m4 gain {m4_gain}");
        assert!(lx6_gain < 2.5, "lx6 gain {lx6_gain}");
        assert!(m4_gain > lx6_gain);
    }

    #[test]
    fn pico_slowest_in_absolute_terms() {
        let (float_a, _) = kws_artifacts();
        let eon = EonProgram::compile(float_a).unwrap();
        let nano = Profiler::new(Board::nano33_ble_sense()).inference_ms(&eon);
        let esp = Profiler::new(Board::esp_eye()).inference_ms(&eon);
        let pico = Profiler::new(Board::raspberry_pi_pico()).inference_ms(&eon);
        assert!(pico > nano && pico > esp, "pico {pico} nano {nano} esp {esp}");
    }

    #[test]
    fn dsp_latency_ranks_by_arch() {
        let block = MfccBlock::new(MfccConfig::default()).unwrap();
        let cost = block.cost(16_000).unwrap();
        let nano = Profiler::new(Board::nano33_ble_sense()).dsp_ms(cost);
        let esp = Profiler::new(Board::esp_eye()).dsp_ms(cost);
        let pico = Profiler::new(Board::raspberry_pi_pico()).dsp_ms(cost);
        // table 2: nano fastest at preprocessing, pico slowest
        assert!(nano < esp, "nano {nano} vs esp {esp}");
        assert!(esp < pico, "esp {esp} vs pico {pico}");
        // plausible magnitudes: tens to hundreds of ms
        assert!(nano > 10.0 && pico < 5_000.0);
    }

    #[test]
    fn kws_preprocessing_significant_share_of_int8_total() {
        let (_, int8_a) = kws_artifacts();
        let eon = EonProgram::compile(int8_a).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        let block = MfccBlock::new(MfccConfig::default()).unwrap();
        let report = profiler.profile(Some(block.cost(16_000).unwrap()), &eon);
        assert!(
            report.dsp_ms > 0.2 * report.total_ms,
            "dsp {} of total {}",
            report.dsp_ms,
            report.total_ms
        );
    }

    #[test]
    fn vww_float_does_not_fit_nano33() {
        let spec = presets::mobilenet_v1(Dims::new(96, 96, 1), 2, 0.25);
        let model = Sequential::build(&spec, 3).unwrap();
        let eon = EonProgram::compile(ModelArtifact::Float(model)).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        let report = profiler.profile(None, &eon);
        assert!(!report.fit.fits, "VWW float must not fit the Nano 33 (Table 2 '-')");
        assert!(report.fit.reasons.iter().any(|r| r.contains("RAM")));
        // but it fits the ESP-EYE with 8 MB
        let esp = Profiler::new(Board::esp_eye()).profile(None, &eon);
        assert!(esp.fit.fits, "{:?}", esp.fit.reasons);
    }

    #[test]
    fn interpreter_dispatch_slower_than_eon() {
        let (float_a, _) = kws_artifacts();
        let interp = Interpreter::new(float_a.clone()).unwrap();
        let eon = EonProgram::compile(float_a).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        assert!(profiler.inference_ms(&interp) > profiler.inference_ms(&eon));
    }

    #[test]
    fn accelerator_speeds_up_int8_only() {
        let (float_a, int8_a) = kws_artifacts();
        let feon = EonProgram::compile(float_a).unwrap();
        let qeon = EonProgram::compile(int8_a).unwrap();
        let plain = Profiler::new(Board::nano33_ble_sense());
        let boosted =
            Profiler::new(Board::nano33_ble_sense()).with_accelerator(Accelerator::syntiant_like());
        assert!(boosted.inference_ms(&qeon) < plain.inference_ms(&qeon) / 5.0);
        // int8-only accelerator leaves float untouched
        assert!((boosted.inference_ms(&feon) - plain.inference_ms(&feon)).abs() < 1e-9);
    }

    #[test]
    fn per_op_profile_sums_to_inference_estimate() {
        let (float_a, _) = kws_artifacts();
        let eon = EonProgram::compile(float_a).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        let breakdown = profiler.per_op_profile(&eon);
        assert!(!breakdown.is_empty());
        let sum: f64 = breakdown.iter().map(|(_, ms)| ms).sum();
        let total = profiler.inference_ms(&eon);
        // bitwise equal: inference_ms is defined as this very sum
        assert_eq!(sum, total, "breakdown {sum} vs total {total}");
        // the conv ops dominate a DS-CNN
        let heaviest = breakdown.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(heaviest.0.contains("conv"), "heaviest op {heaviest:?}");
    }

    #[test]
    fn per_layer_profile_carries_memory_columns() {
        let (_, int8_a) = kws_artifacts();
        let eon = EonProgram::compile(int8_a).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        let layers = profiler.per_layer_profile(&eon);
        assert_eq!(layers.len(), eon.artifact().ops().len());
        assert!(layers.iter().all(|l| l.arena_bytes > 0));
        // parameterized layers report their flash weights
        assert!(layers.iter().any(|l| l.weight_bytes > 0));
        // cycles and ms agree with the board clock
        let clock_hz = profiler.board().clock_hz as f64;
        for l in &layers {
            assert_eq!(l.ms, l.cycles / clock_hz * 1_000.0);
        }
    }

    #[test]
    fn emit_profile_streams_one_event_per_layer() {
        let (float_a, _) = kws_artifacts();
        let eon = EonProgram::compile(float_a).unwrap();
        let profiler = Profiler::new(Board::esp_eye());
        let clock = ei_faults::VirtualClock::shared();
        let (tracer, collector) = ei_trace::Tracer::collecting(clock);
        let layers = profiler.emit_profile(&tracer, &eon);
        let records = collector.records();
        let layer_events = records.iter().filter(|r| r.name() == "profile.layer").count();
        assert_eq!(layer_events, layers.len());
        // the profile span opens and closes
        assert_eq!(records.iter().filter(|r| r.name() == "profile").count(), 2);
        let snapshot = tracer.metrics_snapshot();
        match snapshot.get("profile.inference_ms") {
            Some(ei_trace::MetricValue::Gauge(v)) => {
                assert_eq!(*v, profiler.inference_ms(&eon));
            }
            other => panic!("expected inference gauge, got {other:?}"),
        }
    }

    #[test]
    fn report_totals_include_overheads() {
        let (_, int8_a) = kws_artifacts();
        let eon = EonProgram::compile(int8_a).unwrap();
        let profiler = Profiler::new(Board::nano33_ble_sense());
        let report = profiler.profile(None, &eon);
        assert!(report.total_ram_bytes() >= report.model_ram_bytes + APP_RAM_OVERHEAD_BYTES);
        assert!(report.total_flash_bytes() >= report.model_flash_bytes + APP_FLASH_OVERHEAD_BYTES);
        assert!(report.total_ms > report.inference_ms);
    }
}
