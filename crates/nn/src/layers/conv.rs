//! Convolution kernels: 2-D, depthwise 2-D and 1-D, with backward passes.
//!
//! Layouts (channels last):
//! * activations: `(h, w, c)` row-major;
//! * `Conv2d` weights: `(kh, kw, c_in, c_out)`;
//! * `DepthwiseConv2d` weights: `(kh, kw, c)`;
//! * `Conv1d` weights: `(k, c_in, c_out)`.

use crate::spec::Padding;

use super::conv_out_len;

/// Geometry of a 2-D convolution (kernels may be rectangular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride in both axes.
    pub stride: usize,
    /// Padding strategy.
    pub padding: Padding,
}

impl Conv2dGeom {
    /// Output `(h, w)` plus leading pads `(pad_y, pad_x)`.
    pub fn output(&self) -> (usize, usize, usize, usize) {
        let (oh, py) = conv_out_len(self.in_h, self.kernel_h, self.stride, self.padding);
        let (ow, px) = conv_out_len(self.in_w, self.kernel_w, self.stride, self.padding);
        (oh, ow, py, px)
    }

    /// Multiply–accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        let (oh, ow, _, _) = self.output();
        (oh * ow) as u64
            * self.kernel_h as u64
            * self.kernel_w as u64
            * self.in_c as u64
            * self.out_c as u64
    }
}

/// Standard 2-D convolution forward pass.
pub fn conv2d_forward(input: &[f32], weights: &[f32], bias: &[f32], g: Conv2dGeom) -> Vec<f32> {
    let (oh, ow, _, _) = g.output();
    let mut out = vec![0.0f32; oh * ow * g.out_c];
    conv2d_forward_rows(input, weights, bias, g, 0, &mut out);
    out
}

/// Fills the output rows `[oy0, oy0 + out.len() / (ow * out_c))` of a 2-D
/// convolution into `out`.
///
/// Every output element is produced by the same accumulation sequence as
/// in [`conv2d_forward`], so any row partition reproduces it bit for bit.
pub(crate) fn conv2d_forward_rows(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
    oy0: usize,
    out: &mut [f32],
) {
    let (_, ow, py, px) = g.output();
    let rows = out.len() / (ow * g.out_c);
    for (row, oy) in (oy0..oy0 + rows).enumerate() {
        for ox in 0..ow {
            let base = (row * ow + ox) * g.out_c;
            out[base..base + g.out_c].copy_from_slice(bias);
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((iy as usize) * g.in_w + ix as usize) * g.in_c;
                    let w_base = (ky * g.kernel_w + kx) * g.in_c * g.out_c;
                    for ci in 0..g.in_c {
                        let x = input[in_base + ci];
                        if x == 0.0 {
                            continue;
                        }
                        let wrow = &weights[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                        let orow = &mut out[base..base + g.out_c];
                        for co in 0..g.out_c {
                            orow[co] += x * wrow[co];
                        }
                    }
                }
            }
        }
    }
}

/// Standard 2-D convolution backward pass.
///
/// Returns `(grad_in, grad_weights, grad_bias)`.
pub fn conv2d_backward(
    input: &[f32],
    weights: &[f32],
    g: Conv2dGeom,
    grad_out: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow, py, px) = g.output();
    let mut grad_in = vec![0.0f32; input.len()];
    let mut grad_w = vec![0.0f32; weights.len()];
    let mut grad_b = vec![0.0f32; g.out_c];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * g.out_c;
            let go = &grad_out[base..base + g.out_c];
            for (co, &gv) in go.iter().enumerate() {
                grad_b[co] += gv;
            }
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((iy as usize) * g.in_w + ix as usize) * g.in_c;
                    let w_base = (ky * g.kernel_w + kx) * g.in_c * g.out_c;
                    for ci in 0..g.in_c {
                        let x = input[in_base + ci];
                        let wrow = &weights[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                        let gwrow = &mut grad_w[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                        let mut acc = 0.0f32;
                        for co in 0..g.out_c {
                            acc += wrow[co] * go[co];
                            gwrow[co] += x * go[co];
                        }
                        grad_in[in_base + ci] += acc;
                    }
                }
            }
        }
    }
    (grad_in, grad_w, grad_b)
}

/// Depthwise 2-D convolution forward pass (channel multiplier 1).
pub fn depthwise_forward(input: &[f32], weights: &[f32], bias: &[f32], g: Conv2dGeom) -> Vec<f32> {
    debug_assert_eq!(g.in_c, g.out_c, "depthwise keeps the channel count");
    let (oh, ow, _, _) = g.output();
    let mut out = vec![0.0f32; oh * ow * g.in_c];
    depthwise_forward_rows(input, weights, bias, g, 0, &mut out);
    out
}

/// Fills the output rows `[oy0, oy0 + out.len() / (ow * c))` of a
/// depthwise convolution into `out`; see [`conv2d_forward_rows`].
pub(crate) fn depthwise_forward_rows(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
    oy0: usize,
    out: &mut [f32],
) {
    let (_, ow, py, px) = g.output();
    let c = g.in_c;
    let rows = out.len() / (ow * c);
    for (row, oy) in (oy0..oy0 + rows).enumerate() {
        for ox in 0..ow {
            let base = (row * ow + ox) * c;
            out[base..base + c].copy_from_slice(bias);
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((iy as usize) * g.in_w + ix as usize) * c;
                    let w_base = (ky * g.kernel_w + kx) * c;
                    for ch in 0..c {
                        let x = input[in_base + ch];
                        if x == 0.0 {
                            continue;
                        }
                        out[base + ch] += x * weights[w_base + ch];
                    }
                }
            }
        }
    }
}

/// Depthwise 2-D convolution backward pass.
///
/// Returns `(grad_in, grad_weights, grad_bias)`.
pub fn depthwise_backward(
    input: &[f32],
    weights: &[f32],
    g: Conv2dGeom,
    grad_out: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow, py, px) = g.output();
    let c = g.in_c;
    let mut grad_in = vec![0.0f32; input.len()];
    let mut grad_w = vec![0.0f32; weights.len()];
    let mut grad_b = vec![0.0f32; c];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * c;
            for ch in 0..c {
                grad_b[ch] += grad_out[base + ch];
            }
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((iy as usize) * g.in_w + ix as usize) * c;
                    let w_base = (ky * g.kernel_w + kx) * c;
                    for ch in 0..c {
                        let gv = grad_out[base + ch];
                        grad_in[in_base + ch] += weights[w_base + ch] * gv;
                        grad_w[w_base + ch] += input[in_base + ch] * gv;
                    }
                }
            }
        }
    }
    (grad_in, grad_w, grad_b)
}

/// Depthwise MAC count.
pub fn depthwise_macs(g: Conv2dGeom) -> u64 {
    let (oh, ow, _, _) = g.output();
    (oh * ow) as u64 * g.kernel_h as u64 * g.kernel_w as u64 * g.in_c as u64
}

/// Geometry of a 1-D convolution over `(steps, channels)` data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dGeom {
    /// Input time steps.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding strategy.
    pub padding: Padding,
}

impl Conv1dGeom {
    /// Output steps plus leading pad.
    pub fn output(&self) -> (usize, usize) {
        conv_out_len(self.in_w, self.kernel, self.stride, self.padding)
    }

    /// Multiply–accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        let (ow, _) = self.output();
        ow as u64 * self.kernel as u64 * self.in_c as u64 * self.out_c as u64
    }
}

/// 1-D convolution forward pass.
pub fn conv1d_forward(input: &[f32], weights: &[f32], bias: &[f32], g: Conv1dGeom) -> Vec<f32> {
    let (ow, _) = g.output();
    let mut out = vec![0.0f32; ow * g.out_c];
    conv1d_forward_steps(input, weights, bias, g, 0, &mut out);
    out
}

/// Fills the output steps `[ox0, ox0 + out.len() / out_c)` of a 1-D
/// convolution into `out`; see [`conv2d_forward_rows`].
pub(crate) fn conv1d_forward_steps(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv1dGeom,
    ox0: usize,
    out: &mut [f32],
) {
    let (_, pad) = g.output();
    let steps = out.len() / g.out_c;
    for (step, ox) in (ox0..ox0 + steps).enumerate() {
        let base = step * g.out_c;
        out[base..base + g.out_c].copy_from_slice(bias);
        for k in 0..g.kernel {
            let ix = (ox * g.stride + k) as isize - pad as isize;
            if ix < 0 || ix as usize >= g.in_w {
                continue;
            }
            let in_base = (ix as usize) * g.in_c;
            let w_base = k * g.in_c * g.out_c;
            for ci in 0..g.in_c {
                let x = input[in_base + ci];
                if x == 0.0 {
                    continue;
                }
                let wrow = &weights[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                let orow = &mut out[base..base + g.out_c];
                for co in 0..g.out_c {
                    orow[co] += x * wrow[co];
                }
            }
        }
    }
}

/// 1-D convolution backward pass.
///
/// Returns `(grad_in, grad_weights, grad_bias)`.
pub fn conv1d_backward(
    input: &[f32],
    weights: &[f32],
    g: Conv1dGeom,
    grad_out: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (ow, pad) = g.output();
    let mut grad_in = vec![0.0f32; input.len()];
    let mut grad_w = vec![0.0f32; weights.len()];
    let mut grad_b = vec![0.0f32; g.out_c];
    for ox in 0..ow {
        let base = ox * g.out_c;
        let go = &grad_out[base..base + g.out_c];
        for (co, &gv) in go.iter().enumerate() {
            grad_b[co] += gv;
        }
        for k in 0..g.kernel {
            let ix = (ox * g.stride + k) as isize - pad as isize;
            if ix < 0 || ix as usize >= g.in_w {
                continue;
            }
            let in_base = (ix as usize) * g.in_c;
            let w_base = k * g.in_c * g.out_c;
            for ci in 0..g.in_c {
                let x = input[in_base + ci];
                let wrow = &weights[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                let gwrow = &mut grad_w[w_base + ci * g.out_c..w_base + (ci + 1) * g.out_c];
                let mut acc = 0.0f32;
                for co in 0..g.out_c {
                    acc += wrow[co] * go[co];
                    gwrow[co] += x * go[co];
                }
                grad_in[in_base + ci] += acc;
            }
        }
    }
    (grad_in, grad_w, grad_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input
        let g = Conv2dGeom {
            in_h: 3,
            in_w: 3,
            in_c: 1,
            out_c: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: Padding::Valid,
        };
        let input: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let out = conv2d_forward(&input, &[1.0], &[0.0], g);
        assert_eq!(out, input);
    }

    #[test]
    fn conv2d_known_sum() {
        // 2x2 all-ones kernel on 3x3 ramp, valid padding
        let g = Conv2dGeom {
            in_h: 3,
            in_w: 3,
            in_c: 1,
            out_c: 1,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            padding: Padding::Valid,
        };
        let input: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let out = conv2d_forward(&input, &[1.0; 4], &[0.0], g);
        // windows: [0,1,3,4]=8, [1,2,4,5]=12, [3,4,6,7]=20, [4,5,7,8]=24
        assert_eq!(out, vec![8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv2d_same_padding_keeps_size() {
        let g = Conv2dGeom {
            in_h: 5,
            in_w: 5,
            in_c: 2,
            out_c: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        let (oh, ow, _, _) = g.output();
        assert_eq!((oh, ow), (5, 5));
        let input = vec![1.0f32; 5 * 5 * 2];
        let weights = vec![0.1f32; 3 * 3 * 2 * 3];
        let out = conv2d_forward(&input, &weights, &[0.0; 3], g);
        assert_eq!(out.len(), 5 * 5 * 3);
        // center output: full 3x3x2 window * 0.1 = 1.8
        let center = (2 * 5 + 2) * 3;
        assert!((out[center] - 1.8).abs() < 1e-5);
        // corner output: only 2x2x2 window inside = 0.8
        assert!((out[0] - 0.8).abs() < 1e-5);
    }

    fn finite_diff_check_conv2d(g: Conv2dGeom) {
        let n_in = g.in_h * g.in_w * g.in_c;
        let n_w = g.kernel_h * g.kernel_w * g.in_c * g.out_c;
        let input: Vec<f32> = (0..n_in).map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1).collect();
        let weights: Vec<f32> = (0..n_w).map(|i| ((i * 5 % 13) as f32 - 6.0) * 0.05).collect();
        let bias = vec![0.1f32; g.out_c];
        let (oh, ow, _, _) = g.output();
        let grad_out = vec![1.0f32; oh * ow * g.out_c];
        let (grad_in, grad_w, grad_b) = conv2d_backward(&input, &weights, g, &grad_out);
        let loss =
            |inp: &[f32], w: &[f32]| -> f32 { conv2d_forward(inp, w, &bias, g).iter().sum() };
        let eps = 1e-2f32;
        for i in (0..n_in).step_by(3) {
            let mut p = input.clone();
            p[i] += eps;
            let mut m = input.clone();
            m[i] -= eps;
            let num = (loss(&p, &weights) - loss(&m, &weights)) / (2.0 * eps);
            assert!((num - grad_in[i]).abs() < 0.05, "grad_in[{i}]: {num} vs {}", grad_in[i]);
        }
        for k in (0..n_w).step_by(5) {
            let mut p = weights.clone();
            p[k] += eps;
            let mut m = weights.clone();
            m[k] -= eps;
            let num = (loss(&input, &p) - loss(&input, &m)) / (2.0 * eps);
            assert!((num - grad_w[k]).abs() < 0.05, "grad_w[{k}]: {num} vs {}", grad_w[k]);
        }
        let expected_b: f32 = (oh * ow) as f32;
        assert!(grad_b.iter().all(|&b| (b - expected_b).abs() < 1e-3));
    }

    #[test]
    fn conv2d_backward_finite_difference_valid() {
        finite_diff_check_conv2d(Conv2dGeom {
            in_h: 4,
            in_w: 4,
            in_c: 2,
            out_c: 2,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Valid,
        });
    }

    #[test]
    fn conv2d_backward_finite_difference_same_strided() {
        finite_diff_check_conv2d(Conv2dGeom {
            in_h: 5,
            in_w: 5,
            in_c: 1,
            out_c: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: Padding::Same,
        });
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let g = Conv2dGeom {
            in_h: 2,
            in_w: 2,
            in_c: 2,
            out_c: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: Padding::Valid,
        };
        // channel 0 weight 2, channel 1 weight 3
        let input = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        let out = depthwise_forward(&input, &[2.0, 3.0], &[0.0, 0.0], g);
        assert_eq!(out, vec![2.0, 30.0, 4.0, 60.0, 6.0, 90.0, 8.0, 120.0]);
    }

    #[test]
    fn depthwise_backward_finite_difference() {
        let g = Conv2dGeom {
            in_h: 4,
            in_w: 4,
            in_c: 3,
            out_c: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        let n_in = 4 * 4 * 3;
        let n_w = 3 * 3 * 3;
        let input: Vec<f32> = (0..n_in).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let weights: Vec<f32> = (0..n_w).map(|i| ((i % 5) as f32 - 2.0) * 0.1).collect();
        let bias = vec![0.0f32; 3];
        let (oh, ow, _, _) = g.output();
        let grad_out = vec![1.0f32; oh * ow * 3];
        let (grad_in, grad_w, _) = depthwise_backward(&input, &weights, g, &grad_out);
        let loss =
            |inp: &[f32], w: &[f32]| -> f32 { depthwise_forward(inp, w, &bias, g).iter().sum() };
        let eps = 1e-2f32;
        for i in (0..n_in).step_by(4) {
            let mut p = input.clone();
            p[i] += eps;
            let mut m = input.clone();
            m[i] -= eps;
            let num = (loss(&p, &weights) - loss(&m, &weights)) / (2.0 * eps);
            assert!((num - grad_in[i]).abs() < 0.05);
        }
        for k in 0..n_w {
            let mut p = weights.clone();
            p[k] += eps;
            let mut m = weights.clone();
            m[k] -= eps;
            let num = (loss(&input, &p) - loss(&input, &m)) / (2.0 * eps);
            assert!((num - grad_w[k]).abs() < 0.05);
        }
    }

    #[test]
    fn conv1d_shapes_and_values() {
        let g = Conv1dGeom {
            in_w: 5,
            in_c: 1,
            out_c: 1,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
        };
        let out = conv1d_forward(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 1.0, 1.0], &[0.0], g);
        assert_eq!(out, vec![6.0, 9.0, 12.0]);
        assert_eq!(g.macs(), 3 * 3);
    }

    #[test]
    fn conv1d_backward_finite_difference() {
        let g =
            Conv1dGeom { in_w: 8, in_c: 2, out_c: 3, kernel: 3, stride: 2, padding: Padding::Same };
        let input: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect();
        let weights: Vec<f32> = (0..3 * 2 * 3).map(|i| ((i % 4) as f32 - 1.5) * 0.2).collect();
        let bias = vec![0.0f32; 3];
        let (ow, _) = g.output();
        let grad_out = vec![1.0f32; ow * 3];
        let (grad_in, grad_w, _) = conv1d_backward(&input, &weights, g, &grad_out);
        let loss =
            |inp: &[f32], w: &[f32]| -> f32 { conv1d_forward(inp, w, &bias, g).iter().sum() };
        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut p = input.clone();
            p[i] += eps;
            let mut m = input.clone();
            m[i] -= eps;
            let num = (loss(&p, &weights) - loss(&m, &weights)) / (2.0 * eps);
            assert!((num - grad_in[i]).abs() < 0.05);
        }
        for k in 0..weights.len() {
            let mut p = weights.clone();
            p[k] += eps;
            let mut m = weights.clone();
            m[k] -= eps;
            let num = (loss(&input, &p) - loss(&input, &m)) / (2.0 * eps);
            assert!((num - grad_w[k]).abs() < 0.05);
        }
    }

    #[test]
    fn mac_counts() {
        let g = Conv2dGeom {
            in_h: 10,
            in_w: 10,
            in_c: 3,
            out_c: 8,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert_eq!(g.macs(), 100 * 9 * 3 * 8);
        assert_eq!(depthwise_macs(g), 100 * 9 * 3);
    }
}
