//! im2col lowering: materialize convolution windows as GEMM operand rows.
//!
//! Each output pixel of a convolution consumes one `kernel_h × kernel_w ×
//! in_c` window of the input; writing those windows out as the rows of an
//! `(out_pixels × window)` matrix turns the convolution into a single
//! matrix multiply against the `(window × out_c)` weight matrix — exactly
//! the layout `ei-nn` already stores weights in. The blocked GEMM in
//! [`ei_tensor::gemm`] then does the arithmetic.
//!
//! Bitwise parity with the naive kernels in [`super::conv`] rests on two
//! invariants that every function here maintains:
//!
//! * **Column order is `(ky, kx, ci)` ascending** — the same order the
//!   naive loop nest walks a window in, so each output element sees the
//!   identical `f32` accumulation sequence.
//! * **Out-of-bounds taps hold the caller's `pad` value** — `0.0` for
//!   float (the GEMM's zero-skip drops them exactly like the naive
//!   bounds check does), the input zero-point for int8 (so
//!   `(x - zero_point) * w == 0` contributes nothing to the integer
//!   accumulator).
//!
//! The cost is memory: a patch matrix is `out_pixels × window` elements,
//! a `kernel_h * kernel_w`-fold blowup of the input at stride 1. These
//! buffers are transient scratch, allocated per forward call and dropped
//! before the next layer runs, so they never enter the arena plan that
//! sizes device RAM (see DESIGN.md "Kernel layer").

use super::conv::{Conv1dGeom, Conv2dGeom};

/// Rows of `(kernel_h * kernel_w * in_c)` input taps, one per output
/// pixel of a 2-D convolution, in `(ky, kx, ci)` column order.
///
/// Out-of-bounds taps (padding) hold `pad`.
pub fn im2col_2d<T: Copy>(input: &[T], g: Conv2dGeom, pad: T) -> Vec<T> {
    let (oh, ow, py, px) = g.output();
    let window = g.kernel_h * g.kernel_w * g.in_c;
    let mut patches = vec![pad; oh * ow * window];
    for oy in 0..oh {
        for ox in 0..ow {
            let row0 = (oy * ow + ox) * window;
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let src = ((iy as usize) * g.in_w + ix as usize) * g.in_c;
                    let dst = row0 + (ky * g.kernel_w + kx) * g.in_c;
                    patches[dst..dst + g.in_c].copy_from_slice(&input[src..src + g.in_c]);
                }
            }
        }
    }
    patches
}

/// Rows of `(kernel * in_c)` input taps, one per output step of a 1-D
/// convolution, in `(k, ci)` column order.
///
/// Out-of-bounds taps (padding) hold `pad`.
pub fn im2col_1d<T: Copy>(input: &[T], g: Conv1dGeom, pad: T) -> Vec<T> {
    let (ow, pad_begin) = g.output();
    let window = g.kernel * g.in_c;
    let mut patches = vec![pad; ow * window];
    for ox in 0..ow {
        let row0 = ox * window;
        for k in 0..g.kernel {
            let ix = (ox * g.stride + k) as isize - pad_begin as isize;
            if ix < 0 || ix as usize >= g.in_w {
                continue;
            }
            let src = (ix as usize) * g.in_c;
            let dst = row0 + k * g.in_c;
            patches[dst..dst + g.in_c].copy_from_slice(&input[src..src + g.in_c]);
        }
    }
    patches
}

/// Rows of `(kernel_h * kernel_w)` single-channel taps, one per output
/// pixel, gathered from channel `ch` of a channels-last input.
///
/// A depthwise convolution is `in_c` independent single-channel
/// convolutions; this is the per-channel patch matrix for one of them,
/// multiplied against the channel's weight column (see
/// [`depthwise_weight_col`]). Out-of-bounds taps hold `pad`.
pub fn im2col_dw_channel<T: Copy>(input: &[T], g: Conv2dGeom, ch: usize, pad: T) -> Vec<T> {
    let (oh, ow, py, px) = g.output();
    let c = g.in_c;
    let window = g.kernel_h * g.kernel_w;
    let mut patches = vec![pad; oh * ow * window];
    for oy in 0..oh {
        for ox in 0..ow {
            let row0 = (oy * ow + ox) * window;
            for ky in 0..g.kernel_h {
                let iy = (oy * g.stride + ky) as isize - py as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.kernel_w {
                    let ix = (ox * g.stride + kx) as isize - px as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    patches[row0 + ky * g.kernel_w + kx] =
                        input[((iy as usize) * g.in_w + ix as usize) * c + ch];
                }
            }
        }
    }
    patches
}

/// Channel `ch`'s weight column of a depthwise kernel stored `(kh, kw, c)`.
pub fn depthwise_weight_col<T: Copy>(weights: &[T], g: Conv2dGeom, ch: usize) -> Vec<T> {
    (0..g.kernel_h * g.kernel_w).map(|i| weights[i * g.in_c + ch]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Padding;

    #[test]
    fn valid_padding_rows_are_plain_windows() {
        // 3x3 single-channel ramp, 2x2 kernel, valid: 4 windows
        let g = Conv2dGeom {
            in_h: 3,
            in_w: 3,
            in_c: 1,
            out_c: 1,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            padding: Padding::Valid,
        };
        let input: Vec<f32> = (0..9).map(|x| x as f32).collect();
        let patches = im2col_2d(&input, g, 0.0f32);
        assert_eq!(patches.len(), 4 * 4);
        assert_eq!(&patches[0..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&patches[12..16], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn same_padding_fills_pad_value() {
        let g = Conv2dGeom {
            in_h: 2,
            in_w: 2,
            in_c: 1,
            out_c: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        let input = [1.0f32, 2.0, 3.0, 4.0];
        let patches = im2col_2d(&input, g, -9.0f32);
        // top-left output pixel: row/col -1 are padding
        assert_eq!(&patches[0..3], &[-9.0, -9.0, -9.0]);
        assert_eq!(patches[4], 1.0); // center tap = input[0]
    }

    #[test]
    fn int8_padding_uses_zero_point() {
        let g =
            Conv1dGeom { in_w: 3, in_c: 1, out_c: 1, kernel: 3, stride: 1, padding: Padding::Same };
        let patches = im2col_1d(&[10i8, 20, 30], g, -128i8);
        assert_eq!(patches, vec![-128, 10, 20, 10, 20, 30, 20, 30, -128]);
    }

    #[test]
    fn depthwise_channel_gather() {
        let g = Conv2dGeom {
            in_h: 2,
            in_w: 2,
            in_c: 2,
            out_c: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: Padding::Valid,
        };
        // interleaved (h, w, c): ch0 = [1,2,3,4], ch1 = [10,20,30,40]
        let input = [1.0f32, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        assert_eq!(im2col_dw_channel(&input, g, 0, 0.0), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(im2col_dw_channel(&input, g, 1, 0.0), vec![10.0, 20.0, 30.0, 40.0]);
        let w = [0.5f32, -0.5]; // (1,1,2)
        assert_eq!(depthwise_weight_col(&w, g, 1), vec![-0.5]);
    }
}
