//! Reference (scalar, `f32`) kernels with hand-written backward passes.
//!
//! These kernels are the training substrate; the quantized int8 inference
//! kernels live in `ei-quant`, and the runtime in `ei-runtime` decides
//! which to dispatch.

pub mod conv;
pub mod dense;
pub mod im2col;
pub mod pool;

use crate::spec::Padding;

/// Output length and leading pad of a strided window operation.
///
/// Returns `(out_len, pad_begin)`.
pub fn conv_out_len(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: Padding,
) -> (usize, usize) {
    match padding {
        Padding::Valid => {
            if input < kernel {
                (0, 0)
            } else {
                ((input - kernel) / stride + 1, 0)
            }
        }
        Padding::Same => {
            let out = input.div_ceil(stride);
            let pad_total = ((out - 1) * stride + kernel).saturating_sub(input);
            (out, pad_total / 2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_padding_geometry() {
        assert_eq!(conv_out_len(10, 3, 1, Padding::Valid), (8, 0));
        assert_eq!(conv_out_len(10, 3, 2, Padding::Valid), (4, 0));
        assert_eq!(conv_out_len(2, 3, 1, Padding::Valid), (0, 0));
    }

    #[test]
    fn same_padding_geometry() {
        assert_eq!(conv_out_len(10, 3, 1, Padding::Same), (10, 1));
        assert_eq!(conv_out_len(10, 3, 2, Padding::Same), (5, 0));
        assert_eq!(conv_out_len(9, 3, 2, Padding::Same), (5, 1));
        assert_eq!(conv_out_len(1, 1, 1, Padding::Same), (1, 0));
    }
}
