//! Pooling kernels with backward passes.
//!
//! Pooling windows are `size`×`size` with stride `size` (non-overlapping),
//! truncating partial windows — the convention the platform's preset
//! architectures use.

/// Output spatial size of non-overlapping pooling.
pub fn pool_out(input: usize, size: usize) -> usize {
    input / size
}

/// 2-D max pooling over `(h, w, c)` activations.
pub fn maxpool2d_forward(input: &[f32], h: usize, w: usize, c: usize, size: usize) -> Vec<f32> {
    let (oh, ow) = (pool_out(h, size), pool_out(w, size));
    let mut out = vec![f32::NEG_INFINITY; oh * ow * c];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * c;
            for ky in 0..size {
                for kx in 0..size {
                    let in_base = ((oy * size + ky) * w + ox * size + kx) * c;
                    for ch in 0..c {
                        let v = input[in_base + ch];
                        if v > out[base + ch] {
                            out[base + ch] = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Backward pass of 2-D max pooling: gradient routes to the (first) argmax
/// element of each window.
pub fn maxpool2d_backward(
    input: &[f32],
    h: usize,
    w: usize,
    c: usize,
    size: usize,
    grad_out: &[f32],
) -> Vec<f32> {
    let (oh, ow) = (pool_out(h, size), pool_out(w, size));
    let mut grad_in = vec![0.0f32; input.len()];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * c;
            for ch in 0..c {
                let mut best_idx = 0usize;
                let mut best = f32::NEG_INFINITY;
                for ky in 0..size {
                    for kx in 0..size {
                        let idx = ((oy * size + ky) * w + ox * size + kx) * c + ch;
                        if input[idx] > best {
                            best = input[idx];
                            best_idx = idx;
                        }
                    }
                }
                grad_in[best_idx] += grad_out[base + ch];
            }
        }
    }
    grad_in
}

/// 2-D average pooling.
pub fn avgpool2d_forward(input: &[f32], h: usize, w: usize, c: usize, size: usize) -> Vec<f32> {
    let (oh, ow) = (pool_out(h, size), pool_out(w, size));
    let norm = 1.0 / (size * size) as f32;
    let mut out = vec![0.0f32; oh * ow * c];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * c;
            for ky in 0..size {
                for kx in 0..size {
                    let in_base = ((oy * size + ky) * w + ox * size + kx) * c;
                    for ch in 0..c {
                        out[base + ch] += input[in_base + ch] * norm;
                    }
                }
            }
        }
    }
    out
}

/// Backward pass of 2-D average pooling: gradient spreads uniformly.
pub fn avgpool2d_backward(h: usize, w: usize, c: usize, size: usize, grad_out: &[f32]) -> Vec<f32> {
    let (oh, ow) = (pool_out(h, size), pool_out(w, size));
    let norm = 1.0 / (size * size) as f32;
    let mut grad_in = vec![0.0f32; h * w * c];
    for oy in 0..oh {
        for ox in 0..ow {
            let base = (oy * ow + ox) * c;
            for ky in 0..size {
                for kx in 0..size {
                    let in_base = ((oy * size + ky) * w + ox * size + kx) * c;
                    for ch in 0..c {
                        grad_in[in_base + ch] += grad_out[base + ch] * norm;
                    }
                }
            }
        }
    }
    grad_in
}

/// Global average pooling: `(h, w, c)` → `(1, 1, c)`.
pub fn global_avg_forward(input: &[f32], h: usize, w: usize, c: usize) -> Vec<f32> {
    let norm = 1.0 / (h * w) as f32;
    let mut out = vec![0.0f32; c];
    for pix in input.chunks(c) {
        for (o, &v) in out.iter_mut().zip(pix) {
            *o += v * norm;
        }
    }
    out
}

/// Backward pass of global average pooling.
pub fn global_avg_backward(h: usize, w: usize, c: usize, grad_out: &[f32]) -> Vec<f32> {
    let norm = 1.0 / (h * w) as f32;
    let mut grad_in = vec![0.0f32; h * w * c];
    for pix in grad_in.chunks_mut(c) {
        for (g, &go) in pix.iter_mut().zip(grad_out) {
            *g = go * norm;
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        // 4x4x1, 2x2 pooling
        #[rustfmt::skip]
        let input = vec![
            1.0, 5.0, 2.0, 0.0,
            3.0, 2.0, 8.0, 1.0,
            0.0, 0.0, 1.0, 1.0,
            9.0, 0.0, 1.0, 2.0,
        ];
        let out = maxpool2d_forward(&input, 4, 4, 1, 2);
        assert_eq!(out, vec![5.0, 8.0, 9.0, 2.0]);
    }

    #[test]
    fn maxpool_truncates_partial_windows() {
        let input = vec![1.0; 5 * 5];
        let out = maxpool2d_forward(&input, 5, 5, 1, 2);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        #[rustfmt::skip]
        let input = vec![
            1.0, 5.0,
            3.0, 2.0,
        ];
        let grad = maxpool2d_backward(&input, 2, 2, 1, 2, &[7.0]);
        assert_eq!(grad, vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_averages() {
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let out = avgpool2d_forward(&input, 2, 2, 1, 2);
        assert_eq!(out, vec![2.5]);
        let grad = avgpool2d_backward(2, 2, 1, 2, &[4.0]);
        assert_eq!(grad, vec![1.0; 4]);
    }

    #[test]
    fn pooling_respects_channels() {
        // 2x2x2: channel 0 = [1,2,3,4], channel 1 = [10,20,30,40]
        let input = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        let mx = maxpool2d_forward(&input, 2, 2, 2, 2);
        assert_eq!(mx, vec![4.0, 40.0]);
        let avg = avgpool2d_forward(&input, 2, 2, 2, 2);
        assert_eq!(avg, vec![2.5, 25.0]);
    }

    #[test]
    fn global_avg_and_backward() {
        let input = vec![1.0, 10.0, 3.0, 30.0];
        let out = global_avg_forward(&input, 2, 1, 2);
        assert_eq!(out, vec![2.0, 20.0]);
        let grad = global_avg_backward(2, 1, 2, &[4.0, 8.0]);
        assert_eq!(grad, vec![2.0, 4.0, 2.0, 4.0]);
    }

    #[test]
    fn avgpool_gradient_conserves_mass() {
        let grad_out = vec![1.0f32; 4];
        let grad_in = avgpool2d_backward(4, 4, 1, 2, &grad_out);
        let total_out: f32 = grad_out.iter().sum();
        let total_in: f32 = grad_in.iter().sum();
        assert!((total_out - total_in).abs() < 1e-6);
    }
}
