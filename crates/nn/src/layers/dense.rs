//! Fully connected layer kernels.

/// Forward pass: `out[j] = sum_i in[i] * w[i * units + j] + b[j]`.
///
/// # Panics
///
/// Debug-asserts that the buffer lengths are consistent.
pub fn dense_forward(input: &[f32], weights: &[f32], bias: &[f32], units: usize) -> Vec<f32> {
    debug_assert_eq!(weights.len(), input.len() * units);
    debug_assert_eq!(bias.len(), units);
    let mut out = bias.to_vec();
    dense_forward_cols(input, weights, units, 0, &mut out);
    out
}

/// Accumulates output columns `[col0, col0 + out.len())` into `out`,
/// which must already hold the matching bias slice.
///
/// For each column the accumulation walks inputs in index order, so any
/// column partition reproduces [`dense_forward`] bit for bit.
pub(crate) fn dense_forward_cols(
    input: &[f32],
    weights: &[f32],
    units: usize,
    col0: usize,
    out: &mut [f32],
) {
    for (i, &x) in input.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        let row = &weights[i * units + col0..i * units + col0 + out.len()];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += x * w;
        }
    }
}

/// Backward pass.
///
/// Given the upstream gradient `grad_out` (w.r.t. the layer's pre-activation
/// output), produces the gradient w.r.t. the input plus parameter gradients.
///
/// Returns `(grad_in, grad_weights, grad_bias)`.
pub fn dense_backward(
    input: &[f32],
    weights: &[f32],
    units: usize,
    grad_out: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    debug_assert_eq!(grad_out.len(), units);
    let n_in = input.len();
    let mut grad_in = vec![0.0f32; n_in];
    let mut grad_w = vec![0.0f32; weights.len()];
    for i in 0..n_in {
        let row = &weights[i * units..(i + 1) * units];
        let grow = &mut grad_w[i * units..(i + 1) * units];
        let x = input[i];
        let mut acc = 0.0f32;
        for j in 0..units {
            acc += row[j] * grad_out[j];
            grow[j] = x * grad_out[j];
        }
        grad_in[i] = acc;
    }
    (grad_in, grad_w, grad_out.to_vec())
}

/// Multiply–accumulate count of one dense forward pass.
pub fn dense_macs(inputs: usize, units: usize) -> u64 {
    inputs as u64 * units as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        // 2 inputs, 2 units; w = [[1,2],[3,4]] row-major by input
        let out = dense_forward(&[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0], &[0.5, -0.5], 2);
        assert_eq!(out, vec![1.0 + 6.0 + 0.5, 2.0 + 8.0 - 0.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let input = [0.3f32, -0.7, 1.1];
        let weights = [0.1f32, -0.2, 0.4, 0.05, -0.6, 0.3];
        let bias = [0.0f32, 0.0];
        let units = 2;
        // scalar loss = sum(out)
        let grad_out = [1.0f32, 1.0];
        let (grad_in, grad_w, grad_b) = dense_backward(&input, &weights, units, &grad_out);
        let eps = 1e-3f32;
        let loss =
            |inp: &[f32], w: &[f32]| -> f32 { dense_forward(inp, w, &bias, units).iter().sum() };
        for i in 0..input.len() {
            let mut plus = input;
            plus[i] += eps;
            let mut minus = input;
            minus[i] -= eps;
            let num = (loss(&plus, &weights) - loss(&minus, &weights)) / (2.0 * eps);
            assert!((num - grad_in[i]).abs() < 1e-2, "input grad {i}: {num} vs {}", grad_in[i]);
        }
        for k in 0..weights.len() {
            let mut plus = weights;
            plus[k] += eps;
            let mut minus = weights;
            minus[k] -= eps;
            let num = (loss(&input, &plus) - loss(&input, &minus)) / (2.0 * eps);
            assert!((num - grad_w[k]).abs() < 1e-2, "weight grad {k}: {num} vs {}", grad_w[k]);
        }
        assert_eq!(grad_b, grad_out.to_vec());
    }

    #[test]
    fn macs_counted() {
        assert_eq!(dense_macs(640, 10), 6400);
    }
}
