//! Serializable model architecture descriptions.
//!
//! A [`ModelSpec`] is the unit the platform stores in a project, the EON
//! Tuner mutates during search, and [`crate::model::Sequential::build`]
//! compiles into a runnable model.

use serde::{Deserialize, Serialize};

/// Activation function applied by a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity.
    #[default]
    None,
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` — MobileNet's bounded variant, quantization friendly.
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the *post*-activation value `y` (cheaper for sigmoid/tanh).
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Relu6 => {
                if y > 0.0 && y < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// 3-D activation dimensions in channels-last layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    /// Height (or 1 for flat data).
    pub h: usize,
    /// Width (or time steps).
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Dims {
    /// Creates dimensions.
    pub fn new(h: usize, w: usize, c: usize) -> Dims {
        Dims { h, w, c }
    }

    /// Flat element count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// Zero-padding strategy for convolutions and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Padding {
    /// No padding; output shrinks by `kernel - 1`.
    #[default]
    Valid,
    /// Pad so that `out = ceil(in / stride)`.
    Same,
}

/// One layer of a sequential model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// Output width.
        units: usize,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// 1-D convolution over the width axis (input must have `h == 1`).
    Conv1d {
        /// Number of output channels.
        filters: usize,
        /// Kernel width.
        kernel: usize,
        /// Stride along the width axis.
        stride: usize,
        /// Padding strategy.
        padding: Padding,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// 2-D convolution (NHWC).
    Conv2d {
        /// Number of output channels.
        filters: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride in both spatial axes.
        stride: usize,
        /// Padding strategy.
        padding: Padding,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// 2-D convolution with a rectangular kernel (NHWC) — e.g. the
    /// reference DS-CNN's 10×4 stem. Reported as the same `conv2d` op kind
    /// at deployment.
    Conv2dRect {
        /// Number of output channels.
        filters: usize,
        /// Kernel height.
        kernel_h: usize,
        /// Kernel width.
        kernel_w: usize,
        /// Stride in both spatial axes.
        stride: usize,
        /// Padding strategy.
        padding: Padding,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// Depthwise 2-D convolution: one filter per input channel.
    DepthwiseConv2d {
        /// Square kernel side.
        kernel: usize,
        /// Stride in both spatial axes.
        stride: usize,
        /// Padding strategy.
        padding: Padding,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// Max pooling over `size`×`size` windows with stride `size` (2-D) or
    /// over `size` steps (1-D input with `h == 1`).
    MaxPool {
        /// Window side / length.
        size: usize,
    },
    /// Average pooling with the same geometry rules as [`LayerSpec::MaxPool`].
    AvgPool {
        /// Window side / length.
        size: usize,
    },
    /// Global average pooling: collapses `h`×`w` to 1×1 per channel.
    GlobalAvgPool,
    /// Reinterprets the activation volume as new dimensions (same length).
    Reshape {
        /// New height.
        h: usize,
        /// New width.
        w: usize,
        /// New channel count.
        c: usize,
    },
    /// Flattens to `1×1×len`.
    Flatten,
    /// Training-time dropout (identity at inference).
    Dropout {
        /// Fraction of activations zeroed during training.
        rate: f32,
    },
    /// Batch normalization with frozen statistics (inference-style); folded
    /// into the preceding convolution by operator fusion (paper §4.5).
    BatchNorm,
    /// Softmax over the flattened activation.
    Softmax,
}

impl LayerSpec {
    /// Short kernel-style name (used by deployment code generation).
    pub fn op_name(&self) -> &'static str {
        match self {
            LayerSpec::Dense { .. } => "dense",
            LayerSpec::Conv1d { .. } => "conv1d",
            LayerSpec::Conv2d { .. } | LayerSpec::Conv2dRect { .. } => "conv2d",
            LayerSpec::DepthwiseConv2d { .. } => "depthwise_conv2d",
            LayerSpec::MaxPool { .. } => "max_pool",
            LayerSpec::AvgPool { .. } => "avg_pool",
            LayerSpec::GlobalAvgPool => "global_avg_pool",
            LayerSpec::Reshape { .. } => "reshape",
            LayerSpec::Flatten => "flatten",
            LayerSpec::Dropout { .. } => "dropout",
            LayerSpec::BatchNorm => "batch_norm",
            LayerSpec::Softmax => "softmax",
        }
    }
}

/// A sequential model architecture: input dimensions plus ordered layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Input activation dimensions (channels-last).
    pub input: Dims,
    /// Ordered layers.
    pub layers: Vec<LayerSpec>,
    /// Human-readable architecture name (e.g. `"DS-CNN"`).
    pub name: String,
}

impl ModelSpec {
    /// Starts a spec with the given input dimensions.
    pub fn new(input: Dims) -> ModelSpec {
        ModelSpec { input, layers: Vec::new(), name: String::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn layer(mut self, layer: LayerSpec) -> ModelSpec {
        self.layers.push(layer);
        self
    }

    /// Sets the architecture name (builder style).
    #[must_use]
    pub fn named(mut self, name: &str) -> ModelSpec {
        self.name = name.to_string();
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu6.apply(10.0), 6.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(Activation::None.apply(-3.0), -3.0);
        assert!((Activation::Tanh.apply(100.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activation_derivatives() {
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.5), 1.0);
        assert_eq!(Activation::Relu6.derivative_from_output(6.0), 0.0);
        let y = Activation::Sigmoid.apply(0.3);
        assert!((Activation::Sigmoid.derivative_from_output(y) - y * (1.0 - y)).abs() < 1e-6);
        assert_eq!(Activation::None.derivative_from_output(9.0), 1.0);
    }

    #[test]
    fn dims_len_and_display() {
        let d = Dims::new(49, 13, 1);
        assert_eq!(d.len(), 637);
        assert_eq!(d.to_string(), "49x13x1");
    }

    #[test]
    fn spec_builder() {
        let spec = ModelSpec::new(Dims::new(1, 8, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 4, activation: Activation::Relu })
            .named("tiny");
        assert_eq!(spec.depth(), 2);
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.layers[1].op_name(), "dense");
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = ModelSpec::new(Dims::new(32, 32, 3))
            .layer(LayerSpec::Conv2d {
                filters: 8,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 10, activation: Activation::None });
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
