//! Preset architectures matching the paper's evaluation models (§5.1).
//!
//! * [`ds_cnn`] — depthwise-separable CNN for keyword spotting
//!   (Sørensen et al. 2020, the MLPerf Tiny KWS model);
//! * [`mobilenet_v1`] — MobileNetV1 with a width multiplier, the Visual
//!   Wake Words model (α = 0.25 in the paper);
//! * [`mobilenet_v2_like`] — sequential approximation of MobileNetV2
//!   (expansion + depthwise + projection, no residual connections) used by
//!   the EON Tuner exploration in paper Table 3;
//! * [`conv1d_stack`] — the `Nx conv1d (a to b)` family from Table 3;
//! * [`cifar_cnn`] — the "simple convolutional neural network" trained on
//!   CIFAR-10 for the image-classification task;
//! * [`dense_mlp`] — small fully-connected baseline.

use crate::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};

/// Scales a channel count by a width multiplier, keeping at least 4 and
/// rounding to a multiple of 4 (hardware-friendly).
fn scale_channels(base: usize, alpha: f32) -> usize {
    let scaled = (base as f32 * alpha).round() as usize;
    scaled.max(4).div_ceil(4) * 4
}

/// Depthwise-separable CNN for keyword spotting.
///
/// `input` is the DSP output layout `(frames, coefficients, 1)`; `width`
/// is the channel count of every separable block (64 in the reference
/// model).
pub fn ds_cnn(input: Dims, classes: usize, width: usize) -> ModelSpec {
    // the reference model's stem is a rectangular 10x4 convolution over
    // (time, coefficients) at stride 2
    let mut spec = ModelSpec::new(input).named("DS-CNN").layer(LayerSpec::Conv2dRect {
        filters: width,
        kernel_h: 10.min(input.h),
        kernel_w: 4.min(input.w),
        stride: 2,
        padding: Padding::Same,
        activation: Activation::Relu,
    });
    for _ in 0..4 {
        spec = spec
            .layer(LayerSpec::DepthwiseConv2d {
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::Conv2d {
                filters: width,
                kernel: 1,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            });
    }
    spec.layer(LayerSpec::Dropout { rate: 0.2 })
        .layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

/// MobileNetV1 with width multiplier `alpha`.
///
/// `input` is the image layout `(h, w, c)` from the image block.
pub fn mobilenet_v1(input: Dims, classes: usize, alpha: f32) -> ModelSpec {
    // (channels, stride) sequence of the 13 separable blocks
    const BLOCKS: &[(usize, usize)] = &[
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    let mut spec =
        ModelSpec::new(input).named(&format!("MobileNetV1 {alpha}")).layer(LayerSpec::Conv2d {
            filters: scale_channels(32, alpha),
            kernel: 3,
            stride: 2,
            padding: Padding::Same,
            activation: Activation::Relu6,
        });
    for &(ch, stride) in BLOCKS {
        spec = spec
            .layer(LayerSpec::DepthwiseConv2d {
                kernel: 3,
                stride,
                padding: Padding::Same,
                activation: Activation::Relu6,
            })
            .layer(LayerSpec::Conv2d {
                filters: scale_channels(ch, alpha),
                kernel: 1,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu6,
            });
    }
    spec.layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dropout { rate: 0.1 })
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

/// Sequential MobileNetV2-style model: expansion → depthwise → projection
/// blocks without residual connections.
pub fn mobilenet_v2_like(input: Dims, classes: usize, alpha: f32) -> ModelSpec {
    // (projected channels, stride, expansion factor)
    const BLOCKS: &[(usize, usize, usize)] =
        &[(16, 1, 1), (24, 2, 6), (32, 2, 6), (64, 2, 6), (96, 1, 6), (160, 2, 6)];
    let mut spec =
        ModelSpec::new(input).named(&format!("MobileNetV2 {alpha}")).layer(LayerSpec::Conv2d {
            filters: scale_channels(32, alpha),
            kernel: 3,
            stride: 2,
            padding: Padding::Same,
            activation: Activation::Relu6,
        });
    let mut in_ch = scale_channels(32, alpha);
    for &(ch, stride, expand) in BLOCKS {
        let expanded = (in_ch * expand).max(4);
        if expand != 1 {
            spec = spec.layer(LayerSpec::Conv2d {
                filters: expanded,
                kernel: 1,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu6,
            });
        }
        spec = spec
            .layer(LayerSpec::DepthwiseConv2d {
                kernel: 3,
                stride,
                padding: Padding::Same,
                activation: Activation::Relu6,
            })
            .layer(LayerSpec::Conv2d {
                filters: scale_channels(ch, alpha),
                kernel: 1,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::None,
            });
        in_ch = scale_channels(ch, alpha);
    }
    spec.layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

/// `depth`-layer 1-D convolution stack with channel counts doubling from
/// `base_filters` — the `Nx conv1d (a to b)` family of paper Table 3.
///
/// `input` is the audio-DSP layout `(frames, coefficients, 1)`; the spec
/// starts with a reshape to `(1, frames, coefficients)` so the convolution
/// runs over time with one channel per coefficient.
pub fn conv1d_stack(input: Dims, classes: usize, depth: usize, base_filters: usize) -> ModelSpec {
    let top = base_filters << (depth.saturating_sub(1));
    let mut spec = ModelSpec::new(input)
        .named(&format!("{depth}x conv1d ({base_filters} to {top})"))
        .layer(LayerSpec::Reshape { h: 1, w: input.h, c: input.w * input.c });
    let mut steps = input.h;
    for d in 0..depth {
        spec = spec.layer(LayerSpec::Conv1d {
            filters: base_filters << d,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
        if steps >= 4 {
            spec = spec.layer(LayerSpec::MaxPool { size: 2 });
            steps /= 2;
        }
    }
    spec.layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dropout { rate: 0.25 })
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

/// Small convolutional network for 32×32 image classification (the paper's
/// CIFAR-10 task).
pub fn cifar_cnn(input: Dims, classes: usize) -> ModelSpec {
    ModelSpec::new(input)
        .named("CIFAR CNN")
        .layer(LayerSpec::Conv2d {
            filters: 16,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::MaxPool { size: 2 })
        .layer(LayerSpec::Conv2d {
            filters: 32,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::MaxPool { size: 2 })
        .layer(LayerSpec::Conv2d {
            filters: 64,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::GlobalAvgPool)
        .layer(LayerSpec::Dropout { rate: 0.2 })
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

/// Two-hidden-layer perceptron baseline for flat features.
pub fn dense_mlp(input: Dims, classes: usize, hidden: usize) -> ModelSpec {
    ModelSpec::new(input)
        .named(&format!("MLP {hidden}"))
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense { units: hidden, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: hidden / 2, activation: Activation::Relu })
        .layer(LayerSpec::Dense { units: classes, activation: Activation::None })
        .layer(LayerSpec::Softmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sequential;

    #[test]
    fn ds_cnn_builds_and_runs() {
        let spec = ds_cnn(Dims::new(49, 13, 1), 12, 64);
        let model = Sequential::build(&spec, 1).unwrap();
        let out = model.forward(&vec![0.1; 49 * 13]).unwrap();
        assert_eq!(out.len(), 12);
        // reference DS-CNN has ~20-40k parameters
        let params = model.param_count();
        assert!((15_000..60_000).contains(&params), "params {params}");
    }

    #[test]
    fn mobilenet_v1_quarter_scale() {
        let spec = mobilenet_v1(Dims::new(96, 96, 1), 2, 0.25);
        let model = Sequential::build(&spec, 1).unwrap();
        let params = model.param_count();
        // MobileNetV1-0.25 for VWW is ~200-250k parameters
        assert!((150_000..320_000).contains(&params), "params {params}");
        let out = model.forward(&vec![0.5; 96 * 96]).unwrap();
        assert_eq!(out.len(), 2);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mobilenet_v2_like_scales_with_alpha() {
        let small = Sequential::build(&mobilenet_v2_like(Dims::new(49, 40, 1), 12, 0.35), 1)
            .unwrap()
            .param_count();
        let large = Sequential::build(&mobilenet_v2_like(Dims::new(49, 40, 1), 12, 1.0), 1)
            .unwrap()
            .param_count();
        assert!(large > small * 2, "alpha must scale parameters: {small} vs {large}");
    }

    #[test]
    fn conv1d_stack_naming_and_shapes() {
        let spec = conv1d_stack(Dims::new(99, 13, 1), 12, 4, 32);
        assert_eq!(spec.name, "4x conv1d (32 to 256)");
        let model = Sequential::build(&spec, 1).unwrap();
        let out = model.forward(&vec![0.0; 99 * 13]).unwrap();
        assert_eq!(out.len(), 12);
    }

    #[test]
    fn conv1d_stack_depth_grows_params() {
        let d2 = Sequential::build(&conv1d_stack(Dims::new(99, 13, 1), 12, 2, 32), 1)
            .unwrap()
            .param_count();
        let d4 = Sequential::build(&conv1d_stack(Dims::new(99, 13, 1), 12, 4, 32), 1)
            .unwrap()
            .param_count();
        assert!(d4 > d2 * 3);
    }

    #[test]
    fn cifar_cnn_parameter_budget() {
        let spec = cifar_cnn(Dims::new(32, 32, 3), 10);
        let model = Sequential::build(&spec, 1).unwrap();
        let params = model.param_count();
        // the paper's "simple CNN" fits in ~107 kB of flash as float32
        assert!((15_000..40_000).contains(&params), "params {params}");
        let out = model.forward(&vec![0.3; 32 * 32 * 3]).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn dense_mlp_runs() {
        let spec = dense_mlp(Dims::new(1, 57, 1), 3, 32);
        let model = Sequential::build(&spec, 1).unwrap();
        assert_eq!(model.forward(&vec![0.0; 57]).unwrap().len(), 3);
    }

    #[test]
    fn channel_scaling_rounds_to_multiple_of_four() {
        assert_eq!(scale_channels(32, 0.25), 8);
        assert_eq!(scale_channels(1024, 0.25), 256);
        assert_eq!(scale_channels(10, 0.1), 4);
        assert_eq!(scale_channels(30, 0.33), 12);
    }

    #[test]
    fn all_presets_report_macs() {
        let specs = vec![
            ds_cnn(Dims::new(49, 13, 1), 12, 64),
            mobilenet_v1(Dims::new(96, 96, 1), 2, 0.25),
            mobilenet_v2_like(Dims::new(49, 40, 1), 12, 0.35),
            conv1d_stack(Dims::new(99, 13, 1), 12, 3, 16),
            cifar_cnn(Dims::new(32, 32, 3), 10),
        ];
        for spec in specs {
            let model = Sequential::build(&spec, 1).unwrap();
            assert!(model.macs() > 1000, "{} has implausible macs", spec.name);
        }
    }
}
