//! Gradient-descent optimizers: SGD with momentum and Adam.

use std::collections::HashMap;

/// Identifies one parameter tensor within a model.
///
/// `(layer index, 0 = weights / 1 = bias)`.
pub type ParamKey = (usize, u8);

/// Optimizer algorithm and hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl Default for OptimizerKind {
    /// Adam with the canonical defaults — what the platform's learn blocks
    /// use out of the box.
    fn default() -> Self {
        OptimizerKind::Adam { beta1: 0.9, beta2: 0.999, eps: 1e-7 }
    }
}

/// A stateful optimizer: per-parameter moment buffers keyed by [`ParamKey`].
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// SGD velocity or Adam first moment.
    m: HashMap<ParamKey, Vec<f32>>,
    /// Adam second moment.
    v: HashMap<ParamKey, Vec<f32>>,
    /// Adam step counter (for bias correction).
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer of the given kind.
    pub fn new(kind: OptimizerKind) -> Optimizer {
        Optimizer { kind, m: HashMap::new(), v: HashMap::new(), t: 0 }
    }

    /// Advances the shared step counter — call once per minibatch, before
    /// the per-parameter [`Optimizer::step`] calls of that batch.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one update to `params` in place given `grads`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `params` and `grads` have equal lengths and that
    /// [`Optimizer::begin_step`] was called at least once.
    pub fn step(&mut self, key: ParamKey, params: &mut [f32], grads: &[f32], lr: f32) {
        debug_assert_eq!(params.len(), grads.len());
        debug_assert!(self.t > 0, "call begin_step before step");
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                let vel = self.m.entry(key).or_insert_with(|| vec![0.0; params.len()]);
                for ((p, &g), v) in params.iter_mut().zip(grads).zip(vel.iter_mut()) {
                    *v = momentum * *v - lr * g;
                    *p += *v;
                }
            }
            OptimizerKind::Adam { beta1, beta2, eps } => {
                let m = self.m.entry(key).or_insert_with(|| vec![0.0; params.len()]);
                let v = self.v.entry(key).or_insert_with(|| vec![0.0; params.len()]);
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for i in 0..params.len() {
                    let g = grads[i];
                    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                    let m_hat = m[i] / bc1;
                    let v_hat = v[i] / bc2;
                    params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    /// Clears all moment buffers (used when restarting training).
    pub fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and returns the final x.
    fn minimize(kind: OptimizerKind, lr: f32, steps: usize) -> f32 {
        let mut opt = Optimizer::new(kind);
        let mut x = [0.0f32];
        for _ in 0..steps {
            let grad = [2.0 * (x[0] - 3.0)];
            opt.begin_step();
            opt.step((0, 0), &mut x, &grad, lr);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(OptimizerKind::Sgd { momentum: 0.0 }, 0.1, 100);
        assert!((x - 3.0).abs() < 1e-3, "sgd converged to {x}");
    }

    #[test]
    fn momentum_accelerates() {
        let plain = minimize(OptimizerKind::Sgd { momentum: 0.0 }, 0.01, 50);
        let fast = minimize(OptimizerKind::Sgd { momentum: 0.9 }, 0.01, 50);
        assert!((fast - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(OptimizerKind::default(), 0.1, 500);
        assert!((x - 3.0).abs() < 1e-2, "adam converged to {x}");
    }

    #[test]
    fn separate_keys_have_separate_state() {
        let mut opt = Optimizer::new(OptimizerKind::Sgd { momentum: 0.9 });
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        opt.begin_step();
        opt.step((0, 0), &mut a, &[1.0], 0.1);
        opt.step((1, 0), &mut b, &[1.0], 0.1);
        // both get the same first update despite sharing the optimizer
        assert_eq!(a[0], b[0]);
        // second step with zero grad for b: momentum should still move it
        opt.begin_step();
        opt.step((1, 0), &mut b, &[0.0], 0.1);
        assert!(b[0] < a[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Optimizer::new(OptimizerKind::default());
        let mut x = [1.0f32];
        opt.begin_step();
        opt.step((0, 0), &mut x, &[1.0], 0.01);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty() && opt.v.is_empty());
    }
}
