//! Compiled sequential models: shape inference, forward, backward.

use crate::layers::conv::{
    conv1d_backward, conv2d_backward, depthwise_backward, depthwise_macs, Conv1dGeom, Conv2dGeom,
};
use crate::layers::dense::{dense_backward, dense_macs};
use crate::layers::pool::{
    avgpool2d_backward, avgpool2d_forward, global_avg_backward, global_avg_forward,
    maxpool2d_backward, maxpool2d_forward, pool_out,
};
use crate::par::{
    conv1d_forward_auto, conv2d_forward_auto, dense_forward_auto, depthwise_forward_auto,
};
#[cfg(test)]
use crate::spec::Padding;
use crate::spec::{Activation, Dims, LayerSpec, ModelSpec};
use crate::{NnError, Result};
use ei_par::ParPool;
use ei_tensor::init::{init_tensor, Init};
use ei_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Epsilon used by batch normalization.
const BN_EPS: f32 = 1e-3;

/// A compiled layer: spec, resolved shapes and (optional) parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Layer {
    /// The architecture description this layer was built from.
    pub spec: LayerSpec,
    /// Input activation dimensions.
    pub input: Dims,
    /// Output activation dimensions.
    pub output: Dims,
    /// Weight tensor, if the layer has one.
    pub weights: Option<Tensor>,
    /// Bias tensor, if the layer has one.
    pub bias: Option<Tensor>,
    /// Frozen layers are skipped by the optimizer (transfer learning).
    pub frozen: bool,
}

impl Layer {
    /// Trainable parameter count (frozen layers still report theirs).
    pub fn param_count(&self) -> usize {
        self.weights.as_ref().map_or(0, Tensor::len) + self.bias.as_ref().map_or(0, Tensor::len)
    }

    /// Multiply–accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        match &self.spec {
            LayerSpec::Dense { units, .. } => dense_macs(self.input.len(), *units),
            LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => Conv1dGeom {
                in_w: self.input.w,
                in_c: self.input.c,
                out_c: *filters,
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
            }
            .macs(),
            LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => Conv2dGeom {
                in_h: self.input.h,
                in_w: self.input.w,
                in_c: self.input.c,
                out_c: *filters,
                kernel_h: *kernel,
                kernel_w: *kernel,
                stride: *stride,
                padding: *padding,
            }
            .macs(),
            LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => {
                Conv2dGeom {
                    in_h: self.input.h,
                    in_w: self.input.w,
                    in_c: self.input.c,
                    out_c: *filters,
                    kernel_h: *kernel_h,
                    kernel_w: *kernel_w,
                    stride: *stride,
                    padding: *padding,
                }
                .macs()
            }
            LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
                depthwise_macs(Conv2dGeom {
                    in_h: self.input.h,
                    in_w: self.input.w,
                    in_c: self.input.c,
                    out_c: self.input.c,
                    kernel_h: *kernel,
                    kernel_w: *kernel,
                    stride: *stride,
                    padding: *padding,
                })
            }
            LayerSpec::MaxPool { .. } | LayerSpec::AvgPool { .. } => self.input.len() as u64,
            LayerSpec::GlobalAvgPool => self.input.len() as u64,
            LayerSpec::BatchNorm => self.input.len() as u64 * 2,
            LayerSpec::Softmax => self.input.len() as u64 * 4,
            LayerSpec::Reshape { .. } | LayerSpec::Flatten | LayerSpec::Dropout { .. } => 0,
        }
    }

    /// The activation function this layer applies, if any.
    pub fn activation(&self) -> Activation {
        match &self.spec {
            LayerSpec::Dense { activation, .. }
            | LayerSpec::Conv1d { activation, .. }
            | LayerSpec::Conv2d { activation, .. }
            | LayerSpec::Conv2dRect { activation, .. }
            | LayerSpec::DepthwiseConv2d { activation, .. } => *activation,
            _ => Activation::None,
        }
    }
}

/// Per-layer parameter gradients produced by one backward pass.
#[derive(Debug, Clone, Default)]
pub struct LayerGrads {
    /// Gradient w.r.t. the weight tensor, if the layer has weights.
    pub weights: Option<Vec<f32>>,
    /// Gradient w.r.t. the bias tensor, if the layer has a bias.
    pub bias: Option<Vec<f32>>,
}

/// Intermediate activations recorded during a cached forward pass.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// `activations[0]` is the input; `activations[i + 1]` is layer `i`'s output.
    pub activations: Vec<Vec<f32>>,
    /// Dropout masks (1.0 = kept, 0.0 = dropped), recorded per layer.
    pub masks: Vec<Option<Vec<f32>>>,
}

impl ForwardCache {
    /// The model output (last activation).
    pub fn output(&self) -> &[f32] {
        self.activations.last().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A compiled sequential model.
///
/// Built from a [`ModelSpec`] with [`Sequential::build`]; supports
/// inference ([`Sequential::forward`]), cached training passes and
/// backpropagation, plus the resource accounting (`macs`, `param_count`)
/// that the device cost model consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    spec: ModelSpec,
    layers: Vec<Layer>,
}

impl Sequential {
    /// Compiles a spec: infers every shape and initializes parameters
    /// deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when a layer is incompatible with
    /// its input shape (e.g. a kernel larger than the activation, a 1-D
    /// convolution on 2-D data, or a reshape that changes the element count).
    pub fn build(spec: &ModelSpec, seed: u64) -> Result<Sequential> {
        let mut layers = Vec::with_capacity(spec.layers.len());
        let mut dims = spec.input;
        for (index, layer_spec) in spec.layers.iter().enumerate() {
            let invalid = |reason: String| NnError::InvalidLayer { index, reason };
            let layer_seed = seed.wrapping_add(index as u64 * 0x9e37_79b9);
            let layer = match layer_spec {
                LayerSpec::Dense { units, .. } => {
                    if *units == 0 {
                        return Err(invalid("dense units must be non-zero".into()));
                    }
                    let fan_in = dims.len();
                    let weights = init_tensor(
                        Shape::d2(fan_in, *units),
                        Init::XavierUniform,
                        fan_in,
                        *units,
                        layer_seed,
                    );
                    let bias = Tensor::zeros_f32(Shape::d1(*units));
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: Dims::new(1, 1, *units),
                        weights: Some(weights),
                        bias: Some(bias),
                        frozen: false,
                    }
                }
                LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => {
                    if dims.h != 1 {
                        return Err(invalid(format!("conv1d requires h == 1, got input {dims}")));
                    }
                    if *filters == 0 || *kernel == 0 || *stride == 0 {
                        return Err(invalid("conv1d parameters must be non-zero".into()));
                    }
                    let geom = Conv1dGeom {
                        in_w: dims.w,
                        in_c: dims.c,
                        out_c: *filters,
                        kernel: *kernel,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (ow, _) = geom.output();
                    if ow == 0 {
                        return Err(invalid(format!(
                            "kernel {kernel} larger than input width {}",
                            dims.w
                        )));
                    }
                    let fan_in = kernel * dims.c;
                    let weights = init_tensor(
                        Shape::d3(*kernel, dims.c, *filters),
                        Init::HeNormal,
                        fan_in,
                        kernel * filters,
                        layer_seed,
                    );
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: Dims::new(1, ow, *filters),
                        weights: Some(weights),
                        bias: Some(Tensor::zeros_f32(Shape::d1(*filters))),
                        frozen: false,
                    }
                }
                LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => {
                    if *filters == 0 || *kernel == 0 || *stride == 0 {
                        return Err(invalid("conv2d parameters must be non-zero".into()));
                    }
                    let geom = Conv2dGeom {
                        in_h: dims.h,
                        in_w: dims.w,
                        in_c: dims.c,
                        out_c: *filters,
                        kernel_h: *kernel,
                        kernel_w: *kernel,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (oh, ow, _, _) = geom.output();
                    if oh == 0 || ow == 0 {
                        return Err(invalid(format!("kernel {kernel} larger than input {dims}")));
                    }
                    let fan_in = kernel * kernel * dims.c;
                    let weights = init_tensor(
                        Shape::d4(*kernel, *kernel, dims.c, *filters),
                        Init::HeNormal,
                        fan_in,
                        kernel * kernel * filters,
                        layer_seed,
                    );
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: Dims::new(oh, ow, *filters),
                        weights: Some(weights),
                        bias: Some(Tensor::zeros_f32(Shape::d1(*filters))),
                        frozen: false,
                    }
                }
                LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => {
                    if *filters == 0 || *kernel_h == 0 || *kernel_w == 0 || *stride == 0 {
                        return Err(invalid("conv2d parameters must be non-zero".into()));
                    }
                    let geom = Conv2dGeom {
                        in_h: dims.h,
                        in_w: dims.w,
                        in_c: dims.c,
                        out_c: *filters,
                        kernel_h: *kernel_h,
                        kernel_w: *kernel_w,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (oh, ow, _, _) = geom.output();
                    if oh == 0 || ow == 0 {
                        return Err(invalid(format!(
                            "kernel {kernel_h}x{kernel_w} larger than input {dims}"
                        )));
                    }
                    let fan_in = kernel_h * kernel_w * dims.c;
                    let weights = init_tensor(
                        Shape::d4(*kernel_h, *kernel_w, dims.c, *filters),
                        Init::HeNormal,
                        fan_in,
                        kernel_h * kernel_w * filters,
                        layer_seed,
                    );
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: Dims::new(oh, ow, *filters),
                        weights: Some(weights),
                        bias: Some(Tensor::zeros_f32(Shape::d1(*filters))),
                        frozen: false,
                    }
                }
                LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
                    if *kernel == 0 || *stride == 0 {
                        return Err(invalid("depthwise parameters must be non-zero".into()));
                    }
                    let geom = Conv2dGeom {
                        in_h: dims.h,
                        in_w: dims.w,
                        in_c: dims.c,
                        out_c: dims.c,
                        kernel_h: *kernel,
                        kernel_w: *kernel,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (oh, ow, _, _) = geom.output();
                    if oh == 0 || ow == 0 {
                        return Err(invalid(format!("kernel {kernel} larger than input {dims}")));
                    }
                    let fan_in = kernel * kernel;
                    let weights = init_tensor(
                        Shape::d3(*kernel, *kernel, dims.c),
                        Init::HeNormal,
                        fan_in,
                        fan_in,
                        layer_seed,
                    );
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: Dims::new(oh, ow, dims.c),
                        weights: Some(weights),
                        bias: Some(Tensor::zeros_f32(Shape::d1(dims.c))),
                        frozen: false,
                    }
                }
                LayerSpec::MaxPool { size } | LayerSpec::AvgPool { size } => {
                    if *size == 0 {
                        return Err(invalid("pool size must be non-zero".into()));
                    }
                    let output = if dims.h == 1 {
                        let ow = pool_out(dims.w, *size);
                        if ow == 0 {
                            return Err(invalid(format!(
                                "pool size {size} larger than width {}",
                                dims.w
                            )));
                        }
                        Dims::new(1, ow, dims.c)
                    } else {
                        let (oh, ow) = (pool_out(dims.h, *size), pool_out(dims.w, *size));
                        if oh == 0 || ow == 0 {
                            return Err(invalid(format!(
                                "pool size {size} larger than input {dims}"
                            )));
                        }
                        Dims::new(oh, ow, dims.c)
                    };
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output,
                        weights: None,
                        bias: None,
                        frozen: false,
                    }
                }
                LayerSpec::GlobalAvgPool => Layer {
                    spec: layer_spec.clone(),
                    input: dims,
                    output: Dims::new(1, 1, dims.c),
                    weights: None,
                    bias: None,
                    frozen: false,
                },
                LayerSpec::Reshape { h, w, c } => {
                    let target = Dims::new(*h, *w, *c);
                    if target.len() != dims.len() {
                        return Err(invalid(format!(
                            "reshape {target} has {} elements, input {dims} has {}",
                            target.len(),
                            dims.len()
                        )));
                    }
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: target,
                        weights: None,
                        bias: None,
                        frozen: false,
                    }
                }
                LayerSpec::Flatten => Layer {
                    spec: layer_spec.clone(),
                    input: dims,
                    output: Dims::new(1, 1, dims.len()),
                    weights: None,
                    bias: None,
                    frozen: false,
                },
                LayerSpec::Dropout { rate } => {
                    if !(0.0..1.0).contains(rate) {
                        return Err(invalid(format!("dropout rate {rate} must be in [0, 1)")));
                    }
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: dims,
                        weights: None,
                        bias: None,
                        frozen: false,
                    }
                }
                LayerSpec::BatchNorm => {
                    // rows: gamma, beta, running mean, running variance
                    let c = dims.c;
                    let mut data = vec![0.0f32; 4 * c];
                    for g in data.iter_mut().take(c) {
                        *g = 1.0; // gamma
                    }
                    for v in data.iter_mut().skip(3 * c) {
                        *v = 1.0; // variance
                    }
                    Layer {
                        spec: layer_spec.clone(),
                        input: dims,
                        output: dims,
                        weights: Some(Tensor::from_f32(Shape::d2(4, c), data)?),
                        bias: None,
                        frozen: true,
                    }
                }
                LayerSpec::Softmax => Layer {
                    spec: layer_spec.clone(),
                    input: dims,
                    output: dims,
                    weights: None,
                    bias: None,
                    frozen: false,
                },
            };
            dims = layer.output;
            layers.push(layer);
        }
        Ok(Sequential { spec: spec.clone(), layers })
    }

    /// Reassembles a model from a spec and pre-built layers.
    ///
    /// Used by graph transforms (operator fusion, quantization) that edit
    /// the layer list while preserving trained parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the layer chain's shapes do
    /// not connect or do not match the spec.
    pub fn from_parts(spec: ModelSpec, layers: Vec<Layer>) -> Result<Sequential> {
        if spec.layers.len() != layers.len() {
            return Err(NnError::InvalidLayer {
                index: 0,
                reason: format!(
                    "spec has {} layers but {} were provided",
                    spec.layers.len(),
                    layers.len()
                ),
            });
        }
        let mut dims = spec.input;
        for (index, layer) in layers.iter().enumerate() {
            if layer.input != dims {
                return Err(NnError::InvalidLayer {
                    index,
                    reason: format!("expected input {dims}, layer declares {}", layer.input),
                });
            }
            if layer.spec != spec.layers[index] {
                return Err(NnError::InvalidLayer {
                    index,
                    reason: "layer spec does not match model spec".into(),
                });
            }
            dims = layer.output;
        }
        Ok(Sequential { spec, layers })
    }

    /// The spec this model was compiled from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Input dimensions.
    pub fn input_dims(&self) -> Dims {
        self.spec.input
    }

    /// Output dimensions.
    pub fn output_dims(&self) -> Dims {
        self.layers.last().map_or(self.spec.input, |l| l.output)
    }

    /// Compiled layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the compiled layers (used by the optimizer and by
    /// quantization/fusion passes).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Total multiply–accumulate count of one forward pass.
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Size of the largest single activation (elements) — the dominant term
    /// of inference RAM.
    pub fn peak_activation_elems(&self) -> usize {
        let mut peak = self.spec.input.len();
        for l in &self.layers {
            peak = peak.max(l.output.len());
        }
        peak
    }

    /// Freezes the first `n` layers (transfer learning, paper §4.3).
    pub fn freeze_first(&mut self, n: usize) {
        for layer in self.layers.iter_mut().take(n) {
            layer.frozen = true;
        }
    }

    /// Sets the bias of the final parameterized layer — classifier bias
    /// initialization from class priors (paper §4.3).
    ///
    /// # Errors
    ///
    /// Fails when no parameterized layer exists or the length differs.
    pub fn set_output_bias(&mut self, values: &[f32]) -> Result<()> {
        let layer = self
            .layers
            .iter_mut()
            .rev()
            .find(|l| l.bias.is_some())
            .ok_or_else(|| NnError::InvalidTrainingData("model has no biased layer".into()))?;
        let bias = layer.bias.as_mut().expect("filtered for Some above");
        if bias.len() != values.len() {
            return Err(NnError::InputLengthMismatch {
                expected: bias.len(),
                actual: values.len(),
            });
        }
        bias.as_f32_mut()?.copy_from_slice(values);
        Ok(())
    }

    /// Inference forward pass (dropout disabled).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputLengthMismatch`] for wrongly sized inputs.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>> {
        let cache = self.forward_cached(input, false, None)?;
        Ok(cache.activations.into_iter().next_back().unwrap_or_default())
    }

    /// Forward pass that records every intermediate activation.
    ///
    /// With `training == true`, dropout layers sample masks from `rng`
    /// (required in that case).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputLengthMismatch`] for wrongly sized inputs, or
    /// [`NnError::InvalidTrainingData`] when training mode lacks an RNG.
    pub fn forward_cached(
        &self,
        input: &[f32],
        training: bool,
        mut rng: Option<&mut StdRng>,
    ) -> Result<ForwardCache> {
        if input.len() != self.spec.input.len() {
            return Err(NnError::InputLengthMismatch {
                expected: self.spec.input.len(),
                actual: input.len(),
            });
        }
        let pool = ParPool::global();
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut masks = Vec::with_capacity(self.layers.len());
        activations.push(input.to_vec());
        for layer in &self.layers {
            let x = activations.last().expect("seeded with input");
            let mut mask = None;
            let mut out = match &layer.spec {
                LayerSpec::Dense { units, .. } => dense_forward_auto(
                    pool,
                    x,
                    layer.weights.as_ref().expect("dense has weights").as_f32()?,
                    layer.bias.as_ref().expect("dense has bias").as_f32()?,
                    *units,
                ),
                LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => conv1d_forward_auto(
                    pool,
                    x,
                    layer.weights.as_ref().expect("conv1d has weights").as_f32()?,
                    layer.bias.as_ref().expect("conv1d has bias").as_f32()?,
                    Conv1dGeom {
                        in_w: layer.input.w,
                        in_c: layer.input.c,
                        out_c: *filters,
                        kernel: *kernel,
                        stride: *stride,
                        padding: *padding,
                    },
                ),
                LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => conv2d_forward_auto(
                    pool,
                    x,
                    layer.weights.as_ref().expect("conv2d has weights").as_f32()?,
                    layer.bias.as_ref().expect("conv2d has bias").as_f32()?,
                    Conv2dGeom {
                        in_h: layer.input.h,
                        in_w: layer.input.w,
                        in_c: layer.input.c,
                        out_c: *filters,
                        kernel_h: *kernel,
                        kernel_w: *kernel,
                        stride: *stride,
                        padding: *padding,
                    },
                ),
                LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => {
                    conv2d_forward_auto(
                        pool,
                        x,
                        layer.weights.as_ref().expect("conv2d has weights").as_f32()?,
                        layer.bias.as_ref().expect("conv2d has bias").as_f32()?,
                        Conv2dGeom {
                            in_h: layer.input.h,
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: *filters,
                            kernel_h: *kernel_h,
                            kernel_w: *kernel_w,
                            stride: *stride,
                            padding: *padding,
                        },
                    )
                }
                LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
                    depthwise_forward_auto(
                        pool,
                        x,
                        layer.weights.as_ref().expect("depthwise has weights").as_f32()?,
                        layer.bias.as_ref().expect("depthwise has bias").as_f32()?,
                        Conv2dGeom {
                            in_h: layer.input.h,
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: layer.input.c,
                            kernel_h: *kernel,
                            kernel_w: *kernel,
                            stride: *stride,
                            padding: *padding,
                        },
                    )
                }
                LayerSpec::MaxPool { size } => {
                    if layer.input.h == 1 {
                        pool1d(x, layer.input.w, layer.input.c, *size, true)
                    } else {
                        maxpool2d_forward(x, layer.input.h, layer.input.w, layer.input.c, *size)
                    }
                }
                LayerSpec::AvgPool { size } => {
                    if layer.input.h == 1 {
                        pool1d(x, layer.input.w, layer.input.c, *size, false)
                    } else {
                        avgpool2d_forward(x, layer.input.h, layer.input.w, layer.input.c, *size)
                    }
                }
                LayerSpec::GlobalAvgPool => {
                    global_avg_forward(x, layer.input.h, layer.input.w, layer.input.c)
                }
                LayerSpec::Reshape { .. } | LayerSpec::Flatten => x.clone(),
                LayerSpec::Dropout { rate } => {
                    if training {
                        let rng = rng.as_deref_mut().ok_or_else(|| {
                            NnError::InvalidTrainingData(
                                "training forward pass requires an rng for dropout".into(),
                            )
                        })?;
                        let keep = 1.0 - rate;
                        let m: Vec<f32> = (0..x.len())
                            .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                            .collect();
                        let out = x.iter().zip(&m).map(|(v, k)| v * k).collect();
                        mask = Some(m);
                        out
                    } else {
                        x.clone()
                    }
                }
                LayerSpec::BatchNorm => {
                    let params = layer.weights.as_ref().expect("bn has params").as_f32()?;
                    let c = layer.input.c;
                    let (gamma, rest) = params.split_at(c);
                    let (beta, rest) = rest.split_at(c);
                    let (mean, var) = rest.split_at(c);
                    x.chunks(c)
                        .flat_map(|pix| {
                            pix.iter().enumerate().map(|(ch, &v)| {
                                (v - mean[ch]) / (var[ch] + BN_EPS).sqrt() * gamma[ch] + beta[ch]
                            })
                        })
                        .collect()
                }
                LayerSpec::Softmax => ei_tensor::ops::softmax(x),
            };
            // fused activation
            let act = layer.activation();
            if act != Activation::None {
                for v in &mut out {
                    *v = act.apply(*v);
                }
            }
            masks.push(mask);
            activations.push(out);
        }
        Ok(ForwardCache { activations, masks })
    }

    /// Backpropagates `grad_output` (w.r.t. the model output) through the
    /// network, returning per-layer parameter gradients and consuming the
    /// forward cache.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputLengthMismatch`] when `grad_output` does not
    /// match the output size.
    pub fn backward(&self, cache: &ForwardCache, grad_output: &[f32]) -> Result<Vec<LayerGrads>> {
        self.backward_from(cache, grad_output, self.layers.len())
    }

    /// Backpropagates starting from the *output of layer `start - 1`*,
    /// skipping layers `start..`.
    ///
    /// The trainer uses this for the fused softmax + cross-entropy gradient:
    /// with a trailing `Softmax` layer it injects `p − y` directly at the
    /// logits (`start = len − 1`), which is faster and numerically stabler
    /// than backpropagating through the softmax Jacobian.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputLengthMismatch`] when `grad_output` does not
    /// match the activation size at `start`.
    pub fn backward_from(
        &self,
        cache: &ForwardCache,
        grad_output: &[f32],
        start: usize,
    ) -> Result<Vec<LayerGrads>> {
        let expected =
            if start == 0 { self.spec.input.len() } else { self.layers[start - 1].output.len() };
        if grad_output.len() != expected {
            return Err(NnError::InputLengthMismatch { expected, actual: grad_output.len() });
        }
        let mut grads = vec![LayerGrads::default(); self.layers.len()];
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter().enumerate().take(start).rev() {
            let input = &cache.activations[i];
            let output = &cache.activations[i + 1];
            // undo fused activation
            let act = layer.activation();
            if act != Activation::None {
                for (g, &y) in grad.iter_mut().zip(output) {
                    *g *= act.derivative_from_output(y);
                }
            }
            grad = match &layer.spec {
                LayerSpec::Dense { units, .. } => {
                    let (gin, gw, gb) = dense_backward(
                        input,
                        layer.weights.as_ref().expect("dense has weights").as_f32()?,
                        *units,
                        &grad,
                    );
                    grads[i] = LayerGrads { weights: Some(gw), bias: Some(gb) };
                    gin
                }
                LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => {
                    let (gin, gw, gb) = conv1d_backward(
                        input,
                        layer.weights.as_ref().expect("conv1d has weights").as_f32()?,
                        Conv1dGeom {
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: *filters,
                            kernel: *kernel,
                            stride: *stride,
                            padding: *padding,
                        },
                        &grad,
                    );
                    grads[i] = LayerGrads { weights: Some(gw), bias: Some(gb) };
                    gin
                }
                LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => {
                    let (gin, gw, gb) = conv2d_backward(
                        input,
                        layer.weights.as_ref().expect("conv2d has weights").as_f32()?,
                        Conv2dGeom {
                            in_h: layer.input.h,
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: *filters,
                            kernel_h: *kernel,
                            kernel_w: *kernel,
                            stride: *stride,
                            padding: *padding,
                        },
                        &grad,
                    );
                    grads[i] = LayerGrads { weights: Some(gw), bias: Some(gb) };
                    gin
                }
                LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => {
                    let (gin, gw, gb) = conv2d_backward(
                        input,
                        layer.weights.as_ref().expect("conv2d has weights").as_f32()?,
                        Conv2dGeom {
                            in_h: layer.input.h,
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: *filters,
                            kernel_h: *kernel_h,
                            kernel_w: *kernel_w,
                            stride: *stride,
                            padding: *padding,
                        },
                        &grad,
                    );
                    grads[i] = LayerGrads { weights: Some(gw), bias: Some(gb) };
                    gin
                }
                LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
                    let (gin, gw, gb) = depthwise_backward(
                        input,
                        layer.weights.as_ref().expect("depthwise has weights").as_f32()?,
                        Conv2dGeom {
                            in_h: layer.input.h,
                            in_w: layer.input.w,
                            in_c: layer.input.c,
                            out_c: layer.input.c,
                            kernel_h: *kernel,
                            kernel_w: *kernel,
                            stride: *stride,
                            padding: *padding,
                        },
                        &grad,
                    );
                    grads[i] = LayerGrads { weights: Some(gw), bias: Some(gb) };
                    gin
                }
                LayerSpec::MaxPool { size } => {
                    if layer.input.h == 1 {
                        pool1d_backward(input, layer.input.w, layer.input.c, *size, &grad, true)
                    } else {
                        maxpool2d_backward(
                            input,
                            layer.input.h,
                            layer.input.w,
                            layer.input.c,
                            *size,
                            &grad,
                        )
                    }
                }
                LayerSpec::AvgPool { size } => {
                    if layer.input.h == 1 {
                        pool1d_backward(input, layer.input.w, layer.input.c, *size, &grad, false)
                    } else {
                        avgpool2d_backward(
                            layer.input.h,
                            layer.input.w,
                            layer.input.c,
                            *size,
                            &grad,
                        )
                    }
                }
                LayerSpec::GlobalAvgPool => {
                    global_avg_backward(layer.input.h, layer.input.w, layer.input.c, &grad)
                }
                LayerSpec::Reshape { .. } | LayerSpec::Flatten => grad,
                LayerSpec::Dropout { .. } => match &cache.masks[i] {
                    Some(mask) => grad.iter().zip(mask).map(|(g, m)| g * m).collect(),
                    None => grad,
                },
                LayerSpec::BatchNorm => {
                    let params = layer.weights.as_ref().expect("bn has params").as_f32()?;
                    let c = layer.input.c;
                    let gamma = &params[..c];
                    let var = &params[3 * c..4 * c];
                    grad.iter()
                        .enumerate()
                        .map(|(idx, g)| {
                            let ch = idx % c;
                            g * gamma[ch] / (var[ch] + BN_EPS).sqrt()
                        })
                        .collect()
                }
                LayerSpec::Softmax => {
                    // dL/dx_i = y_i * (g_i - sum_j g_j y_j)
                    let dot: f32 = grad.iter().zip(output).map(|(g, y)| g * y).sum();
                    grad.iter().zip(output).map(|(g, y)| y * (g - dot)).collect()
                }
            };
        }
        Ok(grads)
    }
}

/// 1-D pooling over `(w, c)` steps with non-overlapping windows.
fn pool1d(input: &[f32], w: usize, c: usize, size: usize, is_max: bool) -> Vec<f32> {
    let ow = pool_out(w, size);
    let mut out = vec![if is_max { f32::NEG_INFINITY } else { 0.0 }; ow * c];
    let norm = 1.0 / size as f32;
    for ox in 0..ow {
        for k in 0..size {
            let in_base = (ox * size + k) * c;
            for ch in 0..c {
                let v = input[in_base + ch];
                let slot = &mut out[ox * c + ch];
                if is_max {
                    if v > *slot {
                        *slot = v;
                    }
                } else {
                    *slot += v * norm;
                }
            }
        }
    }
    out
}

/// Backward of [`pool1d`].
fn pool1d_backward(
    input: &[f32],
    w: usize,
    c: usize,
    size: usize,
    grad_out: &[f32],
    is_max: bool,
) -> Vec<f32> {
    let ow = pool_out(w, size);
    let mut grad_in = vec![0.0f32; input.len()];
    let norm = 1.0 / size as f32;
    for ox in 0..ow {
        for ch in 0..c {
            if is_max {
                let mut best_idx = ox * size * c + ch;
                let mut best = f32::NEG_INFINITY;
                for k in 0..size {
                    let idx = (ox * size + k) * c + ch;
                    if input[idx] > best {
                        best = input[idx];
                        best_idx = idx;
                    }
                }
                grad_in[best_idx] += grad_out[ox * c + ch];
            } else {
                for k in 0..size {
                    grad_in[(ox * size + k) * c + ch] += grad_out[ox * c + ch] * norm;
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_spec() -> ModelSpec {
        ModelSpec::new(Dims::new(1, 4, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 5, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax)
    }

    #[test]
    fn build_resolves_shapes() {
        let model = Sequential::build(&tiny_spec(), 1).unwrap();
        assert_eq!(model.output_dims().len(), 3);
        assert_eq!(model.param_count(), 4 * 5 + 5 + 5 * 3 + 3);
        assert!(model.macs() >= (4 * 5 + 5 * 3) as u64);
    }

    #[test]
    fn forward_produces_distribution_after_softmax() {
        let model = Sequential::build(&tiny_spec(), 1).unwrap();
        let out = model.forward(&[0.5, -0.2, 0.1, 0.9]).unwrap();
        assert_eq!(out.len(), 3);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_rejects_wrong_input_len() {
        let model = Sequential::build(&tiny_spec(), 1).unwrap();
        assert!(model.forward(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn build_rejects_bad_layers() {
        let bad = ModelSpec::new(Dims::new(4, 4, 1)).layer(LayerSpec::Conv1d {
            filters: 2,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        assert!(matches!(
            Sequential::build(&bad, 0).unwrap_err(),
            NnError::InvalidLayer { index: 0, .. }
        ));
        let too_big = ModelSpec::new(Dims::new(2, 2, 1)).layer(LayerSpec::Conv2d {
            filters: 2,
            kernel: 5,
            stride: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        assert!(Sequential::build(&too_big, 0).is_err());
        let bad_reshape =
            ModelSpec::new(Dims::new(2, 2, 1)).layer(LayerSpec::Reshape { h: 3, w: 1, c: 1 });
        assert!(Sequential::build(&bad_reshape, 0).is_err());
        let bad_dropout =
            ModelSpec::new(Dims::new(2, 2, 1)).layer(LayerSpec::Dropout { rate: 1.5 });
        assert!(Sequential::build(&bad_dropout, 0).is_err());
    }

    #[test]
    fn conv_model_shapes() {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool { size: 2 })
            .layer(LayerSpec::DepthwiseConv2d {
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        let model = Sequential::build(&spec, 3).unwrap();
        let dims: Vec<Dims> = model.layers().iter().map(|l| l.output).collect();
        assert_eq!(dims[0], Dims::new(8, 8, 4));
        assert_eq!(dims[1], Dims::new(4, 4, 4));
        assert_eq!(dims[2], Dims::new(4, 4, 4));
        assert_eq!(dims[3], Dims::new(1, 1, 4));
        assert_eq!(dims[4], Dims::new(1, 1, 2));
        let out = model.forward(&vec![0.1; 64]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rect_conv_shapes_and_gradients() {
        let spec = ModelSpec::new(Dims::new(10, 4, 1))
            .layer(LayerSpec::Conv2dRect {
                filters: 3,
                kernel_h: 5,
                kernel_w: 2,
                stride: 2,
                padding: Padding::Same,
                activation: Activation::Tanh,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        let mut model = Sequential::build(&spec, 4).unwrap();
        assert_eq!(model.layers()[0].output, Dims::new(5, 2, 3));
        assert_eq!(model.layers()[0].weights.as_ref().unwrap().shape().dims(), &[5, 2, 1, 3]);
        // rectangular macs: 5*2*1*3 per output position * 10 positions
        assert_eq!(model.layers()[0].macs(), 5 * 2 * 3 * 10);
        // finite-difference check on the rect-conv weights
        let input: Vec<f32> = (0..40).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect();
        let cache = model.forward_cached(&input, false, None).unwrap();
        let grads = model.backward(&cache, &[1.0, 1.0]).unwrap();
        let eps = 1e-3f32;
        for k in (0..30).step_by(3) {
            let orig = model.layers()[0].weights.as_ref().unwrap().as_f32().unwrap()[k];
            model.layers_mut()[0].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig + eps;
            let plus: f32 = model.forward(&input).unwrap().iter().sum();
            model.layers_mut()[0].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig - eps;
            let minus: f32 = model.forward(&input).unwrap().iter().sum();
            model.layers_mut()[0].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads[0].weights.as_ref().unwrap()[k];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "rect weight {k}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // rect conv that degenerates to square behaves like Conv2d
        let square = ModelSpec::new(Dims::new(6, 6, 1)).layer(LayerSpec::Conv2d {
            filters: 2,
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        let rect = ModelSpec::new(Dims::new(6, 6, 1)).layer(LayerSpec::Conv2dRect {
            filters: 2,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        let ms = Sequential::build(&square, 99).unwrap();
        let mr = Sequential::build(&rect, 99).unwrap();
        let probe = vec![0.3f32; 36];
        assert_eq!(ms.forward(&probe).unwrap(), mr.forward(&probe).unwrap());
    }

    #[test]
    fn whole_model_gradient_matches_finite_difference() {
        let spec = ModelSpec::new(Dims::new(1, 6, 1))
            .layer(LayerSpec::Reshape { h: 1, w: 3, c: 2 })
            .layer(LayerSpec::Conv1d {
                filters: 3,
                kernel: 2,
                stride: 1,
                padding: Padding::Valid,
                activation: Activation::Tanh,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        let mut model = Sequential::build(&spec, 11).unwrap();
        let input = [0.3f32, -0.1, 0.7, 0.2, -0.5, 0.9];
        // loss = sum of outputs
        let cache = model.forward_cached(&input, false, None).unwrap();
        let grads = model.backward(&cache, &[1.0, 1.0]).unwrap();
        let eps = 1e-3f32;
        // check dense weights (layer 3) and conv weights (layer 1)
        for li in [1usize, 3] {
            let n = model.layers()[li].weights.as_ref().unwrap().len();
            for k in (0..n).step_by(2) {
                let orig = model.layers()[li].weights.as_ref().unwrap().as_f32().unwrap()[k];
                model.layers_mut()[li].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] =
                    orig + eps;
                let plus: f32 = model.forward(&input).unwrap().iter().sum();
                model.layers_mut()[li].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] =
                    orig - eps;
                let minus: f32 = model.forward(&input).unwrap().iter().sum();
                model.layers_mut()[li].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                let analytic = grads[li].weights.as_ref().unwrap()[k];
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "layer {li} weight {k}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let spec = ModelSpec::new(Dims::new(1, 3, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let mut model = Sequential::build(&spec, 5).unwrap();
        let input = [0.2f32, -0.4, 0.6];
        // loss = out[0]
        let cache = model.forward_cached(&input, false, None).unwrap();
        let grads = model.backward(&cache, &[1.0, 0.0, 0.0]).unwrap();
        let eps = 1e-3f32;
        let w_len = model.layers()[1].weights.as_ref().unwrap().len();
        for k in 0..w_len {
            let orig = model.layers()[1].weights.as_ref().unwrap().as_f32().unwrap()[k];
            model.layers_mut()[1].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig + eps;
            let plus = model.forward(&input).unwrap()[0];
            model.layers_mut()[1].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig - eps;
            let minus = model.forward(&input).unwrap()[0];
            model.layers_mut()[1].weights.as_mut().unwrap().as_f32_mut().unwrap()[k] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads[1].weights.as_ref().unwrap()[k];
            assert!((numeric - analytic).abs() < 1e-3);
        }
    }

    #[test]
    fn dropout_training_vs_inference() {
        let spec = ModelSpec::new(Dims::new(1, 100, 1)).layer(LayerSpec::Dropout { rate: 0.5 });
        let model = Sequential::build(&spec, 0).unwrap();
        let input = vec![1.0f32; 100];
        // inference: identity
        assert_eq!(model.forward(&input).unwrap(), input);
        // training: roughly half dropped, survivors scaled by 2
        let mut rng = StdRng::seed_from_u64(7);
        let cache = model.forward_cached(&input, true, Some(&mut rng)).unwrap();
        let out = cache.output();
        let dropped = out.iter().filter(|&&v| v == 0.0).count();
        assert!((20..80).contains(&dropped), "dropped {dropped}");
        assert!(out.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // training without rng errors
        assert!(model.forward_cached(&input, true, None).is_err());
    }

    #[test]
    fn batchnorm_identity_by_default() {
        let spec = ModelSpec::new(Dims::new(2, 2, 3)).layer(LayerSpec::BatchNorm);
        let model = Sequential::build(&spec, 0).unwrap();
        let input: Vec<f32> = (0..12).map(|x| x as f32 * 0.1).collect();
        let out = model.forward(&input).unwrap();
        for (o, i) in out.iter().zip(&input) {
            assert!((o - i).abs() < 1e-3, "bn with identity params ~ identity");
        }
        assert!(model.layers()[0].frozen, "bn params are frozen");
    }

    #[test]
    fn freeze_and_bias_init() {
        let mut model = Sequential::build(&tiny_spec(), 1).unwrap();
        model.freeze_first(2);
        assert!(model.layers()[1].frozen);
        assert!(!model.layers()[2].frozen);
        model.set_output_bias(&[0.1, 0.2, 0.3]).unwrap();
        let bias = model.layers()[2].bias.as_ref().unwrap().as_f32().unwrap().to_vec();
        assert_eq!(bias, vec![0.1, 0.2, 0.3]);
        assert!(model.set_output_bias(&[1.0]).is_err());
    }

    #[test]
    fn deterministic_build() {
        let a = Sequential::build(&tiny_spec(), 9).unwrap();
        let b = Sequential::build(&tiny_spec(), 9).unwrap();
        let input = [0.1f32, 0.2, 0.3, 0.4];
        assert_eq!(a.forward(&input).unwrap(), b.forward(&input).unwrap());
    }

    #[test]
    fn pool1d_max_and_avg() {
        let spec_max = ModelSpec::new(Dims::new(1, 6, 1)).layer(LayerSpec::MaxPool { size: 2 });
        let model = Sequential::build(&spec_max, 0).unwrap();
        let out = model.forward(&[1.0, 3.0, 2.0, 2.0, 5.0, 0.0]).unwrap();
        assert_eq!(out, vec![3.0, 2.0, 5.0]);
        let spec_avg = ModelSpec::new(Dims::new(1, 6, 1)).layer(LayerSpec::AvgPool { size: 3 });
        let model = Sequential::build(&spec_avg, 0).unwrap();
        let out = model.forward(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(out, vec![2.0, 5.0]);
    }

    #[test]
    fn peak_activation_tracks_largest_layer() {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .layer(LayerSpec::Conv2d {
                filters: 16,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::GlobalAvgPool);
        let model = Sequential::build(&spec, 0).unwrap();
        assert_eq!(model.peak_activation_elems(), 8 * 8 * 16);
    }
}
