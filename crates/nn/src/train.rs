//! Minibatch training with the stability helpers the platform ships.
//!
//! Paper §4.3: "Edge Impulse provides a number of subtle, but important,
//! optimisation pieces to ensure stable training including, but not limited
//! to, learning rate finding, classifier bias initialisation, best model
//! checkpoint restoration." All three live here.
//!
//! Training is observable through [`ei_trace`]: attach a tracer with
//! [`Trainer::with_tracer`] and every epoch emits a `train.epoch` event
//! (loss, validation metrics, learning rate) plus `train.*` gauges,
//! wrapped in one `train` span per run. The default disabled tracer adds
//! nothing to the hot path and never changes the numerics — shuffling and
//! dropout consume the same seeded RNG stream either way.

use crate::loss::Loss;
use crate::model::{LayerGrads, Sequential};
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::spec::LayerSpec;
use crate::{NnError, Result};
use ei_tensor::ops::argmax;
use ei_tensor::Tensor;
use ei_trace::Tracer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Optimizer algorithm.
    pub optimizer: OptimizerKind,
    /// Loss function.
    pub loss: Loss,
    /// Fraction of the data held out for validation (0 disables).
    pub validation_split: f32,
    /// L2 weight decay coefficient applied to weight (not bias) tensors
    /// (0 disables).
    pub weight_decay: f32,
    /// Restore the weights of the best validation epoch at the end.
    pub restore_best: bool,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.005,
            optimizer: OptimizerKind::default(),
            loss: Loss::CrossEntropy,
            validation_split: 0.2,
            weight_decay: 0.0,
            restore_best: true,
            seed: 42,
        }
    }
}

/// Per-epoch metrics plus the best-checkpoint bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch (empty when `validation_split == 0`).
    pub val_loss: Vec<f32>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f32>,
    /// Epoch whose weights were restored (0-based).
    pub best_epoch: usize,
    /// Validation accuracy of the restored epoch.
    pub best_val_accuracy: f32,
}

/// Snapshot of every parameter tensor, in layer order.
///
/// Used for best-checkpoint restore here and for epoch checkpoints /
/// replica synchronisation by the distributed trainer (`ei-dist`).
pub type Checkpoint = Vec<(Option<Tensor>, Option<Tensor>)>;

/// Captures a [`Checkpoint`] of every parameter tensor in `model`.
pub fn snapshot(model: &Sequential) -> Checkpoint {
    model.layers().iter().map(|l| (l.weights.clone(), l.bias.clone())).collect()
}

/// Writes a [`Checkpoint`] back into `model`, layer by layer.
pub fn restore(model: &mut Sequential, ckpt: &Checkpoint) {
    for (layer, (w, b)) in model.layers_mut().iter_mut().zip(ckpt) {
        layer.weights = w.clone();
        layer.bias = b.clone();
    }
}

/// Summed (not yet averaged) gradients of one minibatch, plus the
/// bookkeeping a reducer needs to average and report loss.
#[derive(Debug, Clone)]
pub struct BatchGrads {
    /// Per-layer gradient sums, aligned with the model's layer order.
    pub grads: Vec<LayerGrads>,
    /// Sum of per-sample losses over the batch.
    pub loss_sum: f64,
    /// Number of samples that contributed.
    pub count: usize,
}

/// Trains sequential models on in-memory datasets.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    tracer: Tracer,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config, tracer: Tracer::disabled() }
    }

    /// Attaches a tracer; subsequent runs emit a `train` span with
    /// per-epoch `train.epoch` events and `train.*` gauges.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Trainer {
        self.tracer = tracer;
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Initializes the classifier bias from class priors: `b_c = ln(p_c)`.
    ///
    /// # Errors
    ///
    /// Fails when `labels` is empty or the model output width differs from
    /// `n_classes`.
    pub fn init_class_bias(
        &self,
        model: &mut Sequential,
        labels: &[usize],
        n_classes: usize,
    ) -> Result<()> {
        if labels.is_empty() {
            return Err(NnError::InvalidTrainingData("no labels for bias init".into()));
        }
        let mut counts = vec![0usize; n_classes];
        for &l in labels {
            if l >= n_classes {
                return Err(NnError::LabelOutOfRange { label: l, classes: n_classes });
            }
            counts[l] += 1;
        }
        let total = labels.len() as f32;
        let bias: Vec<f32> = counts.iter().map(|&c| ((c as f32 / total).max(1e-6)).ln()).collect();
        model.set_output_bias(&bias)
    }

    /// Runs the learning-rate range test: exponentially ramps the LR over a
    /// copy of the model and returns the rate one decade below the loss
    /// blow-up point.
    ///
    /// # Errors
    ///
    /// Fails on empty data or mismatched input sizes.
    pub fn find_learning_rate(
        &self,
        model: &Sequential,
        inputs: &[Vec<f32>],
        labels: &[usize],
    ) -> Result<f32> {
        if inputs.is_empty() {
            return Err(NnError::InvalidTrainingData("lr finder needs data".into()));
        }
        let mut probe = model.clone();
        let mut opt = Optimizer::new(OptimizerKind::Sgd { momentum: 0.0 });
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let steps = 40usize;
        let lr_min = 1e-5f32;
        let lr_max = 1.0f32;
        let mut best_lr = self.config.learning_rate;
        let mut best_drop = 0.0f32;
        let mut prev_loss = f32::NAN;
        for step in 0..steps {
            let lr = lr_min * (lr_max / lr_min).powf(step as f32 / (steps - 1) as f32);
            let idx = step % inputs.len();
            let (loss, grads) = self.sample_pass(&probe, &inputs[idx], labels[idx], &mut rng)?;
            opt.begin_step();
            apply_grads(&mut probe, &grads, &mut opt, lr, 1.0, 0.0);
            if prev_loss.is_finite() {
                let drop = prev_loss - loss;
                if drop > best_drop {
                    best_drop = drop;
                    best_lr = lr;
                }
                if !loss.is_finite() || loss > prev_loss * 4.0 {
                    break; // diverged
                }
            }
            prev_loss = loss;
        }
        Ok((best_lr / 10.0).clamp(1e-5, 0.1))
    }

    /// One forward/backward pass for a single sample. Returns the loss and
    /// per-layer gradients (fusing softmax + cross-entropy when possible).
    fn sample_pass(
        &self,
        model: &Sequential,
        input: &[f32],
        label: usize,
        rng: &mut StdRng,
    ) -> Result<(f32, Vec<LayerGrads>)> {
        let cache = model.forward_cached(input, true, Some(rng))?;
        let prediction = cache.output().to_vec();
        let loss = self.config.loss.value(&prediction, label)?;
        let has_softmax =
            matches!(model.layers().last().map(|l| &l.spec), Some(LayerSpec::Softmax));
        let grads = if has_softmax && self.config.loss == Loss::CrossEntropy {
            let grad = self.config.loss.gradient(&prediction, label)?;
            model.backward_from(&cache, &grad, model.layers().len() - 1)?
        } else {
            let grad = self.config.loss.gradient(&prediction, label)?;
            model.backward(&cache, &grad)?
        };
        Ok((loss, grads))
    }

    /// Computes summed per-layer gradients for the samples selected by
    /// `batch` (indices into `inputs`/`labels`) without touching the model.
    ///
    /// The dropout RNG stream is seeded from `rng_seed` alone, so the result
    /// depends only on (weights, batch, seed) — never on which thread or
    /// worker ran it. This is the building block the distributed trainer
    /// uses to make data-parallel SGD bitwise-identical to serial SGD.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices/labels or wrongly sized inputs.
    pub fn batch_gradients(
        &self,
        model: &Sequential,
        inputs: &[Vec<f32>],
        labels: &[usize],
        batch: &[usize],
        rng_seed: u64,
    ) -> Result<BatchGrads> {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut acc: Option<Vec<LayerGrads>> = None;
        let mut loss_sum = 0.0f64;
        for &i in batch {
            let (input, label) = match (inputs.get(i), labels.get(i)) {
                (Some(x), Some(&y)) => (x, y),
                _ => {
                    return Err(NnError::InvalidTrainingData(format!(
                        "batch index {i} out of range for {} samples",
                        inputs.len()
                    )))
                }
            };
            let (loss, grads) = self.sample_pass(model, input, label, &mut rng)?;
            loss_sum += loss as f64;
            acc = Some(match acc {
                None => grads,
                Some(mut a) => {
                    accumulate(&mut a, &grads);
                    a
                }
            });
        }
        Ok(BatchGrads { grads: acc.unwrap_or_default(), loss_sum, count: batch.len() })
    }

    /// Trains `model` in place and returns the per-epoch report.
    ///
    /// # Errors
    ///
    /// Fails on empty/mismatched data, out-of-range labels, or wrongly
    /// sized inputs.
    pub fn train(
        &self,
        model: &mut Sequential,
        inputs: &[Vec<f32>],
        labels: &[usize],
    ) -> Result<TrainingReport> {
        if inputs.is_empty() || inputs.len() != labels.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "{} inputs vs {} labels",
                inputs.len(),
                labels.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);
        let n_val = ((inputs.len() as f32) * self.config.validation_split).round() as usize;
        let n_val = n_val.min(inputs.len().saturating_sub(1));
        let (val_idx, train_idx) = order.split_at(n_val);
        let val_idx = val_idx.to_vec();
        let mut train_idx = train_idx.to_vec();

        let mut optimizer = Optimizer::new(self.config.optimizer);
        let mut report = TrainingReport::default();
        let mut best_metric = f32::NEG_INFINITY;
        // tie-break on loss: with small validation sets accuracy saturates
        // early, and without this the best checkpoint would freeze at the
        // first saturated epoch even while the loss keeps improving
        let mut best_loss = f32::INFINITY;
        let mut best_ckpt: Option<Checkpoint> = None;

        let train_span = self.tracer.span_with(
            "train",
            vec![
                ("epochs", (self.config.epochs as u64).into()),
                ("samples", (inputs.len() as u64).into()),
            ],
        );
        for epoch in 0..self.config.epochs {
            train_idx.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for batch in train_idx.chunks(self.config.batch_size.max(1)) {
                let mut acc: Option<Vec<LayerGrads>> = None;
                for &i in batch {
                    let (loss, grads) = self.sample_pass(model, &inputs[i], labels[i], &mut rng)?;
                    epoch_loss += loss as f64;
                    acc = Some(match acc {
                        None => grads,
                        Some(mut a) => {
                            accumulate(&mut a, &grads);
                            a
                        }
                    });
                }
                if let Some(grads) = acc {
                    optimizer.begin_step();
                    apply_grads(
                        model,
                        &grads,
                        &mut optimizer,
                        self.config.learning_rate,
                        batch.len() as f32,
                        self.config.weight_decay,
                    );
                }
            }
            report.train_loss.push((epoch_loss / train_idx.len().max(1) as f64) as f32);

            // validation
            let (metric, comparison_loss, val_loss, val_acc) = if val_idx.is_empty() {
                let train_loss = *report.train_loss.last().expect("pushed above");
                (-train_loss, train_loss, f32::NAN, f32::NAN)
            } else {
                let (loss, acc) = self.evaluate(model, inputs, labels, &val_idx)?;
                (acc, loss, loss, acc)
            };
            if !val_loss.is_nan() {
                report.val_loss.push(val_loss);
                report.val_accuracy.push(val_acc);
            }
            let train_loss = *report.train_loss.last().expect("pushed above");
            train_span.event(
                "train.epoch",
                vec![
                    ("epoch", (epoch as u64).into()),
                    ("train_loss", train_loss.into()),
                    ("val_loss", val_loss.into()),
                    ("val_accuracy", val_acc.into()),
                    ("lr", self.config.learning_rate.into()),
                ],
            );
            self.tracer.gauge("train.loss").set(f64::from(train_loss));
            if !val_loss.is_nan() {
                self.tracer.gauge("train.val_loss").set(f64::from(val_loss));
                self.tracer.gauge("train.val_accuracy").set(f64::from(val_acc));
            }
            let improved =
                metric > best_metric || (metric == best_metric && comparison_loss < best_loss);
            if improved {
                best_metric = metric;
                best_loss = comparison_loss;
                report.best_epoch = report.train_loss.len() - 1;
                report.best_val_accuracy = if val_idx.is_empty() { f32::NAN } else { metric };
                if self.config.restore_best {
                    best_ckpt = Some(snapshot(model));
                }
            }
        }
        if let Some(ckpt) = best_ckpt {
            restore(model, &ckpt);
        }
        Ok(report)
    }

    /// Trains `model` on scalar regression targets (the platform's
    /// regression learn block). The model must have exactly one output and
    /// no trailing softmax; loss is mean squared error.
    ///
    /// Reuses the classifier loop's machinery: shuffling, minibatches,
    /// validation split and best-checkpoint restore (tracked on validation
    /// MSE).
    ///
    /// # Errors
    ///
    /// Fails on empty/mismatched data or a model without a single output.
    pub fn train_regression(
        &self,
        model: &mut Sequential,
        inputs: &[Vec<f32>],
        targets: &[f32],
    ) -> Result<TrainingReport> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(NnError::InvalidTrainingData(format!(
                "{} inputs vs {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        if model.output_dims().len() != 1 {
            return Err(NnError::InvalidTrainingData(format!(
                "regression needs a single output, model has {}",
                model.output_dims().len()
            )));
        }
        if matches!(model.layers().last().map(|l| &l.spec), Some(LayerSpec::Softmax)) {
            return Err(NnError::InvalidTrainingData(
                "regression model must not end in softmax".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);
        let n_val = ((inputs.len() as f32) * self.config.validation_split).round() as usize;
        let n_val = n_val.min(inputs.len().saturating_sub(1));
        let (val_idx, train_idx) = order.split_at(n_val);
        let val_idx = val_idx.to_vec();
        let mut train_idx = train_idx.to_vec();

        let mut optimizer = Optimizer::new(self.config.optimizer);
        let mut report = TrainingReport::default();
        let mut best_loss = f32::INFINITY;
        let mut best_ckpt: Option<Checkpoint> = None;
        let mse = |model: &Sequential, idx: &[usize]| -> Result<f32> {
            let mut total = 0.0f64;
            for &i in idx {
                let out = model.forward(&inputs[i])?;
                total += ((out[0] - targets[i]) as f64).powi(2);
            }
            Ok((total / idx.len().max(1) as f64) as f32)
        };
        let train_span = self.tracer.span_with(
            "train.regression",
            vec![
                ("epochs", (self.config.epochs as u64).into()),
                ("samples", (inputs.len() as u64).into()),
            ],
        );
        for epoch in 0..self.config.epochs {
            train_idx.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for batch in train_idx.chunks(self.config.batch_size.max(1)) {
                let mut acc: Option<Vec<LayerGrads>> = None;
                for &i in batch {
                    let cache = model.forward_cached(&inputs[i], true, Some(&mut rng))?;
                    let pred = cache.output()[0];
                    let err = pred - targets[i];
                    epoch_loss += (err as f64).powi(2);
                    let grads = model.backward(&cache, &[2.0 * err])?;
                    acc = Some(match acc {
                        None => grads,
                        Some(mut a) => {
                            accumulate(&mut a, &grads);
                            a
                        }
                    });
                }
                if let Some(grads) = acc {
                    optimizer.begin_step();
                    apply_grads(
                        model,
                        &grads,
                        &mut optimizer,
                        self.config.learning_rate,
                        batch.len() as f32,
                        self.config.weight_decay,
                    );
                }
            }
            report.train_loss.push((epoch_loss / train_idx.len().max(1) as f64) as f32);
            let comparison = if val_idx.is_empty() {
                *report.train_loss.last().expect("pushed above")
            } else {
                let v = mse(model, &val_idx)?;
                report.val_loss.push(v);
                v
            };
            let train_loss = *report.train_loss.last().expect("pushed above");
            train_span.event(
                "train.epoch",
                vec![
                    ("epoch", (epoch as u64).into()),
                    ("train_loss", train_loss.into()),
                    ("val_loss", if val_idx.is_empty() { f32::NAN } else { comparison }.into()),
                    ("lr", self.config.learning_rate.into()),
                ],
            );
            self.tracer.gauge("train.loss").set(f64::from(train_loss));
            if comparison < best_loss {
                best_loss = comparison;
                report.best_epoch = report.train_loss.len() - 1;
                if self.config.restore_best {
                    best_ckpt = Some(snapshot(model));
                }
            }
        }
        if let Some(ckpt) = best_ckpt {
            restore(model, &ckpt);
        }
        Ok(report)
    }

    /// Mean loss and accuracy over `indices`.
    fn evaluate(
        &self,
        model: &Sequential,
        inputs: &[Vec<f32>],
        labels: &[usize],
        indices: &[usize],
    ) -> Result<(f32, f32)> {
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for &i in indices {
            let out = model.forward(&inputs[i])?;
            loss += self.config.loss.value(&out, labels[i])? as f64;
            if argmax(&out) == labels[i] {
                correct += 1;
            }
        }
        let n = indices.len().max(1) as f64;
        Ok(((loss / n) as f32, (correct as f64 / n) as f32))
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer::new(TrainConfig::default())
    }
}

/// Folds `delta` into `acc` element-wise. The caller fixes the fold order;
/// folding contributions in a fixed order is what keeps a parallel
/// reduction bitwise-identical to the serial loop.
pub fn accumulate_grads(acc: &mut [LayerGrads], delta: &[LayerGrads]) {
    accumulate(acc, delta);
}

/// Performs one optimizer step: advances the optimizer's step counter and
/// applies `grads` (averaged over `batch_len` samples) to every non-frozen
/// layer, exactly as [`Trainer::train`]'s inner loop does.
pub fn apply_batch(
    model: &mut Sequential,
    grads: &[LayerGrads],
    optimizer: &mut Optimizer,
    lr: f32,
    batch_len: f32,
    weight_decay: f32,
) {
    optimizer.begin_step();
    apply_grads(model, grads, optimizer, lr, batch_len, weight_decay);
}

/// Accumulates `delta` into `acc` element-wise.
fn accumulate(acc: &mut [LayerGrads], delta: &[LayerGrads]) {
    for (a, d) in acc.iter_mut().zip(delta) {
        if let (Some(aw), Some(dw)) = (a.weights.as_mut(), d.weights.as_ref()) {
            for (x, y) in aw.iter_mut().zip(dw) {
                *x += y;
            }
        }
        if let (Some(ab), Some(db)) = (a.bias.as_mut(), d.bias.as_ref()) {
            for (x, y) in ab.iter_mut().zip(db) {
                *x += y;
            }
        }
    }
}

/// Applies accumulated gradients (averaged over `batch_len`) to every
/// non-frozen layer, with optional L2 weight decay on weight tensors.
fn apply_grads(
    model: &mut Sequential,
    grads: &[LayerGrads],
    optimizer: &mut Optimizer,
    lr: f32,
    batch_len: f32,
    weight_decay: f32,
) {
    let inv = 1.0 / batch_len.max(1.0);
    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
        if layer.frozen {
            continue;
        }
        if let (Some(w), Some(gw)) = (layer.weights.as_mut(), grads[i].weights.as_ref()) {
            let params = w.as_f32_mut().expect("weights are f32");
            let scaled: Vec<f32> =
                gw.iter().zip(params.iter()).map(|(g, p)| g * inv + weight_decay * p).collect();
            optimizer.step((i, 0), params, &scaled, lr);
        }
        if let (Some(b), Some(gb)) = (layer.bias.as_mut(), grads[i].bias.as_ref()) {
            let scaled: Vec<f32> = gb.iter().map(|g| g * inv).collect();
            optimizer.step((i, 1), b.as_f32_mut().expect("bias is f32"), &scaled, lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, Dims, LayerSpec, ModelSpec};

    /// Two linearly separable blobs in 2-D.
    fn blobs(n_per_class: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jx = (i % 7) as f32 * 0.05;
            let jy = (i % 5) as f32 * 0.05;
            inputs.push(vec![1.0 + jx, 1.0 + jy]);
            labels.push(0);
            inputs.push(vec![-1.0 - jx, -1.0 - jy]);
            labels.push(1);
        }
        (inputs, labels)
    }

    fn classifier_spec() -> ModelSpec {
        ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax)
    }

    #[test]
    fn trains_linear_classifier_to_high_accuracy() {
        let (inputs, labels) = blobs(40);
        let mut model = Sequential::build(&classifier_spec(), 7).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 8,
            learning_rate: 0.01,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        assert!(
            report.best_val_accuracy > 0.95,
            "expected >95% accuracy, got {}",
            report.best_val_accuracy
        );
        // loss should broadly decrease
        assert!(report.train_loss.last().unwrap() < report.train_loss.first().unwrap());
    }

    #[test]
    fn training_is_deterministic() {
        let (inputs, labels) = blobs(10);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let mut m1 = Sequential::build(&classifier_spec(), 7).unwrap();
        let mut m2 = Sequential::build(&classifier_spec(), 7).unwrap();
        let r1 = Trainer::new(cfg.clone()).train(&mut m1, &inputs, &labels).unwrap();
        let r2 = Trainer::new(cfg).train(&mut m2, &inputs, &labels).unwrap();
        assert_eq!(r1.train_loss, r2.train_loss);
        assert_eq!(m1.forward(&inputs[0]).unwrap(), m2.forward(&inputs[0]).unwrap());
    }

    #[test]
    fn rejects_empty_and_mismatched_data() {
        let mut model = Sequential::build(&classifier_spec(), 1).unwrap();
        let trainer = Trainer::default();
        assert!(trainer.train(&mut model, &[], &[]).is_err());
        assert!(trainer.train(&mut model, &[vec![0.0, 0.0]], &[0, 1]).is_err());
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let mut model = Sequential::build(&classifier_spec(), 1).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            validation_split: 0.0,
            ..TrainConfig::default()
        });
        let err = trainer.train(&mut model, &[vec![0.0, 0.0]], &[5]).unwrap_err();
        assert!(matches!(err, NnError::LabelOutOfRange { label: 5, classes: 2 }));
    }

    #[test]
    fn class_bias_init_matches_priors() {
        let mut model = Sequential::build(&classifier_spec(), 1).unwrap();
        let trainer = Trainer::default();
        // 3:1 class imbalance
        let labels = vec![0, 0, 0, 1];
        trainer.init_class_bias(&mut model, &labels, 2).unwrap();
        let bias = model.layers()[2].bias.as_ref().unwrap().as_f32().unwrap().to_vec();
        assert!((bias[0] - 0.75f32.ln()).abs() < 1e-5);
        assert!((bias[1] - 0.25f32.ln()).abs() < 1e-5);
        assert!(trainer.init_class_bias(&mut model, &[], 2).is_err());
    }

    #[test]
    fn lr_finder_returns_sane_rate() {
        let (inputs, labels) = blobs(20);
        let model = Sequential::build(&classifier_spec(), 3).unwrap();
        let lr = Trainer::default().find_learning_rate(&model, &inputs, &labels).unwrap();
        assert!((1e-5..=0.1).contains(&lr), "lr {lr}");
    }

    #[test]
    fn best_checkpoint_restored() {
        // with a huge LR the last epochs will be worse than the best; the
        // restored model must match the best epoch's accuracy
        let (inputs, labels) = blobs(30);
        let mut model = Sequential::build(&classifier_spec(), 2).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 12,
            learning_rate: 0.3,
            restore_best: true,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        // evaluate the restored model on everything
        let mut correct = 0;
        for (x, &y) in inputs.iter().zip(&labels) {
            if argmax(&model.forward(x).unwrap()) == y {
                correct += 1;
            }
        }
        let acc = correct as f32 / inputs.len() as f32;
        assert!(
            acc + 0.15 >= report.best_val_accuracy,
            "restored accuracy {acc} far below best {}",
            report.best_val_accuracy
        );
    }

    #[test]
    fn checkpoint_keeps_improving_after_accuracy_saturates() {
        // tiny validation sets saturate at 100% accuracy early; the best
        // checkpoint must then keep following the falling validation loss
        // instead of freezing at the first saturated epoch
        let (inputs, labels) = blobs(10);
        let mut model = Sequential::build(&classifier_spec(), 3).unwrap();
        let trainer =
            Trainer::new(TrainConfig { epochs: 15, learning_rate: 0.02, ..TrainConfig::default() });
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        // on this separable task validation accuracy saturates quickly...
        assert_eq!(report.best_val_accuracy, 1.0);
        // ...and the restored epoch is a *later* one with lower loss than
        // the first perfect epoch
        let first_perfect = report.val_accuracy.iter().position(|&a| a == 1.0).expect("saturates");
        assert!(
            report.best_epoch > first_perfect,
            "best epoch {} should improve past first perfect epoch {first_perfect}",
            report.best_epoch
        );
        assert!(report.val_loss[report.best_epoch] <= report.val_loss[first_perfect]);
    }

    #[test]
    fn frozen_layers_do_not_change() {
        let (inputs, labels) = blobs(10);
        let mut model = Sequential::build(&classifier_spec(), 4).unwrap();
        model.freeze_first(2); // flatten + first dense
        let before = model.layers()[1].weights.as_ref().unwrap().clone();
        let trainer = Trainer::new(TrainConfig {
            epochs: 2,
            validation_split: 0.0,
            restore_best: false,
            ..TrainConfig::default()
        });
        trainer.train(&mut model, &inputs, &labels).unwrap();
        let after = model.layers()[1].weights.as_ref().unwrap();
        assert_eq!(&before, after, "frozen layer must not move");
        // unfrozen classifier did move
        let head = model.layers()[2].weights.as_ref().unwrap();
        let fresh = Sequential::build(&classifier_spec(), 4).unwrap();
        assert_ne!(head, fresh.layers()[2].weights.as_ref().unwrap());
    }

    #[test]
    fn weight_decay_shrinks_weight_norms() {
        let (inputs, labels) = blobs(20);
        let train = |wd: f32| -> f32 {
            let mut model = Sequential::build(&classifier_spec(), 6).unwrap();
            let trainer = Trainer::new(TrainConfig {
                epochs: 10,
                weight_decay: wd,
                restore_best: false,
                validation_split: 0.0,
                ..TrainConfig::default()
            });
            trainer.train(&mut model, &inputs, &labels).unwrap();
            model
                .layers()
                .iter()
                .filter_map(|l| l.weights.as_ref())
                .flat_map(|w| w.as_f32().unwrap().iter().map(|x| x * x))
                .sum::<f32>()
        };
        let plain = train(0.0);
        let decayed = train(0.3);
        assert!(decayed < plain * 0.8, "decay {decayed} vs plain {plain}");
    }

    #[test]
    fn regression_fits_a_linear_function() {
        // y = 2 x0 - x1 + 0.5
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let x0 = (i % 10) as f32 * 0.1;
            let x1 = (i % 7) as f32 * 0.1;
            inputs.push(vec![x0, x1]);
            targets.push(2.0 * x0 - x1 + 0.5);
        }
        let spec = ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 1, activation: Activation::None });
        let mut model = Sequential::build(&spec, 3).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            batch_size: 8,
            learning_rate: 0.01,
            ..TrainConfig::default()
        });
        let report = trainer.train_regression(&mut model, &inputs, &targets).unwrap();
        assert!(report.train_loss.last().unwrap() < &0.01, "{:?}", report.train_loss.last());
        // prediction close to truth on a fresh point
        let pred = model.forward(&[0.5, 0.3]).unwrap()[0];
        assert!((pred - (2.0 * 0.5 - 0.3 + 0.5)).abs() < 0.15, "pred {pred}");
    }

    #[test]
    fn regression_validates_model_shape() {
        let trainer = Trainer::default();
        // multi-output rejected
        let spec = ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None });
        let mut multi = Sequential::build(&spec, 0).unwrap();
        assert!(trainer.train_regression(&mut multi, &[vec![0.0, 0.0]], &[1.0]).is_err());
        // softmax tail rejected
        let soft = ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 1, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let mut soft_model = Sequential::build(&soft, 0).unwrap();
        assert!(trainer.train_regression(&mut soft_model, &[vec![0.0, 0.0]], &[1.0]).is_err());
        // mismatched lengths rejected
        let ok = ModelSpec::new(Dims::new(1, 2, 1))
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 1, activation: Activation::None });
        let mut ok_model = Sequential::build(&ok, 0).unwrap();
        assert!(trainer.train_regression(&mut ok_model, &[vec![0.0, 0.0]], &[1.0, 2.0]).is_err());
        assert!(trainer.train_regression(&mut ok_model, &[], &[]).is_err());
    }

    #[test]
    fn traced_training_emits_one_epoch_event_per_epoch() {
        let (inputs, labels) = blobs(10);
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
        // traced and untraced runs must produce identical numerics
        let mut plain_model = Sequential::build(&classifier_spec(), 7).unwrap();
        let plain = Trainer::new(cfg.clone()).train(&mut plain_model, &inputs, &labels).unwrap();
        let clock = ei_faults::VirtualClock::shared();
        let (tracer, collector) = Tracer::collecting(clock);
        let mut traced_model = Sequential::build(&classifier_spec(), 7).unwrap();
        let traced = Trainer::new(cfg)
            .with_tracer(tracer.clone())
            .train(&mut traced_model, &inputs, &labels)
            .unwrap();
        assert_eq!(plain.train_loss, traced.train_loss, "tracer must not perturb training");
        let records = collector.records();
        let epoch_events: Vec<&ei_trace::TraceRecord> =
            records.iter().filter(|r| r.name() == "train.epoch").collect();
        assert_eq!(epoch_events.len(), 4);
        // each event carries the loss the report records
        for (i, event) in epoch_events.iter().enumerate() {
            let loss = event
                .fields()
                .iter()
                .find(|(k, _)| *k == "train_loss")
                .map(|(_, v)| match v {
                    ei_trace::Value::Float(f) => *f as f32,
                    other => panic!("train_loss should be a float, got {other:?}"),
                })
                .unwrap();
            assert_eq!(loss, traced.train_loss[i]);
        }
        // the gauges hold the final epoch's values
        let snapshot = tracer.metrics_snapshot();
        match snapshot.get("train.loss") {
            Some(ei_trace::MetricValue::Gauge(v)) => {
                assert_eq!(*v as f32, *traced.train_loss.last().unwrap());
            }
            other => panic!("expected train.loss gauge, got {other:?}"),
        }
        assert!(snapshot.contains_key("train.val_accuracy"));
    }

    #[test]
    fn batch_gradients_plus_apply_matches_trainer_inner_loop() {
        // one hand-driven optimizer step via the public pieces must be
        // bitwise-identical to one step of Trainer::train's inner loop
        let (inputs, labels) = blobs(8);
        let batch: Vec<usize> = (0..8).collect();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            validation_split: 0.0,
            restore_best: false,
            ..TrainConfig::default()
        };
        let trainer = Trainer::new(cfg.clone());

        let mut manual = Sequential::build(&classifier_spec(), 11).unwrap();
        let b = trainer.batch_gradients(&manual, &inputs, &labels, &batch, 99).unwrap();
        assert_eq!(b.count, 8);
        assert!(b.loss_sum.is_finite());
        let mut opt = Optimizer::new(cfg.optimizer);
        apply_batch(&mut manual, &b.grads, &mut opt, cfg.learning_rate, 8.0, 0.0);

        // partition sums computed in any order, folded in fixed partition
        // order, give bitwise-identical gradients — the invariant the
        // distributed trainer relies on (float addition is not associative,
        // so only the fold *order* pins the result, not computation order)
        let mut split_model = Sequential::build(&classifier_spec(), 11).unwrap();
        let lo = trainer.batch_gradients(&split_model, &inputs, &labels, &batch[..4], 99).unwrap();
        let hi = trainer.batch_gradients(&split_model, &inputs, &labels, &batch[4..], 7).unwrap();
        let mut rev_model = Sequential::build(&classifier_spec(), 11).unwrap();
        let hi2 = trainer.batch_gradients(&rev_model, &inputs, &labels, &batch[4..], 7).unwrap();
        let lo2 = trainer.batch_gradients(&rev_model, &inputs, &labels, &batch[..4], 99).unwrap();
        let mut total = lo.grads;
        accumulate_grads(&mut total, &hi.grads);
        let mut total2 = lo2.grads;
        accumulate_grads(&mut total2, &hi2.grads);
        let mut opt2 = Optimizer::new(cfg.optimizer);
        apply_batch(&mut split_model, &total, &mut opt2, cfg.learning_rate, 8.0, 0.0);
        let mut opt3 = Optimizer::new(cfg.optimizer);
        apply_batch(&mut rev_model, &total2, &mut opt3, cfg.learning_rate, 8.0, 0.0);
        assert_eq!(snapshot(&split_model), snapshot(&rev_model));

        // out-of-range batch index is rejected
        assert!(trainer.batch_gradients(&manual, &inputs, &labels, &[999], 0).is_err());
    }

    #[test]
    fn zero_validation_split_trains() {
        let (inputs, labels) = blobs(10);
        let mut model = Sequential::build(&classifier_spec(), 4).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            validation_split: 0.0,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &inputs, &labels).unwrap();
        assert!(report.val_loss.is_empty());
        assert_eq!(report.train_loss.len(), 3);
    }
}
