//! Error type for model construction, training and inference.

use std::fmt;

/// Errors produced by the neural-network stack.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer configuration was invalid for its input shape.
    InvalidLayer {
        /// Index of the offending layer in the model spec.
        index: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// The input passed to `forward` had the wrong length.
    InputLengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// Training was requested with an empty or degenerate dataset.
    InvalidTrainingData(String),
    /// A label index was outside the model's output range.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes the model produces.
        classes: usize,
    },
    /// An internal tensor operation failed (bug or corrupted state).
    Tensor(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidLayer { index, reason } => {
                write!(f, "invalid layer at index {index}: {reason}")
            }
            NnError::InputLengthMismatch { expected, actual } => {
                write!(f, "input length mismatch: expected {expected}, got {actual}")
            }
            NnError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::Tensor(msg) => write!(f, "tensor error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<ei_tensor::TensorError> for NnError {
    fn from(e: ei_tensor::TensorError) -> Self {
        NnError::Tensor(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = NnError::InvalidLayer { index: 2, reason: "kernel too large".into() };
        assert!(e.to_string().contains("index 2"));
    }

    #[test]
    fn from_tensor_error() {
        let te = ei_tensor::TensorError::InvalidShape("x".into());
        let ne: NnError = te.into();
        assert!(matches!(ne, NnError::Tensor(_)));
    }
}
