//! Loss functions with analytic gradients.

use crate::{NnError, Result};

/// Loss function used by the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Categorical cross-entropy over a softmax output.
    ///
    /// When the model's last layer is `Softmax`, the trainer uses the fused
    /// gradient `p - y` at the logits, which is both faster and numerically
    /// stabler than backpropagating through the softmax Jacobian.
    CrossEntropy,
    /// Mean squared error (regression / autoencoder workloads).
    MeanSquaredError,
}

impl Loss {
    /// Loss value for a predicted distribution/vector and a one-hot label.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] when `label >= prediction.len()`.
    pub fn value(self, prediction: &[f32], label: usize) -> Result<f32> {
        if label >= prediction.len() {
            return Err(NnError::LabelOutOfRange { label, classes: prediction.len() });
        }
        Ok(match self {
            Loss::CrossEntropy => -(prediction[label].max(1e-12)).ln(),
            Loss::MeanSquaredError => {
                prediction
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let t = if i == label { 1.0 } else { 0.0 };
                        (p - t).powi(2)
                    })
                    .sum::<f32>()
                    / prediction.len() as f32
            }
        })
    }

    /// Gradient of the loss w.r.t. the *model output*.
    ///
    /// For [`Loss::CrossEntropy`] over a softmax output this is the fused
    /// `p - y` gradient (to be injected *before* the softmax layer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] when `label >= prediction.len()`.
    pub fn gradient(self, prediction: &[f32], label: usize) -> Result<Vec<f32>> {
        if label >= prediction.len() {
            return Err(NnError::LabelOutOfRange { label, classes: prediction.len() });
        }
        Ok(match self {
            Loss::CrossEntropy => prediction
                .iter()
                .enumerate()
                .map(|(i, &p)| if i == label { p - 1.0 } else { p })
                .collect(),
            Loss::MeanSquaredError => {
                let n = prediction.len() as f32;
                prediction
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let t = if i == label { 1.0 } else { 0.0 };
                        2.0 * (p - t) / n
                    })
                    .collect()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_value() {
        let p = [0.7f32, 0.2, 0.1];
        assert!((Loss::CrossEntropy.value(&p, 0).unwrap() - (-0.7f32.ln())).abs() < 1e-6);
        assert!(Loss::CrossEntropy.value(&p, 3).is_err());
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let p = [1.0f32, 0.0];
        assert!(Loss::CrossEntropy.value(&p, 0).unwrap() < 1e-6);
        // zero-probability true class stays finite
        assert!(Loss::CrossEntropy.value(&p, 1).unwrap().is_finite());
    }

    #[test]
    fn fused_gradient_sums_to_zero() {
        let p = [0.5f32, 0.3, 0.2];
        let g = Loss::CrossEntropy.gradient(&p, 1).unwrap();
        assert!((g.iter().sum::<f32>()).abs() < 1e-6);
        assert!(g[1] < 0.0, "true class gradient is negative");
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = [0.0f32, 1.0];
        assert!(Loss::MeanSquaredError.value(&p, 1).unwrap() < 1e-9);
        let g = Loss::MeanSquaredError.gradient(&[0.5, 0.5], 0).unwrap();
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = [0.3f32, 0.6, 0.1];
        let label = 2;
        let g = Loss::MeanSquaredError.gradient(&p, label).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = p;
            plus[i] += eps;
            let mut minus = p;
            minus[i] -= eps;
            let num = (Loss::MeanSquaredError.value(&plus, label).unwrap()
                - Loss::MeanSquaredError.value(&minus, label).unwrap())
                / (2.0 * eps);
            assert!((num - g[i]).abs() < 1e-3);
        }
    }
}
