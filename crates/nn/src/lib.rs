#![warn(missing_docs)]

//! Neural-network definition, training and inference for `edgelab`.
//!
//! Edge Impulse's learn blocks let users assemble models from building
//! blocks, train them with stability helpers (learning-rate finding,
//! classifier bias initialization, best-checkpoint restoration — paper
//! §4.3), and deploy them through the runtime in `ei-runtime`. This crate
//! is that training stack, built from scratch:
//!
//! * [`spec::ModelSpec`] — a serializable sequential architecture
//!   description (the thing the EON Tuner mutates);
//! * [`model::Sequential`] — the compiled model: forward pass, backprop,
//!   parameter access, and per-layer MAC/parameter accounting that the
//!   device cost model consumes;
//! * [`train::Trainer`] — minibatch SGD/Adam training with validation
//!   split, early best-checkpoint restore, layer freezing (transfer
//!   learning) and a learning-rate finder;
//! * [`presets`] — the architectures used in the paper's evaluation
//!   (DS-CNN for keyword spotting, MobileNet-style image models, conv1d
//!   stacks explored by the tuner).
//!
//! # Example
//!
//! ```
//! use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
//! use ei_nn::model::Sequential;
//!
//! # fn main() -> Result<(), ei_nn::NnError> {
//! let spec = ModelSpec::new(Dims::new(1, 4, 1))
//!     .layer(LayerSpec::Flatten)
//!     .layer(LayerSpec::Dense { units: 3, activation: Activation::None });
//! let mut model = Sequential::build(&spec, 42)?;
//! let out = model.forward(&[0.1, 0.2, 0.3, 0.4])?;
//! assert_eq!(out.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optimizer;
pub mod par;
pub mod presets;
pub mod spec;
pub mod train;

pub use error::NnError;
pub use model::Sequential;
pub use spec::{Activation, Dims, LayerSpec, ModelSpec};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
