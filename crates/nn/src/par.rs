//! Pool-gated parallel forward kernels.
//!
//! The serial kernels in [`crate::layers`] accumulate each output element
//! over inputs in a fixed index order. The `_auto` variants here partition
//! the *output* (dense columns, convolution rows/steps) into disjoint
//! chunks and run each chunk as one [`ei_par::ParPool`] task, so every
//! element still sees exactly the serial accumulation sequence and the
//! result is bitwise-identical at any thread count.
//!
//! Small layers are not worth the fan-out: anything below
//! [`PAR_MIN_MACS`] multiply–accumulates, and any layer on a serial pool
//! (`EI_THREADS=1`), takes the plain serial path.

use crate::layers::conv::{
    conv1d_forward, conv1d_forward_steps, conv2d_forward, conv2d_forward_rows, depthwise_forward,
    depthwise_forward_rows, depthwise_macs, Conv1dGeom, Conv2dGeom,
};
use crate::layers::dense::{dense_forward, dense_forward_cols, dense_macs};
use ei_par::ParPool;

/// Layers below this many multiply–accumulates run serially: the cost of
/// queueing and waking workers would outweigh the arithmetic.
pub const PAR_MIN_MACS: u64 = 131_072;

/// Chunk length that splits `len` units of work into one chunk per pool
/// thread (at least 1).
fn chunk_len(len: usize, pool: &ParPool) -> usize {
    len.div_ceil(pool.threads()).max(1)
}

/// [`dense_forward`] fanned out over `pool` by output-column chunks.
pub fn dense_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    units: usize,
) -> Vec<f32> {
    if pool.threads() == 1 || dense_macs(input.len(), units) < PAR_MIN_MACS {
        return dense_forward(input, weights, bias, units);
    }
    let mut out = bias.to_vec();
    let chunk = chunk_len(units, pool);
    pool.scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || dense_forward_cols(input, weights, units, c * chunk, slice));
        }
    });
    out
}

/// [`conv2d_forward`] fanned out over `pool` by output-row chunks.
pub fn conv2d_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || g.macs() < PAR_MIN_MACS {
        return conv2d_forward(input, weights, bias, g);
    }
    let (oh, ow, _, _) = g.output();
    let mut out = vec![0.0f32; oh * ow * g.out_c];
    let rows = chunk_len(oh, pool);
    pool.scope(|scope| {
        for (c, slice) in out.chunks_mut(rows * ow * g.out_c).enumerate() {
            scope.spawn(move || conv2d_forward_rows(input, weights, bias, g, c * rows, slice));
        }
    });
    out
}

/// [`depthwise_forward`] fanned out over `pool` by output-row chunks.
pub fn depthwise_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || depthwise_macs(g) < PAR_MIN_MACS {
        return depthwise_forward(input, weights, bias, g);
    }
    let (oh, ow, _, _) = g.output();
    let mut out = vec![0.0f32; oh * ow * g.in_c];
    let rows = chunk_len(oh, pool);
    pool.scope(|scope| {
        for (c, slice) in out.chunks_mut(rows * ow * g.in_c).enumerate() {
            scope.spawn(move || depthwise_forward_rows(input, weights, bias, g, c * rows, slice));
        }
    });
    out
}

/// [`conv1d_forward`] fanned out over `pool` by output-step chunks.
pub fn conv1d_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv1dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || g.macs() < PAR_MIN_MACS {
        return conv1d_forward(input, weights, bias, g);
    }
    let (ow, _) = g.output();
    let mut out = vec![0.0f32; ow * g.out_c];
    let steps = chunk_len(ow, pool);
    pool.scope(|scope| {
        for (c, slice) in out.chunks_mut(steps * g.out_c).enumerate() {
            scope.spawn(move || conv1d_forward_steps(input, weights, bias, g, c * steps, slice));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Padding;
    use ei_par::Parallelism;

    /// Deterministic ramp with zeros sprinkled in to exercise the
    /// sparsity skip in the kernels.
    fn data(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| if i % 5 == 0 { 0.0 } else { ((i * 13 % 97) as f32 - 48.0) * 0.03 })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn dense_auto_is_bitwise_identical() {
        let (inputs, units) = (512, 300);
        let input = data(inputs);
        let weights = data(inputs * units);
        let bias = data(units);
        assert!(dense_macs(inputs, units) >= PAR_MIN_MACS);
        let serial = dense_forward(&input, &weights, &bias, units);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = dense_forward_auto(&pool, &input, &weights, &bias, units);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn conv2d_auto_is_bitwise_identical() {
        let g = Conv2dGeom {
            in_h: 17,
            in_w: 16,
            in_c: 8,
            out_c: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(g.macs() >= PAR_MIN_MACS);
        let input = data(g.in_h * g.in_w * g.in_c);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c * g.out_c);
        let bias = data(g.out_c);
        let serial = conv2d_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = conv2d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn depthwise_auto_is_bitwise_identical() {
        let g = Conv2dGeom {
            in_h: 40,
            in_w: 40,
            in_c: 16,
            out_c: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(depthwise_macs(g) >= PAR_MIN_MACS);
        let input = data(g.in_h * g.in_w * g.in_c);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c);
        let bias = data(g.in_c);
        let serial = depthwise_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = depthwise_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn conv1d_auto_is_bitwise_identical() {
        let g = Conv1dGeom {
            in_w: 250,
            in_c: 16,
            out_c: 24,
            kernel: 5,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(g.macs() >= PAR_MIN_MACS);
        let input = data(g.in_w * g.in_c);
        let weights = data(g.kernel * g.in_c * g.out_c);
        let bias = data(g.out_c);
        let serial = conv1d_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = conv1d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn small_layers_take_the_serial_path() {
        let pool = ParPool::new(Parallelism::new(4));
        let input = data(8);
        let weights = data(8 * 4);
        let bias = data(4);
        let steals_before = pool.steals();
        let out = dense_forward_auto(&pool, &input, &weights, &bias, 4);
        assert_eq!(out, dense_forward(&input, &weights, &bias, 4));
        assert_eq!(pool.steals(), steals_before, "no tasks should have been queued");
    }
}
