//! Pool-gated forward kernels: im2col + blocked GEMM, fanned out over
//! the worker pool.
//!
//! The serial kernels in [`crate::layers`] are the reference oracles:
//! they accumulate each output element over inputs in a fixed index
//! order. The `_auto` variants here lower dense/conv layers onto the
//! cache-blocked GEMM in [`ei_tensor::gemm`] (convolutions via
//! [`crate::layers::im2col`]) and partition the *output* (GEMM rows,
//! dense columns, depthwise row bands) into disjoint chunks, one
//! [`ei_par::ParPool`] task each. The blocked kernel replays the exact
//! per-element accumulation sequence of the naive loops (ascending input
//! index, same `x == 0.0` skip), so every partition — and any
//! `EI_THREADS` — is bitwise-identical to the serial reference.
//!
//! Small layers are not worth the lowering or the fan-out: anything
//! below [`PAR_MIN_MACS`] multiply–accumulates, and any layer on a
//! serial pool (`EI_THREADS=1`), takes the plain serial reference path.

use crate::layers::conv::{
    conv1d_forward, conv2d_forward, depthwise_forward, depthwise_forward_rows, depthwise_macs,
    Conv1dGeom, Conv2dGeom,
};
use crate::layers::dense::{dense_forward, dense_macs};
use crate::layers::im2col::{im2col_1d, im2col_2d};
use ei_par::ParPool;
use ei_tensor::gemm::{gemm_f32, gemm_f32_acc};

/// Layers below this many multiply–accumulates run serially: the cost of
/// queueing and waking workers would outweigh the arithmetic.
pub const PAR_MIN_MACS: u64 = 131_072;

/// Convolutions below this many multiply–accumulates skip the im2col
/// lowering and run the direct serial kernel.
///
/// The conv gate is much higher than [`PAR_MIN_MACS`] because lowering
/// pays for a full patch-matrix materialization (a `kh·kw`-fold copy of
/// the input) before the GEMM even starts. On TinyML-sized convolutions
/// — e.g. a 49×10×64 keyword-spotting feature map at ~18 M MACs — that
/// gather traffic costs more than the arithmetic saved, and the blocked
/// path benchmarked at 0.88× the naive kernel. Direct convolution keeps
/// those shapes serial; only camera-scale feature maps cross this bar.
pub const PAR_MIN_IM2COL_MACS: u64 = 33_554_432;

/// Chunk length that splits `len` units of work into one chunk per pool
/// thread (at least 1).
fn chunk_len(len: usize, pool: &ParPool) -> usize {
    len.div_ceil(pool.threads()).max(1)
}

/// Blocked GEMM fanned out over `pool`: row chunks for `m > 1`, column
/// chunks for the matrix–vector case (`m == 1`).
///
/// `out` is `m × n`; rows start from `bias` (or zero). Below
/// [`PAR_MIN_MACS`], or on a serial pool, runs the blocked kernel inline.
/// Every partition is bitwise-identical to [`gemm_f32`] because each
/// output element's accumulation order depends only on its own row.
#[allow(clippy::too_many_arguments)] // the GEMM shape septet + pool
pub fn gemm_f32_auto(
    pool: &ParPool,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    let macs = (m as u64) * (k as u64) * (n as u64);
    if pool.threads() == 1 || macs < PAR_MIN_MACS {
        gemm_f32(m, k, n, a, b, bias, out);
        return;
    }
    if m == 1 {
        match bias {
            Some(bv) => out.copy_from_slice(bv),
            None => out.fill(0.0),
        }
        let chunk = chunk_len(n, pool);
        pool.scope(|scope| {
            for (c, slice) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || gemm_f32_acc(1, k, n, a, b, c * chunk, slice));
            }
        });
        return;
    }
    let rows = chunk_len(m, pool);
    pool.scope(|scope| {
        for (c, slice) in out.chunks_mut(rows * n).enumerate() {
            let r0 = c * rows;
            let rm = slice.len() / n;
            scope.spawn(move || gemm_f32(rm, k, n, &a[r0 * k..(r0 + rm) * k], b, bias, slice));
        }
    });
}

/// [`dense_forward`] lowered to a 1×`units` GEMM, column-partitioned
/// over `pool`.
pub fn dense_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    units: usize,
) -> Vec<f32> {
    if pool.threads() == 1 || dense_macs(input.len(), units) < PAR_MIN_MACS {
        return dense_forward(input, weights, bias, units);
    }
    let mut out = vec![0.0f32; units];
    gemm_f32_auto(pool, 1, input.len(), units, input, weights, Some(bias), &mut out);
    out
}

/// [`conv2d_forward`] lowered via im2col to an
/// `(oh·ow) × (kh·kw·in_c) × out_c` GEMM, row-partitioned over `pool`.
pub fn conv2d_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || g.macs() < PAR_MIN_IM2COL_MACS {
        return conv2d_forward(input, weights, bias, g);
    }
    let (oh, ow, _, _) = g.output();
    let m = oh * ow;
    let window = g.kernel_h * g.kernel_w * g.in_c;
    let patches = im2col_2d(input, g, 0.0f32);
    let mut out = vec![0.0f32; m * g.out_c];
    gemm_f32_auto(pool, m, window, g.out_c, &patches, weights, Some(bias), &mut out);
    out
}

/// [`depthwise_forward`] partitioned into bands of output rows, one pool
/// task per band, each running the serial row kernel directly.
///
/// Depthwise windows are tiny (`kh·kw` taps per channel), so an im2col
/// lowering would gather more bytes than the arithmetic it feeds; the
/// direct kernel is already the fastest serial form and row bands make
/// each output element's computation untouched — parity is structural.
pub fn depthwise_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv2dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || depthwise_macs(g) < PAR_MIN_MACS {
        return depthwise_forward(input, weights, bias, g);
    }
    let (oh, ow, _, _) = g.output();
    let c = g.in_c;
    let band = chunk_len(oh, pool);
    let mut out = vec![0.0f32; oh * ow * c];
    pool.scope(|scope| {
        for (i, slice) in out.chunks_mut(band * ow * c).enumerate() {
            scope.spawn(move || depthwise_forward_rows(input, weights, bias, g, i * band, slice));
        }
    });
    out
}

/// [`conv1d_forward`] lowered via im2col to an
/// `ow × (kernel·in_c) × out_c` GEMM, row-partitioned over `pool`.
pub fn conv1d_forward_auto(
    pool: &ParPool,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    g: Conv1dGeom,
) -> Vec<f32> {
    if pool.threads() == 1 || g.macs() < PAR_MIN_IM2COL_MACS {
        return conv1d_forward(input, weights, bias, g);
    }
    let (ow, _) = g.output();
    let window = g.kernel * g.in_c;
    let patches = im2col_1d(input, g, 0.0f32);
    let mut out = vec![0.0f32; ow * g.out_c];
    gemm_f32_auto(pool, ow, window, g.out_c, &patches, weights, Some(bias), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Padding;
    use ei_par::Parallelism;

    /// Deterministic ramp with zeros sprinkled in to exercise the
    /// sparsity skip in the kernels.
    fn data(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| if i % 5 == 0 { 0.0 } else { ((i * 13 % 97) as f32 - 48.0) * 0.03 })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn dense_auto_is_bitwise_identical() {
        let (inputs, units) = (512, 300);
        let input = data(inputs);
        let weights = data(inputs * units);
        let bias = data(units);
        assert!(dense_macs(inputs, units) >= PAR_MIN_MACS);
        let serial = dense_forward(&input, &weights, &bias, units);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = dense_forward_auto(&pool, &input, &weights, &bias, units);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn conv2d_auto_is_bitwise_identical() {
        let g = Conv2dGeom {
            in_h: 48,
            in_w: 32,
            in_c: 48,
            out_c: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(g.macs() >= PAR_MIN_IM2COL_MACS);
        let input = data(g.in_h * g.in_w * g.in_c);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c * g.out_c);
        let bias = data(g.out_c);
        let serial = conv2d_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = conv2d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn depthwise_auto_is_bitwise_identical() {
        let g = Conv2dGeom {
            in_h: 40,
            in_w: 40,
            in_c: 16,
            out_c: 16,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(depthwise_macs(g) >= PAR_MIN_MACS);
        let input = data(g.in_h * g.in_w * g.in_c);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c);
        let bias = data(g.in_c);
        let serial = depthwise_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = depthwise_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn conv1d_auto_is_bitwise_identical() {
        let g = Conv1dGeom {
            in_w: 2000,
            in_c: 32,
            out_c: 64,
            kernel: 9,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(g.macs() >= PAR_MIN_IM2COL_MACS);
        let input = data(g.in_w * g.in_c);
        let weights = data(g.kernel * g.in_c * g.out_c);
        let bias = data(g.out_c);
        let serial = conv1d_forward(&input, &weights, &bias, g);
        let pool = ParPool::new(Parallelism::new(4));
        let parallel = conv1d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn gemm_auto_matches_serial_at_any_width() {
        let (m, k, n) = (64, 48, 50);
        let a = data(m * k);
        let b = data(k * n);
        let bias = data(n);
        let mut serial = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, Some(&bias), &mut serial);
        for threads in [1usize, 4] {
            let pool = ParPool::new(Parallelism::new(threads));
            let mut parallel = vec![0.0f32; m * n];
            gemm_f32_auto(&pool, m, k, n, &a, &b, Some(&bias), &mut parallel);
            assert_eq!(bits(&serial), bits(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn tinyml_sized_convs_stay_serial() {
        // the keyword-spotting DS-CNN head: ~18 M MACs, below the im2col
        // bar but far above PAR_MIN_MACS — must take the direct path
        let g = Conv2dGeom {
            in_h: 49,
            in_w: 10,
            in_c: 64,
            out_c: 64,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(g.macs() >= PAR_MIN_MACS && g.macs() < PAR_MIN_IM2COL_MACS);
        let input = data(g.in_h * g.in_w * g.in_c);
        let weights = data(g.kernel_h * g.kernel_w * g.in_c * g.out_c);
        let bias = data(g.out_c);
        let pool = ParPool::new(Parallelism::new(4));
        let steals_before = pool.steals();
        let out = conv2d_forward_auto(&pool, &input, &weights, &bias, g);
        assert_eq!(bits(&out), bits(&conv2d_forward(&input, &weights, &bias, g)));
        assert_eq!(pool.steals(), steals_before, "no tasks should have been queued");
    }

    #[test]
    fn small_layers_take_the_serial_path() {
        let pool = ParPool::new(Parallelism::new(4));
        let input = data(8);
        let weights = data(8 * 4);
        let bias = data(4);
        let steals_before = pool.steals();
        let out = dense_forward_auto(&pool, &input, &weights, &bias, 4);
        assert_eq!(out, dense_forward(&input, &weights, &bias, 4));
        assert_eq!(pool.steals(), steals_before, "no tasks should have been queued");
    }
}
