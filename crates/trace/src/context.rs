//! Ambient causal trace context, propagated across threads by hand.
//!
//! A [`TraceContext`] names one position in one trace: the trace id (the
//! root span's id) and the current span id. Each thread keeps an ambient
//! *stack* of contexts; [`crate::Tracer::span`] consults the top of that
//! stack when no explicit parent is given, so a span opened anywhere —
//! a pool task, a scheduler worker, a dist coordinator — stitches into
//! the request tree whose context was entered on that thread.
//!
//! Propagation is explicit and cheap: capture [`current`] where work is
//! *submitted*, move the `TraceContext` (it is `Copy`) into the closure,
//! and [`TraceContext::enter`] it where the work *runs*. The returned
//! [`ContextGuard`] pops the stack on drop, so nesting is automatic and
//! panic-safe. Guards are deliberately `!Send`: a context must be exited
//! on the thread that entered it.
//!
//! ```
//! use ei_trace::context::{self, TraceContext};
//!
//! assert_eq!(context::current(), None);
//! let ctx = TraceContext { trace_id: 7, span_id: 9 };
//! {
//!     let _guard = ctx.enter();
//!     assert_eq!(context::current(), Some(ctx));
//! }
//! assert_eq!(context::current(), None);
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;

/// One position in one causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The id of the trace's root span. Every span in one request tree
    /// carries the same `trace_id`, so a dump can be cut per request.
    pub trace_id: u64,
    /// The span that is current at this point — new spans opened under
    /// this context become its children.
    pub span_id: u64,
}

thread_local! {
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The context on top of this thread's ambient stack, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|s| s.borrow().last().copied())
}

impl TraceContext {
    /// Pushes this context onto the thread's ambient stack; the guard
    /// pops it on drop.
    pub fn enter(self) -> ContextGuard {
        STACK.with(|s| s.borrow_mut().push(self));
        ContextGuard { _not_send: PhantomData }
    }
}

/// RAII guard for an entered [`TraceContext`]; `!Send` so the pop always
/// happens on the thread that pushed.
#[derive(Debug)]
pub struct ContextGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_nest_and_unwind_in_lifo_order() {
        let a = TraceContext { trace_id: 1, span_id: 1 };
        let b = TraceContext { trace_id: 1, span_id: 2 };
        assert_eq!(current(), None);
        let ga = a.enter();
        assert_eq!(current(), Some(a));
        {
            let _gb = b.enter();
            assert_eq!(current(), Some(b));
        }
        assert_eq!(current(), Some(a));
        drop(ga);
        assert_eq!(current(), None);
    }

    #[test]
    fn context_is_per_thread() {
        let ctx = TraceContext { trace_id: 3, span_id: 4 };
        let _g = ctx.enter();
        let seen = std::thread::spawn(current).join().unwrap();
        assert_eq!(seen, None, "ambient context must not leak across threads");
        assert_eq!(current(), Some(ctx));
    }

    #[test]
    fn guard_pops_even_on_panic() {
        let ctx = TraceContext { trace_id: 5, span_id: 6 };
        let result = std::panic::catch_unwind(|| {
            let _g = ctx.enter();
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(current(), None);
    }
}
