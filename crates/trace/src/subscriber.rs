//! The subscriber sink and the collecting implementation.

use crate::export;
use crate::record::TraceRecord;
use std::sync::{Mutex, MutexGuard};

/// A sink for trace records.
///
/// Implementations must be cheap and non-blocking-ish: the tracer calls
/// [`Subscriber::record`] inline from workers, trainers and profilers.
pub trait Subscriber: Send + Sync {
    /// Receives one record. Records arrive in `seq` order per tracer.
    fn record(&self, record: &TraceRecord);
}

/// A subscriber that buffers every record in memory — the backbone of
/// tests, the bench harness and the example pipelines.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<TraceRecord>>,
}

fn lock(m: &Mutex<Vec<TraceRecord>>) -> MutexGuard<'_, Vec<TraceRecord>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> CollectingSubscriber {
        CollectingSubscriber::default()
    }

    /// A copy of every record collected so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        lock(&self.records).clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.records).is_empty()
    }

    /// Drops every collected record.
    pub fn clear(&self) {
        lock(&self.records).clear();
    }

    /// The collected trace as JSONL (one JSON object per line).
    pub fn jsonl(&self) -> String {
        export::to_jsonl(&self.records())
    }

    /// The collected spans as a Chrome-trace (`chrome://tracing`) JSON
    /// document.
    pub fn chrome_trace(&self) -> String {
        export::to_chrome_trace(&self.records())
    }
}

impl Subscriber for CollectingSubscriber {
    fn record(&self, record: &TraceRecord) {
        lock(&self.records).push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    #[test]
    fn collects_in_order_and_clears() {
        let sub = CollectingSubscriber::new();
        assert!(sub.is_empty());
        for seq in 0..3 {
            sub.record(&TraceRecord {
                seq,
                ts_ms: seq,
                kind: RecordKind::Event { span: None, name: format!("e{seq}"), fields: vec![] },
            });
        }
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.records()[1].name(), "e1");
        sub.clear();
        assert!(sub.is_empty());
    }
}
