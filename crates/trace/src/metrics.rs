//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! The registry aggregates [`MetricUpdate`]s into current values, keyed by
//! metric name in a `BTreeMap` so snapshots (and the Prometheus
//! exposition built from them) have a deterministic order.

use crate::record::MetricUpdate;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Aggregated state of one metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last value set.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram {
        /// Upper bounds of the finite buckets, ascending. An implicit
        /// `+Inf` bucket catches everything above the last bound.
        /// Sanitized at series creation: non-finite bounds are removed,
        /// the rest sorted and deduplicated (empty bounds are legal — the
        /// series degenerates to a `+Inf`-only bucket).
        bounds: Vec<f64>,
        /// Observation counts per bucket (`bounds.len() + 1` entries,
        /// the last being the `+Inf` bucket). Buckets are not cumulative.
        /// An observation exactly on a bound lands in that bound's
        /// bucket (`v <= bound`, Prometheus `le` semantics).
        counts: Vec<u64>,
        /// Sum of all accepted observations.
        sum: f64,
        /// Total accepted observation count.
        count: u64,
        /// NaN/±inf observations rejected rather than poisoning `sum`.
        dropped: u64,
    },
}

/// Removes non-finite entries, sorts ascending and deduplicates, so one
/// observation maps to exactly one bucket.
fn sanitize_bounds(bounds: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare totally"));
    out.dedup();
    out
}

/// A thread-safe metric aggregation table.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<String, MetricValue>>,
}

fn lock(m: &Mutex<BTreeMap<String, MetricValue>>) -> MutexGuard<'_, BTreeMap<String, MetricValue>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Applies one update, creating the series on first touch. A
    /// histogram's bucket bounds are fixed by the first observation's
    /// `bounds`; later calls reuse them.
    pub fn apply(&self, name: &str, update: &MetricUpdate, bounds: &[f64]) {
        let mut series = lock(&self.series);
        match update {
            MetricUpdate::CounterAdd(n) => {
                let entry = series.entry(name.to_string()).or_insert(MetricValue::Counter(0));
                if let MetricValue::Counter(total) = entry {
                    *total += n;
                }
            }
            MetricUpdate::GaugeSet(v) => {
                series.insert(name.to_string(), MetricValue::Gauge(*v));
            }
            MetricUpdate::HistogramObserve(v) => {
                let entry = series.entry(name.to_string()).or_insert_with(|| {
                    let bounds = sanitize_bounds(bounds);
                    let counts = vec![0; bounds.len() + 1];
                    MetricValue::Histogram { bounds, counts, sum: 0.0, count: 0, dropped: 0 }
                });
                if let MetricValue::Histogram { bounds, counts, sum, count, dropped } = entry {
                    if !v.is_finite() {
                        *dropped += 1;
                        return;
                    }
                    let idx = bounds.iter().position(|b| v <= b).unwrap_or(bounds.len());
                    counts[idx] += 1;
                    *sum += v;
                    *count += 1;
                }
            }
        }
    }

    /// A point-in-time copy of every series, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        lock(&self.series).clone()
    }

    /// `true` when no metric has ever been recorded.
    pub fn is_empty(&self) -> bool {
        lock(&self.series).is_empty()
    }

    /// The current counter total, or `None` for unknown/non-counter names.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match lock(&self.series).get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The current gauge value, or `None` for unknown/non-gauge names.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match lock(&self.series).get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.apply("jobs", &MetricUpdate::CounterAdd(2), &[]);
        reg.apply("jobs", &MetricUpdate::CounterAdd(3), &[]);
        assert_eq!(reg.counter("jobs"), Some(5));
        assert!(!reg.is_empty());
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = MetricsRegistry::new();
        reg.apply("loss", &MetricUpdate::GaugeSet(0.9), &[]);
        reg.apply("loss", &MetricUpdate::GaugeSet(0.4), &[]);
        assert_eq!(reg.gauge("loss"), Some(0.4));
    }

    #[test]
    fn histogram_buckets_fill_in_order() {
        let reg = MetricsRegistry::new();
        let bounds = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 5.0, 50.0, 5_000.0] {
            reg.apply("ms", &MetricUpdate::HistogramObserve(v), &bounds);
        }
        match reg.snapshot().get("ms") {
            Some(MetricValue::Histogram { counts, sum, count, .. }) => {
                assert_eq!(counts, &vec![1, 2, 1, 1]);
                assert_eq!(*count, 5);
                assert!((sum - 5_060.5).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn observation_exactly_on_a_bound_lands_in_that_bucket() {
        let reg = MetricsRegistry::new();
        let bounds = [1.0, 10.0];
        for v in [1.0, 10.0, 10.0] {
            reg.apply("ms", &MetricUpdate::HistogramObserve(v), &bounds);
        }
        match reg.snapshot().get("ms") {
            Some(MetricValue::Histogram { counts, .. }) => assert_eq!(counts, &vec![1, 2, 0]),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_observations_are_dropped_not_summed() {
        let reg = MetricsRegistry::new();
        let bounds = [1.0];
        for v in [0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0] {
            reg.apply("ms", &MetricUpdate::HistogramObserve(v), &bounds);
        }
        match reg.snapshot().get("ms") {
            Some(MetricValue::Histogram { counts, sum, count, dropped, .. }) => {
                assert_eq!(counts, &vec![1, 1]);
                assert_eq!(*count, 2);
                assert_eq!(*dropped, 3);
                assert!((sum - 2.5).abs() < 1e-12, "sum must not be poisoned: {sum}");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn empty_bounds_degenerate_to_an_inf_only_bucket() {
        let reg = MetricsRegistry::new();
        for v in [3.0, 4.0] {
            reg.apply("ms", &MetricUpdate::HistogramObserve(v), &[]);
        }
        match reg.snapshot().get("ms") {
            Some(MetricValue::Histogram { bounds, counts, count, .. }) => {
                assert!(bounds.is_empty());
                assert_eq!(counts, &vec![2]);
                assert_eq!(*count, 2);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_duplicate_or_non_finite_bounds_are_sanitized_at_creation() {
        let reg = MetricsRegistry::new();
        let messy = [10.0, 1.0, f64::INFINITY, 10.0, f64::NAN];
        reg.apply("ms", &MetricUpdate::HistogramObserve(5.0), &messy);
        match reg.snapshot().get("ms") {
            Some(MetricValue::Histogram { bounds, counts, .. }) => {
                assert_eq!(bounds, &vec![1.0, 10.0]);
                assert_eq!(counts, &vec![0, 1, 0]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn empty_registry_reports_empty() {
        assert!(MetricsRegistry::new().is_empty());
        assert!(MetricsRegistry::new().snapshot().is_empty());
    }
}
