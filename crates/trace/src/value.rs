//! Typed field values attached to spans, events and metrics.

/// A key paired with a [`Value`] — the unit of structured context.
pub type Field = (&'static str, Value);

/// A typed field value.
///
/// Deliberately small: everything the pipeline reports is a number, a
/// string or a flag. `From` conversions cover the common Rust types so
/// call sites can write `("epoch", epoch.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (ids, counts, byte sizes).
    Uint(u64),
    /// A floating-point measurement.
    Float(f64),
    /// A string label.
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Uint(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Uint(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Uint(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_common_types() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3u32), Value::Uint(3));
        assert_eq!(Value::from(7usize), Value::Uint(7));
        assert_eq!(Value::from(-2i32), Value::Int(-2));
        assert_eq!(Value::from(1.5f32), Value::Float(1.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
