//! The [`Tracer`] handle, RAII span guards and metric handles.

use crate::context::{ContextGuard, TraceContext};
use crate::metrics::MetricsRegistry;
use crate::record::{MetricUpdate, RecordKind, TraceRecord};
use crate::subscriber::{CollectingSubscriber, Subscriber};
use crate::value::Field;
use ei_faults::Clock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    subscriber: Arc<dyn Subscriber>,
    clock: Arc<dyn Clock>,
    next_span: AtomicU64,
    seq: AtomicU64,
    metrics: MetricsRegistry,
}

/// A cloneable handle the pipeline layers record through.
///
/// Two states:
///
/// * **enabled** ([`Tracer::new`]) — spans, events and metrics flow to
///   the subscriber, timestamped from the given [`Clock`] (deterministic
///   under an [`ei_faults::VirtualClock`]);
/// * **disabled** ([`Tracer::disabled`]) — every operation is a no-op
///   behind a single `Option` check: span guards do nothing, no metric
///   is registered, nothing allocates.
///
/// All instrumented layers take a `Tracer` by value (it is a couple of
/// pointers) and default to the disabled state, so observability is
/// strictly opt-in and free when off.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.inner.is_some()).finish()
    }
}

impl Tracer {
    /// The no-op tracer (also [`Tracer::default`]).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer feeding `subscriber`, timestamped from `clock`.
    pub fn new(subscriber: Arc<dyn Subscriber>, clock: Arc<dyn Clock>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                subscriber,
                clock,
                next_span: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Convenience: a tracer wired to a fresh [`CollectingSubscriber`].
    pub fn collecting(clock: Arc<dyn Clock>) -> (Tracer, Arc<CollectingSubscriber>) {
        let collector = Arc::new(CollectingSubscriber::new());
        (Tracer::new(Arc::<CollectingSubscriber>::clone(&collector), clock), collector)
    }

    /// `true` when records actually flow anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(inner: &Inner, kind: RecordKind) {
        let record = TraceRecord {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            ts_ms: inner.clock.now_ms(),
            kind,
        };
        inner.subscriber.record(&record);
    }

    fn open_span(&self, name: &str, parent: Option<TraceContext>, fields: Vec<Field>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: 0,
                trace: 0,
                name: String::new(),
                start_ms: 0,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        // No explicit parent: adopt the thread's ambient context, so a
        // span opened inside entered work stitches into the request tree.
        let parent = parent.or_else(crate::context::current);
        let (parent_id, trace) = match parent {
            Some(ctx) => (Some(ctx.span_id), ctx.trace_id),
            None => (None, id),
        };
        let start_ms = inner.clock.now_ms();
        Self::emit(
            inner,
            RecordKind::SpanStart { id, parent: parent_id, trace, name: name.to_string(), fields },
        );
        SpanGuard { tracer: self.clone(), id, trace, name: name.to_string(), start_ms }
    }

    /// Opens a span; the returned guard closes it on drop. The span is a
    /// root unless the thread has an ambient [`TraceContext`] entered, in
    /// which case it becomes a child of that context's span.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open_span(name, None, Vec::new())
    }

    /// Like [`Tracer::span`], with structured context.
    pub fn span_with(&self, name: &str, fields: Vec<Field>) -> SpanGuard {
        self.open_span(name, None, fields)
    }

    /// Opens a span as a child of an explicit [`TraceContext`] (e.g. one
    /// carried across threads by hand), bypassing the ambient stack.
    pub fn span_in(&self, name: &str, ctx: TraceContext, fields: Vec<Field>) -> SpanGuard {
        self.open_span(name, Some(ctx), fields)
    }

    /// Emits a point-in-time event outside any span.
    pub fn event(&self, name: &str, fields: Vec<Field>) {
        if let Some(inner) = &self.inner {
            Self::emit(inner, RecordKind::Event { span: None, name: name.to_string(), fields });
        }
    }

    /// A counter handle (monotonic total).
    pub fn counter(&self, name: &str) -> Counter {
        Counter { tracer: self.clone(), name: name.to_string(), quiet: false }
    }

    /// A gauge handle (last value wins).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge { tracer: self.clone(), name: name.to_string(), quiet: false }
    }

    /// A *quiet* counter: updates the metrics registry but emits no record
    /// to the subscriber stream. Meant for series whose update timing is
    /// scheduling-dependent (e.g. work-steal counts), so that the record
    /// stream itself stays byte-deterministic.
    pub fn quiet_counter(&self, name: &str) -> Counter {
        Counter { tracer: self.clone(), name: name.to_string(), quiet: true }
    }

    /// A *quiet* gauge: registry-only, no stream record. See
    /// [`Tracer::quiet_counter`].
    pub fn quiet_gauge(&self, name: &str) -> Gauge {
        Gauge { tracer: self.clone(), name: name.to_string(), quiet: true }
    }

    /// A fixed-bucket histogram handle. `bounds` are ascending upper
    /// bounds; an implicit `+Inf` bucket catches the rest. The bounds are
    /// fixed by the series' first observation.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram { tracer: self.clone(), name: name.to_string(), bounds: bounds.to_vec() }
    }

    fn metric(&self, name: &str, update: MetricUpdate, bounds: &[f64], quiet: bool) {
        if let Some(inner) = &self.inner {
            inner.metrics.apply(name, &update, bounds);
            if !quiet {
                Self::emit(inner, RecordKind::Metric { name: name.to_string(), update });
            }
        }
    }

    /// A snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> BTreeMap<String, crate::metrics::MetricValue> {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => BTreeMap::new(),
        }
    }

    /// The registry rendered as a Prometheus-style text exposition
    /// (empty string when disabled or nothing was recorded).
    pub fn prometheus(&self) -> String {
        crate::export::to_prometheus(&self.metrics_snapshot())
    }
}

/// An RAII guard for an open span; dropping it records the span end.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
    trace: u64,
    name: String,
    start_ms: u64,
}

impl SpanGuard {
    /// The span id, or `None` on a disabled tracer.
    pub fn id(&self) -> Option<u64> {
        self.tracer.inner.as_ref().map(|_| self.id)
    }

    /// This span's position as a [`TraceContext`] (carry it across a
    /// thread boundary, then [`TraceContext::enter`] it there), or
    /// `None` on a disabled tracer.
    pub fn context(&self) -> Option<TraceContext> {
        self.tracer.inner.as_ref().map(|_| TraceContext { trace_id: self.trace, span_id: self.id })
    }

    /// Enters this span's context on the current thread, so spans opened
    /// below (even through other handles to the same tracer) become its
    /// descendants. No-op (`None`) on a disabled tracer.
    pub fn enter(&self) -> Option<ContextGuard> {
        self.context().map(TraceContext::enter)
    }

    /// Opens a child span.
    pub fn child(&self, name: &str) -> SpanGuard {
        self.tracer.open_span(name, self.context(), Vec::new())
    }

    /// Opens a child span with structured context.
    pub fn child_with(&self, name: &str, fields: Vec<Field>) -> SpanGuard {
        self.tracer.open_span(name, self.context(), fields)
    }

    /// Emits an event inside this span.
    pub fn event(&self, name: &str, fields: Vec<Field>) {
        if let Some(inner) = &self.tracer.inner {
            Tracer::emit(
                inner,
                RecordKind::Event { span: Some(self.id), name: name.to_string(), fields },
            );
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.tracer.inner {
            let duration_ms = inner.clock.now_ms().saturating_sub(self.start_ms);
            Tracer::emit(
                inner,
                RecordKind::SpanEnd {
                    id: self.id,
                    name: std::mem::take(&mut self.name),
                    duration_ms,
                },
            );
        }
    }
}

/// A monotonic counter bound to one tracer and series name.
#[derive(Debug, Clone)]
pub struct Counter {
    tracer: Tracer,
    name: String,
    quiet: bool,
}

impl Counter {
    /// Adds `n` to the total.
    pub fn add(&self, n: u64) {
        self.tracer.metric(&self.name, MetricUpdate::CounterAdd(n), &[], self.quiet);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A gauge bound to one tracer and series name.
#[derive(Debug, Clone)]
pub struct Gauge {
    tracer: Tracer,
    name: String,
    quiet: bool,
}

impl Gauge {
    /// Sets the instantaneous value.
    pub fn set(&self, v: f64) {
        self.tracer.metric(&self.name, MetricUpdate::GaugeSet(v), &[], self.quiet);
    }
}

/// A fixed-bucket histogram bound to one tracer and series name.
#[derive(Debug, Clone)]
pub struct Histogram {
    tracer: Tracer,
    name: String,
    bounds: Vec<f64>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.tracer.metric(&self.name, MetricUpdate::HistogramObserve(v), &self.bounds, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricValue;
    use ei_faults::VirtualClock;

    fn traced() -> (Tracer, Arc<CollectingSubscriber>, Arc<VirtualClock>) {
        let clock = VirtualClock::shared();
        let (tracer, collector) = Tracer::collecting(clock.clone());
        (tracer, collector, clock)
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let (tracer, collector, clock) = traced();
        {
            let root = tracer.span("flow");
            clock.advance_ms(5);
            {
                let stage = root.child_with("stage", vec![("name", "train".into())]);
                clock.advance_ms(7);
                stage.event("epoch", vec![("loss", 0.5.into())]);
            }
        }
        let records = collector.records();
        assert_eq!(records.len(), 5);
        match &records[1].kind {
            RecordKind::SpanStart { parent, .. } => assert_eq!(*parent, Some(1)),
            other => panic!("expected child span start, got {other:?}"),
        }
        match &records[3].kind {
            RecordKind::SpanEnd { name, duration_ms, .. } => {
                assert_eq!(name, "stage");
                assert_eq!(*duration_ms, 7);
            }
            other => panic!("expected stage end, got {other:?}"),
        }
        match &records[4].kind {
            RecordKind::SpanEnd { name, duration_ms, .. } => {
                assert_eq!(name, "flow");
                assert_eq!(*duration_ms, 12);
            }
            other => panic!("expected flow end, got {other:?}"),
        }
    }

    #[test]
    fn metrics_reach_registry_and_stream() {
        let (tracer, collector, _) = traced();
        tracer.counter("jobs").add(2);
        tracer.gauge("loss").set(0.25);
        tracer.histogram("ms", &[10.0]).observe(3.0);
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(snapshot.get("jobs"), Some(&MetricValue::Counter(2)));
        assert_eq!(snapshot.get("loss"), Some(&MetricValue::Gauge(0.25)));
        assert_eq!(collector.len(), 3);
    }

    #[test]
    fn quiet_metrics_reach_registry_but_not_the_stream() {
        let (tracer, collector, _) = traced();
        tracer.quiet_counter("steals").add(3);
        tracer.quiet_gauge("queue_depth").set(2.0);
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(snapshot.get("steals"), Some(&MetricValue::Counter(3)));
        assert_eq!(snapshot.get("queue_depth"), Some(&MetricValue::Gauge(2.0)));
        assert_eq!(collector.len(), 0, "quiet metrics must not emit records");
    }

    #[test]
    fn quiet_metrics_on_disabled_tracer_are_no_ops() {
        let tracer = Tracer::disabled();
        tracer.quiet_counter("steals").inc();
        tracer.quiet_gauge("queue_depth").set(1.0);
        assert!(tracer.metrics_snapshot().is_empty());
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let span = tracer.span("nothing");
        assert_eq!(span.id(), None);
        span.event("ev", vec![]);
        let child = span.child("inner");
        drop(child);
        tracer.counter("c").inc();
        tracer.gauge("g").set(1.0);
        tracer.histogram("h", &[1.0]).observe(2.0);
        assert!(tracer.metrics_snapshot().is_empty());
        assert_eq!(tracer.prometheus(), "");
    }

    #[test]
    fn spans_carry_their_roots_trace_id() {
        let (tracer, collector, _) = traced();
        {
            let root = tracer.span("serve.request");
            let _child = root.child("serve.batch");
            let _other_root = tracer.span("unrelated");
        }
        let records = collector.records();
        let starts: Vec<(u64, Option<u64>, u64)> = records
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::SpanStart { id, parent, trace, .. } => Some((*id, *parent, *trace)),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![(1, None, 1), (2, Some(1), 1), (3, None, 3)]);
    }

    #[test]
    fn ambient_context_stitches_spans_across_handles() {
        let (tracer, collector, _) = traced();
        let root = tracer.span("serve.request");
        let ctx = root.context().unwrap();
        // Simulate a worker thread: fresh handle, explicit context entry.
        let worker_tracer = tracer.clone();
        let handle = std::thread::spawn(move || {
            let _entered = ctx.enter();
            let job = worker_tracer.span("job");
            job.event("job.running", vec![]);
        });
        handle.join().unwrap();
        drop(root);
        let records = collector.records();
        match &records[1].kind {
            RecordKind::SpanStart { parent, trace, name, .. } => {
                assert_eq!(name, "job");
                assert_eq!(*parent, Some(1));
                assert_eq!(*trace, 1);
            }
            other => panic!("expected stitched job span, got {other:?}"),
        }
    }

    #[test]
    fn entered_span_adopts_later_roots() {
        let (tracer, collector, _) = traced();
        {
            let root = tracer.span("outer");
            let _entered = root.enter();
            // span() with no explicit parent picks up the ambient context.
            let _inner = tracer.span("inner");
        }
        let records = collector.records();
        match &records[1].kind {
            RecordKind::SpanStart { parent, trace, .. } => {
                assert_eq!((*parent, *trace), (Some(1), 1));
            }
            other => panic!("expected adopted span, got {other:?}"),
        }
        // Disabled tracers hand out no context and enter() is a no-op.
        let disabled = Tracer::disabled();
        let span = disabled.span("nothing");
        assert!(span.context().is_none());
        assert!(span.enter().is_none());
    }

    #[test]
    fn sequence_numbers_total_order_even_with_frozen_clock() {
        let (tracer, collector, _) = traced();
        tracer.event("a", vec![]);
        tracer.event("b", vec![]);
        let records = collector.records();
        assert_eq!((records[0].seq, records[1].seq), (0, 1));
        assert_eq!((records[0].ts_ms, records[1].ts_ms), (0, 0));
    }
}
