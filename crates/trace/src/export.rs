//! Exporters: JSONL, Chrome-trace spans, Prometheus-style metrics text.
//!
//! All three are deterministic functions of their input — same records
//! (or registry snapshot) in, byte-identical text out — which is what
//! makes traces under an [`ei_faults::VirtualClock`] reproducible and
//! diffable in tests.

use crate::json::{escape, Json, JsonObject};
use crate::metrics::MetricValue;
use crate::record::{MetricUpdate, RecordKind, TraceRecord};
use crate::value::Field;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn fields_object(fields: &[Field]) -> Json {
    let mut obj = JsonObject::new();
    for (key, value) in fields {
        obj.push(key, Json::from(value));
    }
    Json::Object(obj)
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::Uint(n),
        None => Json::Null,
    }
}

/// Renders one record as a single-line JSON object.
pub fn record_to_json(record: &TraceRecord) -> String {
    let mut obj = JsonObject::new()
        .field("seq", Json::Uint(record.seq))
        .field("ts_ms", Json::Uint(record.ts_ms));
    match &record.kind {
        RecordKind::SpanStart { id, parent, trace, name, fields } => {
            obj.push("type", Json::Str("span_start".into()));
            obj.push("id", Json::Uint(*id));
            obj.push("parent", opt_u64(*parent));
            obj.push("trace", Json::Uint(*trace));
            obj.push("name", Json::Str(name.clone()));
            obj.push("fields", fields_object(fields));
        }
        RecordKind::SpanEnd { id, name, duration_ms } => {
            obj.push("type", Json::Str("span_end".into()));
            obj.push("id", Json::Uint(*id));
            obj.push("name", Json::Str(name.clone()));
            obj.push("duration_ms", Json::Uint(*duration_ms));
        }
        RecordKind::Event { span, name, fields } => {
            obj.push("type", Json::Str("event".into()));
            obj.push("span", opt_u64(*span));
            obj.push("name", Json::Str(name.clone()));
            obj.push("fields", fields_object(fields));
        }
        RecordKind::Metric { name, update } => {
            obj.push("type", Json::Str("metric".into()));
            obj.push("name", Json::Str(name.clone()));
            match update {
                MetricUpdate::CounterAdd(n) => {
                    obj.push("metric", Json::Str("counter".into()));
                    obj.push("add", Json::Uint(*n));
                }
                MetricUpdate::GaugeSet(v) => {
                    obj.push("metric", Json::Str("gauge".into()));
                    obj.push("set", Json::Float(*v));
                }
                MetricUpdate::HistogramObserve(v) => {
                    obj.push("metric", Json::Str("histogram".into()));
                    obj.push("observe", Json::Float(*v));
                }
            }
        }
    }
    obj.to_json()
}

/// Renders a trace as JSONL: one JSON object per line, in record order.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record_to_json(record));
        out.push('\n');
    }
    out
}

/// Renders a trace as a Chrome-trace (`chrome://tracing` / Perfetto)
/// JSON document. Spans become `B`/`E` duration events, trace events
/// become `i` instant events; logical milliseconds map to microseconds
/// (the format's native unit).
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events = Vec::new();
    for record in records {
        let ts_us = record.ts_ms * 1000;
        let common = |name: &str, ph: &str| {
            JsonObject::new()
                .field("name", Json::Str(name.to_string()))
                .field("ph", Json::Str(ph.to_string()))
                .field("ts", Json::Uint(ts_us))
                .field("pid", Json::Uint(1))
                .field("tid", Json::Uint(1))
        };
        match &record.kind {
            RecordKind::SpanStart { name, fields, .. } => {
                events.push(Json::Object(common(name, "B").field("args", fields_object(fields))));
            }
            RecordKind::SpanEnd { name, .. } => {
                events.push(Json::Object(common(name, "E")));
            }
            RecordKind::Event { name, fields, .. } => {
                events.push(Json::Object(
                    common(name, "i")
                        .field("s", Json::Str("t".into()))
                        .field("args", fields_object(fields)),
                ));
            }
            RecordKind::Metric { .. } => {}
        }
    }
    Json::Object(JsonObject::new().field("traceEvents", Json::Array(events))).to_json()
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Renders a metrics snapshot as a Prometheus-style text exposition.
///
/// Series names are sanitized (`.` and other punctuation become `_`),
/// histogram buckets are emitted cumulatively with `le` labels plus the
/// conventional `_sum`/`_count` series. Output order follows the
/// snapshot's sorted keys, so the exposition is deterministic.
pub fn to_prometheus(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let metric = sanitize(name);
        match value {
            MetricValue::Counter(total) => {
                let _ = writeln!(out, "# TYPE {metric} counter");
                let _ = writeln!(out, "{metric} {total}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {metric} gauge");
                let _ = writeln!(out, "{metric} {v}");
            }
            MetricValue::Histogram { bounds, counts, sum, count, dropped } => {
                let _ = writeln!(out, "# TYPE {metric} histogram");
                let mut cumulative = 0u64;
                for (bound, bucket) in bounds.iter().zip(counts) {
                    cumulative += bucket;
                    let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{metric}_sum {sum}");
                let _ = writeln!(out, "{metric}_count {count}");
                if *dropped > 0 {
                    let _ = writeln!(out, "{metric}_dropped {dropped}");
                }
            }
        }
    }
    out
}

/// Escape helper re-exported for the bench harness's JSON rows.
pub fn json_escape(s: &str) -> String {
    escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                ts_ms: 0,
                kind: RecordKind::SpanStart {
                    id: 1,
                    parent: None,
                    trace: 1,
                    name: "flow".into(),
                    fields: vec![("impulse", Value::Str("kws".into()))],
                },
            },
            TraceRecord {
                seq: 1,
                ts_ms: 3,
                kind: RecordKind::Event {
                    span: Some(1),
                    name: "job.backoff".into(),
                    fields: vec![("delay_ms", Value::Uint(40))],
                },
            },
            TraceRecord {
                seq: 2,
                ts_ms: 9,
                kind: RecordKind::Metric {
                    name: "train.loss".into(),
                    update: MetricUpdate::GaugeSet(0.5),
                },
            },
            TraceRecord {
                seq: 3,
                ts_ms: 12,
                kind: RecordKind::SpanEnd { id: 1, name: "flow".into(), duration_ms: 12 },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ts_ms":0,"type":"span_start","id":1,"parent":null,"trace":1,"name":"flow","fields":{"impulse":"kws"}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ts_ms":3,"type":"event","span":1,"name":"job.backoff","fields":{"delay_ms":40}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"seq":2,"ts_ms":9,"type":"metric","name":"train.loss","metric":"gauge","set":0.5}"#
        );
        assert_eq!(
            lines[3],
            r#"{"seq":3,"ts_ms":12,"type":"span_end","id":1,"name":"flow","duration_ms":12}"#
        );
    }

    #[test]
    fn chrome_trace_pairs_b_and_e_events() {
        let doc = to_chrome_trace(&sample());
        assert!(doc.starts_with(r#"{"traceEvents":["#));
        assert!(doc.contains(r#""ph":"B""#));
        assert!(doc.contains(r#""ph":"E""#));
        assert!(doc.contains(r#""ph":"i""#));
        assert!(doc.contains(r#""ts":12000"#));
        assert!(!doc.contains("train.loss"));
    }

    #[test]
    fn prometheus_exposition_is_sorted_and_cumulative() {
        let mut snapshot = BTreeMap::new();
        snapshot.insert("jobs.dead".to_string(), MetricValue::Counter(2));
        snapshot.insert("train.loss".to_string(), MetricValue::Gauge(0.25));
        snapshot.insert(
            "attempt.ms".to_string(),
            MetricValue::Histogram {
                bounds: vec![1.0, 10.0],
                counts: vec![1, 2, 1],
                sum: 25.5,
                count: 4,
                dropped: 0,
            },
        );
        let text = to_prometheus(&snapshot);
        let expected = "# TYPE attempt_ms histogram\n\
                        attempt_ms_bucket{le=\"1\"} 1\n\
                        attempt_ms_bucket{le=\"10\"} 3\n\
                        attempt_ms_bucket{le=\"+Inf\"} 4\n\
                        attempt_ms_sum 25.5\n\
                        attempt_ms_count 4\n\
                        # TYPE jobs_dead counter\n\
                        jobs_dead 2\n\
                        # TYPE train_loss gauge\n\
                        train_loss 0.25\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_inf_bucket_counts_overflow_observations() {
        // 3 observations above the last bound: finite buckets stay below
        // the +Inf line, and +Inf must equal _count exactly.
        let mut snapshot = BTreeMap::new();
        snapshot.insert(
            "lat.ms".to_string(),
            MetricValue::Histogram {
                bounds: vec![1.0, 10.0],
                counts: vec![1, 0, 3],
                sum: 3001.5,
                count: 4,
                dropped: 0,
            },
        );
        let text = to_prometheus(&snapshot);
        let expected = "# TYPE lat_ms histogram\n\
                        lat_ms_bucket{le=\"1\"} 1\n\
                        lat_ms_bucket{le=\"10\"} 1\n\
                        lat_ms_bucket{le=\"+Inf\"} 4\n\
                        lat_ms_sum 3001.5\n\
                        lat_ms_count 4\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_empty_bounds_histogram_is_inf_only() {
        let mut snapshot = BTreeMap::new();
        snapshot.insert(
            "free.ms".to_string(),
            MetricValue::Histogram {
                bounds: vec![],
                counts: vec![2],
                sum: 7.0,
                count: 2,
                dropped: 1,
            },
        );
        let text = to_prometheus(&snapshot);
        let expected = "# TYPE free_ms histogram\n\
                        free_ms_bucket{le=\"+Inf\"} 2\n\
                        free_ms_sum 7\n\
                        free_ms_count 2\n\
                        free_ms_dropped 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn empty_inputs_render_empty() {
        assert_eq!(to_jsonl(&[]), "");
        assert_eq!(to_prometheus(&BTreeMap::new()), "");
        assert_eq!(to_chrome_trace(&[]), r#"{"traceEvents":[]}"#);
    }
}
