//! The wire-level trace record: everything a [`crate::Subscriber`] sees.

use crate::value::Field;

/// How a metric update changes its series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricUpdate {
    /// Monotonic counter increment.
    CounterAdd(u64),
    /// Gauge set to an instantaneous value.
    GaugeSet(f64),
    /// One observation recorded into a fixed-bucket histogram.
    HistogramObserve(f64),
}

/// The payload of one trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// A span opened.
    SpanStart {
        /// Tracer-unique span id (1-based, monotonically assigned).
        id: u64,
        /// Enclosing span, if any (explicit child, or picked up from the
        /// thread's ambient [`crate::context::TraceContext`]).
        parent: Option<u64>,
        /// The id of this trace's root span — equal to `id` for a root,
        /// inherited from the parent otherwise. Cutting a record stream
        /// on `trace` yields one request's full causal tree.
        trace: u64,
        /// Span name (e.g. `"flow.stage"`).
        name: String,
        /// Structured context captured at open.
        fields: Vec<Field>,
    },
    /// A span closed.
    SpanEnd {
        /// The span id from the matching [`RecordKind::SpanStart`].
        id: u64,
        /// Span name, repeated so the record is self-describing.
        name: String,
        /// Logical milliseconds between open and close.
        duration_ms: u64,
    },
    /// A point-in-time event.
    Event {
        /// Enclosing span, if the event was emitted through a guard.
        span: Option<u64>,
        /// Event name (e.g. `"job.backoff"`).
        name: String,
        /// Structured context.
        fields: Vec<Field>,
    },
    /// A metric series was updated.
    Metric {
        /// Metric name (e.g. `"jobs.dead_lettered"`).
        name: String,
        /// The update applied.
        update: MetricUpdate,
    },
}

/// One record in the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic per-tracer sequence number (total order even when the
    /// logical clock stands still).
    pub seq: u64,
    /// Logical milliseconds from the tracer's clock.
    pub ts_ms: u64,
    /// The payload.
    pub kind: RecordKind,
}

impl TraceRecord {
    /// The record's name (span, event or metric name).
    pub fn name(&self) -> &str {
        match &self.kind {
            RecordKind::SpanStart { name, .. }
            | RecordKind::SpanEnd { name, .. }
            | RecordKind::Event { name, .. }
            | RecordKind::Metric { name, .. } => name,
        }
    }

    /// The record's fields, when it carries any.
    pub fn fields(&self) -> &[Field] {
        match &self.kind {
            RecordKind::SpanStart { fields, .. } | RecordKind::Event { fields, .. } => fields,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn name_and_fields_accessors() {
        let r = TraceRecord {
            seq: 0,
            ts_ms: 5,
            kind: RecordKind::Event {
                span: None,
                name: "job.queued".into(),
                fields: vec![("job", Value::Uint(3))],
            },
        };
        assert_eq!(r.name(), "job.queued");
        assert_eq!(r.fields(), &[("job", Value::Uint(3))]);
        let end = TraceRecord {
            seq: 1,
            ts_ms: 9,
            kind: RecordKind::SpanEnd { id: 1, name: "flow".into(), duration_ms: 4 },
        };
        assert_eq!(end.name(), "flow");
        assert!(end.fields().is_empty());
    }
}
