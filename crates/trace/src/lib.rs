#![warn(missing_docs)]

//! Structured observability for the MLOps pipeline: hierarchical spans,
//! typed events, and a metrics registry behind one cheap [`Subscriber`]
//! trait.
//!
//! The paper's whole evaluation is an observability exercise — per-stage
//! latency decomposition (Fig. 3), per-engine memory reports (Table 4)
//! and on-device performance estimation (§4.5). This crate is the shared
//! substrate those numbers flow through, in the house style of
//! `ei-faults`: dependency-free, std-only, and deterministic under a
//! [`ei_faults::VirtualClock`] because every timestamp is read from an
//! [`ei_faults::Clock`].
//!
//! * [`tracer`] — the cloneable [`Tracer`] handle and RAII [`SpanGuard`].
//!   A disabled tracer ([`Tracer::disabled`]) reduces every operation to
//!   an `Option` check: span guards are no-ops and no metric is recorded.
//! * [`context`] — ambient per-thread [`TraceContext`] propagation, so a
//!   span opened on a worker thread stitches into the submitting
//!   request's causal tree (every span carries its root's `trace` id).
//! * [`subscriber`] — the [`Subscriber`] sink trait and the
//!   [`CollectingSubscriber`] used by tests, benches and the examples.
//! * [`metrics`] — counters, gauges and fixed-bucket histograms,
//!   aggregated in a [`MetricsRegistry`] snapshot.
//! * [`export`] — three exporters: JSONL trace dump, Prometheus-style
//!   text exposition, and a Chrome-trace (`chrome://tracing`) span view.
//! * [`json`] — the tiny hand-rolled JSON writer the exporters (and the
//!   bench harness's machine-readable results) are built on.
//!
//! `ei-platform`'s job scheduler, `ei-core`'s flow runner, `ei-nn`'s
//! trainer and `ei-device`'s profiler all accept a [`Tracer`], so one
//! collecting subscriber observes the whole pipeline end to end.

pub mod context;
pub mod export;
pub mod json;
pub mod metrics;
pub mod record;
pub mod subscriber;
pub mod tracer;
pub mod value;

pub use context::{ContextGuard, TraceContext};
pub use metrics::{MetricValue, MetricsRegistry};
pub use record::{RecordKind, TraceRecord};
pub use subscriber::{CollectingSubscriber, Subscriber};
pub use tracer::{SpanGuard, Tracer};
pub use value::{Field, Value};
