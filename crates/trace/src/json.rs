//! A tiny deterministic JSON writer (std-only, no serde).
//!
//! Field order is insertion order, float formatting is Rust's shortest
//! round-trip form, and non-finite floats serialize as `null` — so the
//! same data always produces byte-identical output. The exporters and the
//! bench harness's machine-readable `results/*.json` files are built on
//! this module.

use crate::value::Value;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A float (`null` when not finite — JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(JsonObject),
}

impl From<&Value> for Json {
    fn from(v: &Value) -> Json {
        match v {
            Value::Bool(b) => Json::Bool(*b),
            Value::Int(i) => Json::Int(*i),
            Value::Uint(u) => Json::Uint(*u),
            Value::Float(f) => Json::Float(*f),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, Json)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Appends a key/value pair (builder style).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> JsonObject {
        self.entries.push((key.to_string(), value));
        self
    }

    /// Appends a key/value pair in place.
    pub fn push(&mut self, key: &str, value: Json) {
        self.entries.push((key.to_string(), value));
    }

    /// Serializes the object.
    pub fn to_json(&self) -> String {
        Json::Object(self.clone()).to_json()
    }
}

/// Escapes a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// Serializes the value to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(obj) => {
                out.push('{');
                for (i, (key, value)) in obj.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let obj = JsonObject::new()
            .field("z", Json::Uint(1))
            .field("a", Json::Str("x".into()))
            .field("flag", Json::Bool(false));
        assert_eq!(obj.to_json(), r#"{"z":1,"a":"x","flag":false}"#);
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_json(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_json(), "null");
        assert_eq!(Json::Float(2.5).to_json(), "2.5");
        assert_eq!(Json::Float(5.0).to_json(), "5");
    }

    #[test]
    fn arrays_and_nesting() {
        let j = Json::Array(vec![
            Json::Null,
            Json::Int(-3),
            Json::Object(JsonObject::new().field("k", Json::Float(0.25))),
        ]);
        assert_eq!(j.to_json(), r#"[null,-3,{"k":0.25}]"#);
    }
}
