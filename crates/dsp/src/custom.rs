//! User-defined processing blocks (paper §4.9 extensibility).
//!
//! The platform lets users "create their own blocks … to transform raw
//! data … [or] perform feature extraction via DSP". In the cloud product
//! those are Docker containers; here the same contract is a process-wide
//! registry of factories: implement [`crate::DspBlock`], register a
//! factory under a name, and [`crate::DspConfig::Custom`] configurations
//! (which serialize like any built-in block) will build it anywhere —
//! impulses, the tuner, deployments.

use crate::block::DspBlock;
use crate::{DspError, Result};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Named parameters passed to a custom block factory.
pub type CustomParams = Vec<(String, f32)>;

/// A factory building a block instance from its parameters.
pub type BlockFactory = Arc<dyn Fn(&CustomParams) -> Result<Box<dyn DspBlock>> + Send + Sync>;

fn registry() -> &'static Mutex<HashMap<String, BlockFactory>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, BlockFactory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers (or replaces) a custom block factory under `name`.
///
/// Registration is process-wide, mirroring how the platform resolves
/// custom blocks by name at build time.
pub fn register_custom_block(name: &str, factory: BlockFactory) {
    registry().lock().expect("custom block registry poisoned").insert(name.to_string(), factory);
}

/// Builds a registered custom block.
///
/// # Errors
///
/// Returns [`DspError::InvalidConfig`] when no factory is registered under
/// `name`, or whatever error the factory reports for bad parameters.
pub fn build_custom_block(name: &str, params: &CustomParams) -> Result<Box<dyn DspBlock>> {
    let factory =
        registry().lock().expect("custom block registry poisoned").get(name).cloned().ok_or_else(
            || DspError::InvalidConfig(format!("no custom block registered under {name:?}")),
        )?;
    factory(params)
}

/// Lists registered custom block names (sorted).
pub fn custom_block_names() -> Vec<String> {
    let mut names: Vec<String> =
        registry().lock().expect("custom block registry poisoned").keys().cloned().collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{DspConfig, DspCost};

    /// A toy user block: per-chunk energy.
    #[derive(Debug, Clone)]
    struct EnergyBlock {
        chunk: usize,
    }

    impl DspBlock for EnergyBlock {
        fn name(&self) -> &str {
            "energy"
        }
        fn output_len(&self, input_len: usize) -> Result<usize> {
            Ok((input_len / self.chunk).max(1))
        }
        fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
            Ok((1, self.output_len(input_len)?, 1))
        }
        fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
            Ok(input
                .chunks(self.chunk)
                .map(|c| c.iter().map(|x| x * x).sum::<f32>() / c.len() as f32)
                .collect())
        }
        fn cost(&self, input_len: usize) -> Result<DspCost> {
            Ok(DspCost {
                flops: input_len as u64 * 2,
                scratch_bytes: 16,
                output_features: self.output_len(input_len)?,
            })
        }
        fn config(&self) -> DspConfig {
            DspConfig::Custom {
                name: "energy".into(),
                params: vec![("chunk".into(), self.chunk as f32)],
            }
        }
    }

    fn register_energy() {
        register_custom_block(
            "energy",
            Arc::new(|params: &CustomParams| {
                let chunk = params
                    .iter()
                    .find(|(k, _)| k == "chunk")
                    .map(|(_, v)| *v as usize)
                    .unwrap_or(0);
                if chunk == 0 {
                    return Err(DspError::InvalidConfig("chunk must be positive".into()));
                }
                Ok(Box::new(EnergyBlock { chunk }) as Box<dyn DspBlock>)
            }),
        );
    }

    #[test]
    fn register_build_and_run() {
        register_energy();
        assert!(custom_block_names().contains(&"energy".to_string()));
        let config =
            DspConfig::Custom { name: "energy".into(), params: vec![("chunk".into(), 4.0)] };
        let block = config.build().unwrap();
        let features = block.process(&[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]).unwrap();
        assert_eq!(features, vec![1.0, 4.0]);
        assert_eq!(config.name(), "Custom");
        assert!(config.summary().contains("energy"));
        // serde round trip: custom configs persist like built-ins
        let json = serde_json::to_string(&config).unwrap();
        let back: DspConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert!(back.build().is_ok());
    }

    #[test]
    fn unknown_and_invalid_custom_blocks_rejected() {
        let missing = DspConfig::Custom { name: "not-registered".into(), params: vec![] };
        assert!(matches!(missing.build(), Err(DspError::InvalidConfig(_))));
        register_energy();
        let bad_params = DspConfig::Custom { name: "energy".into(), params: vec![] };
        assert!(bad_params.build().is_err());
    }
}
