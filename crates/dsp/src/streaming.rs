//! Incremental feature extraction for streaming audio.
//!
//! Batch blocks ([`MfeBlock`], [`MfccBlock`], [`SpectrogramBlock`]) take a
//! whole window of samples and recompute every frame inside it. A live
//! stream classifies *overlapping* windows — a 1 s window every 250 ms
//! shares ~75% of its frames with the previous window — so recomputing
//! each window from scratch wastes most of the FFT work. The
//! [`StreamingExtractor`] instead consumes arbitrarily-chunked samples and
//! emits one feature **column** per complete frame, exactly once; a
//! windower (see `ei-stream`) then assembles overlapping windows by
//! concatenating the shared columns.
//!
//! # Bitwise equivalence to batch
//!
//! The per-frame column math is not reimplemented here: the extractor
//! applies the same [`WindowKind::Hann.coefficients`] taper in the same
//! `sample * coeff` order as [`crate::window::windowed_frames`], then
//! calls the block's own `frame_column` — the very function batch
//! `process` now loops over. Because every audio block's frames depend
//! only on that frame's samples, a column computed incrementally is
//! bit-identical to the one batch recomputation would produce, provided
//! window starts land on frame-stride boundaries. `ei-stream` asserts
//! this with a batch-recompute oracle on every emitted window.
//!
//! [`WindowKind::Hann.coefficients`]: crate::window::WindowKind::coefficients

use crate::block::DspConfig;
use crate::blocks::{MfccBlock, MfeBlock, SpectrogramBlock};
use crate::window::{Framing, WindowKind};
use crate::{DspError, Result};

/// The audio blocks that support incremental column extraction.
#[derive(Debug, Clone)]
enum ColumnBlock {
    Mfe(MfeBlock),
    Mfcc(MfccBlock),
    Spectrogram(SpectrogramBlock),
}

impl ColumnBlock {
    fn column(&self, windowed: &[f32]) -> Result<Vec<f32>> {
        match self {
            ColumnBlock::Mfe(b) => b.frame_column(windowed),
            ColumnBlock::Mfcc(b) => b.frame_column(windowed),
            ColumnBlock::Spectrogram(b) => b.frame_column(windowed),
        }
    }
}

/// Incremental per-frame feature extraction over a sample stream.
///
/// Feed samples in any chunking via [`StreamingExtractor::push`]; each
/// call returns the feature columns of every frame completed by those
/// samples. Memory stays bounded: only the samples of the (at most one)
/// partial frame in progress are retained.
///
/// ```
/// use ei_dsp::streaming::StreamingExtractor;
/// use ei_dsp::{DspBlock, DspConfig, MfeConfig};
///
/// # fn main() -> Result<(), ei_dsp::DspError> {
/// let config = DspConfig::Mfe(MfeConfig { sample_rate_hz: 4_000, ..MfeConfig::default() });
/// let signal: Vec<f32> = (0..400).map(|i| (i as f32 * 0.05).sin()).collect();
///
/// let mut ex = StreamingExtractor::new(&config)?;
/// let mut incremental = Vec::new();
/// for chunk in signal.chunks(37) {
///     for col in ex.push(chunk)? {
///         incremental.extend(col);
///     }
/// }
/// assert_eq!(incremental, config.build()?.process(&signal)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingExtractor {
    block: ColumnBlock,
    framing: Framing,
    coeffs: Vec<f32>,
    features_per_frame: usize,
    /// Samples at absolute positions `buf_base..buf_base + buffer.len()`.
    buffer: Vec<f32>,
    /// Absolute sample index of `buffer[0]`.
    buf_base: u64,
    /// Absolute sample index where the next frame starts.
    next_frame_start: u64,
    samples_in: u64,
    frames_out: u64,
}

impl StreamingExtractor {
    /// Builds an extractor for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for blocks without a frame
    /// structure (spectral, image, raw, custom) — those have no
    /// overlapping-window state to share — and propagates the block's own
    /// construction errors.
    pub fn new(config: &DspConfig) -> Result<StreamingExtractor> {
        let (block, framing, features_per_frame) = match config {
            DspConfig::Mfe(c) => {
                let b = MfeBlock::new(c.clone())?;
                let (f, n) = (b.framing(), b.features_per_frame());
                (ColumnBlock::Mfe(b), f, n)
            }
            DspConfig::Mfcc(c) => {
                let b = MfccBlock::new(c.clone())?;
                let (f, n) = (b.framing(), b.features_per_frame());
                (ColumnBlock::Mfcc(b), f, n)
            }
            DspConfig::Spectrogram(c) => {
                let b = SpectrogramBlock::new(c.clone())?;
                let (f, n) = (b.framing(), b.bins());
                (ColumnBlock::Spectrogram(b), f, n)
            }
            other => {
                return Err(DspError::InvalidConfig(format!(
                    "streaming extraction requires a framed audio block, not {}",
                    other.name()
                )))
            }
        };
        Ok(StreamingExtractor {
            block,
            framing,
            coeffs: WindowKind::Hann.coefficients(framing.frame_len),
            features_per_frame,
            buffer: Vec::with_capacity(framing.frame_len),
            buf_base: 0,
            next_frame_start: 0,
            samples_in: 0,
            frames_out: 0,
        })
    }

    /// The frame layout columns are cut on. Window starts must be multiples
    /// of `framing().stride` for incremental columns to line up with batch
    /// recomputation.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Features in each emitted column.
    pub fn features_per_frame(&self) -> usize {
        self.features_per_frame
    }

    /// Total samples consumed so far.
    pub fn samples_in(&self) -> u64 {
        self.samples_in
    }

    /// Total columns emitted so far (column `k` covers absolute samples
    /// `k * stride .. k * stride + frame_len`).
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }

    /// Consumes one chunk of samples and returns the feature columns of
    /// every frame those samples completed (possibly none, possibly many).
    ///
    /// # Errors
    ///
    /// Propagates block-level failures; the extractor's own bookkeeping
    /// never fails.
    pub fn push(&mut self, samples: &[f32]) -> Result<Vec<Vec<f32>>> {
        self.samples_in += samples.len() as u64;
        self.buffer.extend_from_slice(samples);
        // Discard any prefix before the next frame start (left over when a
        // gap stride skipped past the end of the previous buffer).
        let skip =
            (self.next_frame_start.saturating_sub(self.buf_base) as usize).min(self.buffer.len());
        self.buffer.drain(..skip);
        self.buf_base += skip as u64;

        let frame_len = self.framing.frame_len;
        let stride = self.framing.stride;
        let mut columns = Vec::new();
        while self.buf_base == self.next_frame_start && self.buffer.len() >= frame_len {
            let windowed: Vec<f32> =
                self.buffer[..frame_len].iter().zip(&self.coeffs).map(|(s, w)| s * w).collect();
            columns.push(self.block.column(&windowed)?);
            self.frames_out += 1;
            self.next_frame_start += stride as u64;
            let drop = stride.min(self.buffer.len());
            self.buffer.drain(..drop);
            self.buf_base += drop as u64;
        }
        Ok(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{MfccConfig, MfeConfig, RawConfig, SpectrogramConfig};

    fn signal(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() + 0.2 * (i as f32 * 0.11).cos()).collect()
    }

    fn audio_configs() -> Vec<DspConfig> {
        vec![
            DspConfig::Mfe(MfeConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_filters: 12,
                sample_rate_hz: 4_000,
                low_hz: 0.0,
                high_hz: 0.0,
            }),
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
            DspConfig::Spectrogram(SpectrogramConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                fft_len: 128,
                sample_rate_hz: 4_000,
            }),
        ]
    }

    #[test]
    fn incremental_equals_batch_bitwise_for_every_audio_block() {
        let signal = signal(1_379);
        for config in audio_configs() {
            let block = config.build().unwrap();
            let batch = block.process(&signal).unwrap();
            for chunk_len in [1usize, 7, 64, 128, 500, 2_000] {
                let mut ex = StreamingExtractor::new(&config).unwrap();
                let mut incremental = Vec::new();
                for chunk in signal.chunks(chunk_len) {
                    for col in ex.push(chunk).unwrap() {
                        assert_eq!(col.len(), ex.features_per_frame());
                        incremental.extend(col);
                    }
                }
                // bitwise: f32 equality, not tolerance
                assert_eq!(
                    incremental,
                    batch,
                    "{} with chunk_len {chunk_len} must match batch exactly",
                    config.name()
                );
                assert_eq!(ex.frames_out() as usize * ex.features_per_frame(), batch.len());
            }
        }
    }

    #[test]
    fn gap_strides_skip_unused_samples() {
        // stride 100 > frame 64: frames at 0, 100, 200… with 36-sample gaps
        let config = DspConfig::Spectrogram(SpectrogramConfig {
            frame_s: 0.016,
            stride_s: 0.025,
            fft_len: 64,
            sample_rate_hz: 4_000,
        });
        let signal = signal(731);
        let block = config.build().unwrap();
        let batch = block.process(&signal).unwrap();
        for chunk_len in [3usize, 50, 101, 731] {
            let mut ex = StreamingExtractor::new(&config).unwrap();
            assert!(ex.framing().stride > ex.framing().frame_len, "test needs a gap stride");
            let mut incremental = Vec::new();
            for chunk in signal.chunks(chunk_len) {
                for col in ex.push(chunk).unwrap() {
                    incremental.extend(col);
                }
            }
            assert_eq!(incremental, batch, "gap stride, chunk_len {chunk_len}");
        }
    }

    #[test]
    fn partial_frame_is_held_not_emitted() {
        let config = DspConfig::Mfe(MfeConfig {
            frame_s: 0.032, // 128 samples
            stride_s: 0.016,
            n_filters: 8,
            sample_rate_hz: 4_000,
            low_hz: 0.0,
            high_hz: 0.0,
        });
        let mut ex = StreamingExtractor::new(&config).unwrap();
        assert!(ex.push(&signal(127)).unwrap().is_empty(), "127 < frame_len: nothing yet");
        assert_eq!(ex.push(&signal(1)).unwrap().len(), 1, "128th sample completes the frame");
        assert_eq!(ex.frames_out(), 1);
        assert_eq!(ex.samples_in(), 128);
    }

    #[test]
    fn unframed_blocks_are_rejected() {
        let err = StreamingExtractor::new(&DspConfig::Raw(RawConfig::default())).unwrap_err();
        assert!(matches!(err, DspError::InvalidConfig(_)), "{err:?}");
    }
}
