//! The processing-block abstraction shared by all DSP front-ends.

use crate::blocks::{
    ImageBlock, ImageConfig, MfccBlock, MfccConfig, MfeBlock, MfeConfig, RawBlock, RawConfig,
    SpectralBlock, SpectralConfig, SpectrogramBlock, SpectrogramConfig,
};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Deterministic resource footprint of one invocation of a DSP block.
///
/// `ei-device` converts `flops` to on-target milliseconds using per-board
/// cycle models, and `scratch_bytes` feeds the RAM estimate (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DspCost {
    /// Floating-point (or equivalent fixed-point) operations per invocation.
    pub flops: u64,
    /// Peak scratch RAM in bytes, excluding input and output buffers.
    pub scratch_bytes: usize,
    /// Number of output features produced.
    pub output_features: usize,
}

/// A signal-preprocessing block: raw samples in, feature vector out.
///
/// Implementations must be deterministic — the same input always produces
/// the same features and the same [`DspCost`] — because the platform caches
/// extracted features across training runs.
pub trait DspBlock: Send + Sync {
    /// Short human-readable block name, e.g. `"MFCC"`.
    fn name(&self) -> &str;

    /// Number of features produced for an input of `input_len` samples.
    ///
    /// # Errors
    ///
    /// Fails when no complete frame fits in `input_len`.
    fn output_len(&self, input_len: usize) -> Result<usize>;

    /// Output layout as `(height, width, channels)` for the learn block.
    ///
    /// Audio blocks return `(frames, coefficients, 1)`; image blocks return
    /// the resized image dimensions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DspBlock::output_len`].
    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)>;

    /// Extracts features from `input`.
    ///
    /// # Errors
    ///
    /// Fails when the input is too short or has the wrong length for the
    /// block's configuration.
    fn process(&self, input: &[f32]) -> Result<Vec<f32>>;

    /// Resource footprint for an input of `input_len` samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DspBlock::output_len`].
    fn cost(&self, input_len: usize) -> Result<DspCost>;

    /// The serializable configuration that rebuilds this block.
    fn config(&self) -> DspConfig;
}

/// Serializable configuration covering every built-in processing block.
///
/// This is what projects persist and what the EON Tuner mutates when it
/// searches the DSP side of the design space (paper §4.7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DspConfig {
    /// Mel-filterbank energy block.
    Mfe(MfeConfig),
    /// Mel-frequency cepstral coefficient block.
    Mfcc(MfccConfig),
    /// Linear-frequency log-power spectrogram block.
    Spectrogram(SpectrogramConfig),
    /// Spectral-analysis block for inertial data.
    Spectral(SpectralConfig),
    /// Image resize/normalize block.
    Image(ImageConfig),
    /// Raw pass-through block.
    Raw(RawConfig),
    /// A user-registered block (paper §4.9 extensibility); built through
    /// the [`crate::custom`] registry.
    Custom {
        /// Registered factory name.
        name: String,
        /// Named numeric parameters passed to the factory.
        params: Vec<(String, f32)>,
    },
}

impl DspConfig {
    /// Instantiates the block this configuration describes.
    ///
    /// # Errors
    ///
    /// Fails when any parameter is out of range.
    pub fn build(&self) -> Result<Box<dyn DspBlock>> {
        Ok(match self {
            DspConfig::Mfe(c) => Box::new(MfeBlock::new(c.clone())?),
            DspConfig::Mfcc(c) => Box::new(MfccBlock::new(c.clone())?),
            DspConfig::Spectrogram(c) => Box::new(SpectrogramBlock::new(c.clone())?),
            DspConfig::Spectral(c) => Box::new(SpectralBlock::new(c.clone())?),
            DspConfig::Image(c) => Box::new(ImageBlock::new(c.clone())?),
            DspConfig::Raw(c) => Box::new(RawBlock::new(c.clone())),
            DspConfig::Custom { name, params } => crate::custom::build_custom_block(name, params)?,
        })
    }

    /// Short name matching [`DspBlock::name`].
    pub fn name(&self) -> &'static str {
        match self {
            DspConfig::Mfe(_) => "MFE",
            DspConfig::Mfcc(_) => "MFCC",
            DspConfig::Spectrogram(_) => "Spectrogram",
            DspConfig::Spectral(_) => "Spectral",
            DspConfig::Image(_) => "Image",
            DspConfig::Raw(_) => "Raw",
            DspConfig::Custom { .. } => "Custom",
        }
    }

    /// Compact parameter summary in the paper's Table 3 notation, e.g.
    /// `"MFCC (0.02, 0.01, 40)"`.
    pub fn summary(&self) -> String {
        match self {
            DspConfig::Mfe(c) => {
                format!("MFE ({}, {}, {})", c.frame_s, c.stride_s, c.n_filters)
            }
            DspConfig::Mfcc(c) => {
                format!("MFCC ({}, {}, {})", c.frame_s, c.stride_s, c.n_coefficients)
            }
            DspConfig::Spectrogram(c) => {
                format!("Spectrogram ({}, {}, {})", c.frame_s, c.stride_s, c.fft_len)
            }
            DspConfig::Spectral(c) => format!("Spectral ({} axes)", c.axes),
            DspConfig::Image(c) => {
                format!("Image ({}x{}x{})", c.out_width, c.out_height, c.out_channels)
            }
            DspConfig::Raw(_) => "Raw".to_string(),
            DspConfig::Custom { name, params } => {
                format!("Custom ({name}, {} params)", params.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_every_variant() {
        let configs = vec![
            DspConfig::Mfe(MfeConfig::default()),
            DspConfig::Mfcc(MfccConfig::default()),
            DspConfig::Spectrogram(SpectrogramConfig::default()),
            DspConfig::Spectral(SpectralConfig::default()),
            DspConfig::Image(ImageConfig::default()),
            DspConfig::Raw(RawConfig::default()),
        ];
        for cfg in configs {
            let block = cfg.build().unwrap();
            assert_eq!(block.config().name(), cfg.name());
        }
    }

    #[test]
    fn summary_uses_table3_notation() {
        let cfg = DspConfig::Mfcc(MfccConfig { n_coefficients: 40, ..MfccConfig::default() });
        assert_eq!(cfg.summary(), "MFCC (0.02, 0.01, 40)");
    }
}
