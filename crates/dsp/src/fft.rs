//! Radix-2 iterative FFT and spectra.
//!
//! A from-scratch, allocation-light implementation sized for TinyML frame
//! lengths (`n <= 4096`). Only what the feature blocks need is exposed:
//! forward complex FFT, real-input convenience wrapper, and power /
//! magnitude spectra.

use crate::{DspError, Result};

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f32, im: f32) -> Complex {
        Complex { re, im }
    }

    /// Squared magnitude `re^2 + im^2`.
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] unless `buf.len()` is a
/// power of two (length 1 is accepted as a no-op).
pub fn fft_in_place(buf: &mut [Complex]) -> Result<()> {
    let n = buf.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(DspError::FftLengthNotPowerOfTwo(n));
    }
    if n == 1 {
        return Ok(());
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // butterflies
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos() as f32, ang.sin() as f32);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real signal, zero-padded to `fft_len`.
///
/// Returns the first `fft_len / 2 + 1` bins (the rest are conjugate
/// mirrors for real input).
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] for invalid `fft_len`, or
/// [`DspError::InputLengthMismatch`] when the signal is longer than
/// `fft_len`.
pub fn rfft(signal: &[f32], fft_len: usize) -> Result<Vec<Complex>> {
    if !fft_len.is_power_of_two() || fft_len == 0 {
        return Err(DspError::FftLengthNotPowerOfTwo(fft_len));
    }
    if signal.len() > fft_len {
        return Err(DspError::InputLengthMismatch { expected: fft_len, actual: signal.len() });
    }
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    buf.resize(fft_len, Complex::default());
    fft_in_place(&mut buf)?;
    buf.truncate(fft_len / 2 + 1);
    Ok(buf)
}

/// Power spectrum `|X_k|^2 / n` of a real signal.
///
/// # Errors
///
/// Propagates the errors of [`rfft`].
pub fn power_spectrum(signal: &[f32], fft_len: usize) -> Result<Vec<f32>> {
    let spec = rfft(signal, fft_len)?;
    let scale = 1.0 / fft_len as f32;
    Ok(spec.iter().map(|c| c.norm_sq() * scale).collect())
}

/// Magnitude spectrum `|X_k|` of a real signal.
///
/// # Errors
///
/// Propagates the errors of [`rfft`].
pub fn magnitude_spectrum(signal: &[f32], fft_len: usize) -> Result<Vec<f32>> {
    let spec = rfft(signal, fft_len)?;
    Ok(spec.iter().map(|c| c.abs()).collect())
}

/// Smallest power of two `>= n`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// Approximate floating-point operation count of one radix-2 FFT of length
/// `n` (used by the device cost model): `5 n log2 n` real ops.
pub fn fft_flops(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n as u64 * (n as f64).log2().round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dft_reference(signal: &[f32]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (t, &x) in signal.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc = acc + Complex::new(x * ang.cos() as f32, x * ang.sin() as f32);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 12];
        assert!(fft_in_place(&mut buf).is_err());
        assert!(rfft(&[0.0; 4], 12).is_err());
        assert!(rfft(&[0.0; 20], 16).is_err());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0f32; 64];
        signal[0] = 1.0;
        let spec = rfft(&signal, 64).unwrap();
        for c in &spec {
            assert!((c.re - 1.0).abs() < 1e-4);
            assert!(c.im.abs() < 1e-4);
        }
    }

    #[test]
    fn single_tone_peaks_at_right_bin() {
        let n = 256;
        let bin = 10;
        let signal: Vec<f32> = (0..n)
            .map(|t| (2.0 * std::f32::consts::PI * bin as f32 * t as f32 / n as f32).sin())
            .collect();
        let power = power_spectrum(&signal, n).unwrap();
        let peak = power.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak, bin);
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<f32> = (0..32).map(|i| ((i * 7 + 3) % 13) as f32 - 6.0).collect();
        let fast = rfft(&signal, 32).unwrap();
        let slow = dft_reference(&signal);
        for (f, s) in fast.iter().zip(&slow[..17]) {
            assert!((f.re - s.re).abs() < 1e-3, "re {} vs {}", f.re, s.re);
            assert!((f.im - s.im).abs() < 1e-3, "im {} vs {}", f.im, s.im);
        }
    }

    #[test]
    fn zero_padding_allowed() {
        let spec = rfft(&[1.0, 2.0, 3.0], 8).unwrap();
        assert_eq!(spec.len(), 5);
    }

    #[test]
    fn fft_flops_monotone() {
        assert_eq!(fft_flops(1), 0);
        assert!(fft_flops(512) > fft_flops(256));
        assert_eq!(fft_flops(256), 5 * 256 * 8);
    }

    proptest! {
        #[test]
        fn prop_parseval(signal in proptest::collection::vec(-1.0f32..1.0, 64)) {
            // sum(x^2) == (1/n) * sum(|X|^2) over the full symmetric spectrum
            let n = 64usize;
            let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
            fft_in_place(&mut buf).unwrap();
            let time_energy: f32 = signal.iter().map(|x| x * x).sum();
            let freq_energy: f32 = buf.iter().map(|c| c.norm_sq()).sum::<f32>() / n as f32;
            prop_assert!((time_energy - freq_energy).abs() < 1e-2 * time_energy.max(1.0));
        }

        #[test]
        fn prop_linearity(
            a in proptest::collection::vec(-1.0f32..1.0, 32),
            b in proptest::collection::vec(-1.0f32..1.0, 32),
        ) {
            let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = rfft(&a, 32).unwrap();
            let fb = rfft(&b, 32).unwrap();
            let fs = rfft(&sum, 32).unwrap();
            for i in 0..fs.len() {
                prop_assert!((fs[i].re - (fa[i].re + fb[i].re)).abs() < 1e-3);
                prop_assert!((fs[i].im - (fa[i].im + fb[i].im)).abs() < 1e-3);
            }
        }
    }
}
