//! Mel scale, triangular filterbanks and the DCT-II used by MFCC.

use crate::{DspError, Result};

/// Converts frequency in hertz to mels (HTK convention).
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels back to hertz (HTK convention).
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular Mel filters over FFT power-spectrum bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// `filters[f][bin]` — weight of power bin `bin` in filter `f`.
    filters: Vec<Vec<f32>>,
    n_bins: usize,
}

impl MelFilterbank {
    /// Builds `n_filters` triangular filters spanning `[low_hz, high_hz]`
    /// over a power spectrum of `n_bins = fft_len / 2 + 1` bins at
    /// `sample_rate_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] when the frequency range is
    /// inverted, exceeds Nyquist, or there are too many filters for the
    /// number of bins.
    pub fn new(
        n_filters: usize,
        fft_len: usize,
        sample_rate_hz: u32,
        low_hz: f32,
        high_hz: f32,
    ) -> Result<MelFilterbank> {
        let nyquist = sample_rate_hz as f32 / 2.0;
        if n_filters == 0 {
            return Err(DspError::InvalidConfig("need at least one mel filter".into()));
        }
        if low_hz < 0.0 || high_hz <= low_hz || high_hz > nyquist + 1.0 {
            return Err(DspError::InvalidConfig(format!(
                "mel range [{low_hz}, {high_hz}] invalid for nyquist {nyquist}"
            )));
        }
        let n_bins = fft_len / 2 + 1;
        if n_filters + 2 > n_bins {
            return Err(DspError::InvalidConfig(format!(
                "{n_filters} filters need more than {n_bins} spectrum bins"
            )));
        }
        // n_filters + 2 equally spaced points on the mel scale
        let mel_lo = hz_to_mel(low_hz);
        let mel_hi = hz_to_mel(high_hz);
        let points: Vec<f32> = (0..n_filters + 2)
            .map(|i| {
                let mel = mel_lo + (mel_hi - mel_lo) * i as f32 / (n_filters + 1) as f32;
                mel_to_hz(mel)
            })
            .collect();
        let hz_per_bin = sample_rate_hz as f32 / fft_len as f32;
        let mut filters = Vec::with_capacity(n_filters);
        for f in 0..n_filters {
            let (lo, center, hi) = (points[f], points[f + 1], points[f + 2]);
            let mut weights = vec![0.0f32; n_bins];
            for (bin, w) in weights.iter_mut().enumerate() {
                let hz = bin as f32 * hz_per_bin;
                if hz > lo && hz < hi {
                    *w = if hz <= center {
                        (hz - lo) / (center - lo).max(f32::EPSILON)
                    } else {
                        (hi - hz) / (hi - center).max(f32::EPSILON)
                    };
                }
            }
            filters.push(weights);
        }
        Ok(MelFilterbank { filters, n_bins })
    }

    /// Number of filters in the bank.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when the bank holds no filters (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Applies the bank to a power spectrum, producing one energy per filter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputLengthMismatch`] if `power.len()` differs
    /// from the bin count the bank was built for.
    pub fn apply(&self, power: &[f32]) -> Result<Vec<f32>> {
        if power.len() != self.n_bins {
            return Err(DspError::InputLengthMismatch {
                expected: self.n_bins,
                actual: power.len(),
            });
        }
        Ok(self.filters.iter().map(|w| w.iter().zip(power).map(|(a, b)| a * b).sum()).collect())
    }

    /// Approximate multiply–accumulate count of one [`MelFilterbank::apply`].
    pub fn macs(&self) -> u64 {
        // triangular filters touch ~2 * n_bins / n_filters bins each
        (self.filters.len() as u64)
            * (2 * self.n_bins as u64 / self.filters.len().max(1) as u64 + 1)
    }
}

/// Type-II discrete cosine transform with orthonormal scaling, returning
/// the first `n_out` coefficients.
///
/// # Panics
///
/// Panics (debug assertion) if `n_out > input.len()`.
pub fn dct2(input: &[f32], n_out: usize) -> Vec<f32> {
    debug_assert!(n_out <= input.len());
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let norm0 = (1.0 / n as f32).sqrt();
    let norm = (2.0 / n as f32).sqrt();
    (0..n_out)
        .map(|k| {
            let sum: f32 = input
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    x * (std::f32::consts::PI * (i as f32 + 0.5) * k as f32 / n as f32).cos()
                })
                .sum();
            sum * if k == 0 { norm0 } else { norm }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mel_round_trip() {
        for hz in [0.0f32, 100.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
    }

    #[test]
    fn mel_is_monotone() {
        let mut prev = -1.0;
        for hz in (0..8000).step_by(250) {
            let m = hz_to_mel(hz as f32);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn filterbank_shape_and_coverage() {
        let fb = MelFilterbank::new(40, 512, 16_000, 0.0, 8000.0).unwrap();
        assert_eq!(fb.len(), 40);
        // middle filters have non-zero weight somewhere
        let power = vec![1.0f32; 257];
        let energies = fb.apply(&power).unwrap();
        assert!(energies.iter().skip(1).all(|&e| e > 0.0), "every filter should capture energy");
    }

    #[test]
    fn filterbank_rejects_bad_config() {
        assert!(MelFilterbank::new(0, 512, 16_000, 0.0, 8000.0).is_err());
        assert!(MelFilterbank::new(40, 512, 16_000, 4000.0, 1000.0).is_err());
        assert!(MelFilterbank::new(40, 512, 16_000, 0.0, 20_000.0).is_err());
        assert!(MelFilterbank::new(300, 512, 16_000, 0.0, 8000.0).is_err());
    }

    #[test]
    fn filterbank_apply_validates_len() {
        let fb = MelFilterbank::new(10, 256, 16_000, 0.0, 8000.0).unwrap();
        assert!(fb.apply(&vec![0.0; 100]).is_err());
    }

    #[test]
    fn tone_lands_in_matching_filter() {
        let fb = MelFilterbank::new(20, 512, 16_000, 0.0, 8000.0).unwrap();
        // concentrate power near 1 kHz -> bin 32 at 31.25 Hz/bin
        let mut power = vec![0.0f32; 257];
        power[32] = 10.0;
        let energies = fb.apply(&power).unwrap();
        let peak =
            energies.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        // 1 kHz = mel 999.9; filters span 0..2840 mel, so peak should sit in
        // the lower-middle third of the bank
        assert!((3..10).contains(&peak), "peak filter {peak}");
    }

    #[test]
    fn dct2_of_constant_concentrates_in_dc() {
        let coeffs = dct2(&[1.0; 16], 16);
        assert!((coeffs[0] - 4.0).abs() < 1e-4); // sqrt(16) * 1
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-4);
        }
    }

    #[test]
    fn dct2_empty_input() {
        assert!(dct2(&[], 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_dct2_linear(a in proptest::collection::vec(-2.0f32..2.0, 16)) {
            let doubled: Vec<f32> = a.iter().map(|x| 2.0 * x).collect();
            let ca = dct2(&a, 8);
            let cd = dct2(&doubled, 8);
            for (x, y) in ca.iter().zip(&cd) {
                prop_assert!((2.0 * x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_filterbank_energy_nonnegative(
            power in proptest::collection::vec(0.0f32..10.0, 129)
        ) {
            let fb = MelFilterbank::new(13, 256, 16_000, 20.0, 8000.0).unwrap();
            let e = fb.apply(&power).unwrap();
            prop_assert!(e.iter().all(|&x| x >= 0.0));
        }
    }
}
