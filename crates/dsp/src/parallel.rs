//! Dataset-wide parallel feature extraction.
//!
//! [`DspBlock`]s are deterministic and `Send + Sync`, so running one
//! block over many windows is embarrassingly parallel. The helpers here
//! fan windows out over an [`ei_par::ParPool`] and land every feature
//! vector by window index, so the output — including which error wins
//! when several windows are bad — is bitwise-identical to the serial
//! loop at any thread count.

use crate::block::DspBlock;
use crate::error::DspError;
use crate::Result;
use ei_par::ParPool;

/// Extracts features for every window through `block` on `pool`.
///
/// Each window is length-checked against `window_samples` and processed
/// in one task, exactly mirroring the serial check-then-process loop:
/// the *lowest-index* failure is returned, whether it is a length
/// mismatch or a processing error.
///
/// # Errors
///
/// Returns [`DspError::InputLengthMismatch`] for the first wrong-length
/// window, or the block's own error for the first failing window.
pub fn process_windows(
    pool: &ParPool,
    block: &dyn DspBlock,
    window_samples: usize,
    windows: &[Vec<f32>],
) -> Result<Vec<Vec<f32>>> {
    pool.par_map_result(windows, |window| {
        if window.len() != window_samples {
            return Err(DspError::InputLengthMismatch {
                expected: window_samples,
                actual: window.len(),
            });
        }
        block.process(window)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{MfeBlock, MfeConfig};
    use ei_par::Parallelism;

    fn mfe() -> MfeBlock {
        MfeBlock::new(MfeConfig {
            frame_s: 0.032,
            stride_s: 0.016,
            n_filters: 12,
            sample_rate_hz: 4_000,
            low_hz: 0.0,
            high_hz: 0.0,
        })
        .expect("valid config")
    }

    fn windows(count: usize, len: usize) -> Vec<Vec<f32>> {
        (0..count).map(|w| (0..len).map(|i| ((w * 31 + i) as f32 * 0.01).sin()).collect()).collect()
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let block = mfe();
        let data = windows(24, 1_000);
        let serial: Vec<Vec<f32>> = data.iter().map(|w| block.process(w).unwrap()).collect();
        for threads in [1, 4] {
            let pool = ParPool::new(Parallelism::new(threads));
            let parallel = process_windows(&pool, &block, 1_000, &data).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn lowest_index_length_mismatch_wins() {
        let block = mfe();
        let mut data = windows(16, 1_000);
        data[3] = vec![0.0; 10];
        data[9] = vec![0.0; 10];
        let pool = ParPool::new(Parallelism::new(4));
        let err = process_windows(&pool, &block, 1_000, &data).unwrap_err();
        assert!(
            matches!(err, DspError::InputLengthMismatch { expected: 1_000, actual: 10 }),
            "got {err:?}"
        );
    }
}
