//! Error type for DSP block configuration and processing.

use std::fmt;

/// Errors produced by DSP block construction and signal processing.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// A configuration parameter was out of range.
    InvalidConfig(String),
    /// The input signal was too short for the configured framing.
    InputTooShort {
        /// Samples required for at least one frame.
        required: usize,
        /// Samples provided.
        actual: usize,
    },
    /// The input length did not match what the block expects (images).
    InputLengthMismatch {
        /// Expected sample count.
        expected: usize,
        /// Provided sample count.
        actual: usize,
    },
    /// An FFT was requested with a non-power-of-two length.
    FftLengthNotPowerOfTwo(usize),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidConfig(msg) => write!(f, "invalid dsp config: {msg}"),
            DspError::InputTooShort { required, actual } => {
                write!(f, "input too short: need at least {required} samples, got {actual}")
            }
            DspError::InputLengthMismatch { expected, actual } => {
                write!(f, "input length mismatch: expected {expected} samples, got {actual}")
            }
            DspError::FftLengthNotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DspError::InvalidConfig("x".into()).to_string().contains("invalid dsp config"));
        assert!(DspError::FftLengthNotPowerOfTwo(100).to_string().contains("100"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<DspError>();
    }
}
