//! Window functions and frame extraction.
//!
//! Audio blocks operate frame-by-frame: the signal is cut into overlapping
//! windows (`frame_length` seconds every `frame_stride` seconds — the
//! hyperparameters users sweep in the Studio and the EON Tuner, paper
//! Table 3), each multiplied by a taper before the FFT.

use crate::{DspError, Result};

/// Taper applied to each frame before the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// No taper (all ones).
    Rectangular,
    /// Hann window — the default for speech features.
    Hann,
    /// Hamming window.
    Hamming,
}

impl WindowKind {
    /// Generates the window coefficients for `len` samples.
    pub fn coefficients(self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let n = (len - 1) as f32;
        (0..len)
            .map(|i| {
                let x = i as f32 / n;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f32::consts::PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f32::consts::PI * x).cos(),
                }
            })
            .collect()
    }
}

/// Frame layout over a 1-D signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Framing {
    /// Samples per frame.
    pub frame_len: usize,
    /// Samples between successive frame starts.
    pub stride: usize,
}

impl Framing {
    /// Creates a framing from lengths in samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] if either length is zero or the
    /// stride exceeds the frame length by more than the frame itself (gaps
    /// are allowed, zero-length frames are not).
    pub fn new(frame_len: usize, stride: usize) -> Result<Framing> {
        if frame_len == 0 {
            return Err(DspError::InvalidConfig("frame length must be non-zero".into()));
        }
        if stride == 0 {
            return Err(DspError::InvalidConfig("frame stride must be non-zero".into()));
        }
        Ok(Framing { frame_len, stride })
    }

    /// Creates a framing from durations in seconds at `sample_rate_hz`.
    ///
    /// This matches how the platform exposes the parameters (e.g.
    /// `MFCC (0.02, 0.01, 40)` in paper Table 3 means 20 ms frames every
    /// 10 ms with 40 coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] when the durations round to zero
    /// samples.
    pub fn from_seconds(frame_s: f32, stride_s: f32, sample_rate_hz: u32) -> Result<Framing> {
        let frame_len = (frame_s * sample_rate_hz as f32).round() as usize;
        let stride = (stride_s * sample_rate_hz as f32).round() as usize;
        Framing::new(frame_len, stride)
    }

    /// Number of complete frames obtainable from `signal_len` samples.
    pub fn frame_count(&self, signal_len: usize) -> usize {
        if signal_len < self.frame_len {
            0
        } else {
            (signal_len - self.frame_len) / self.stride + 1
        }
    }

    /// Iterates over frame start offsets.
    pub fn offsets(&self, signal_len: usize) -> impl Iterator<Item = usize> + '_ {
        let count = self.frame_count(signal_len);
        (0..count).map(move |i| i * self.stride)
    }
}

/// Splits `signal` into windowed frames.
///
/// Each returned frame has `framing.frame_len` samples multiplied by the
/// window coefficients.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] when not even one frame fits.
pub fn windowed_frames(
    signal: &[f32],
    framing: Framing,
    window: WindowKind,
) -> Result<Vec<Vec<f32>>> {
    if framing.frame_count(signal.len()) == 0 {
        return Err(DspError::InputTooShort { required: framing.frame_len, actual: signal.len() });
    }
    let coeffs = window.coefficients(framing.frame_len);
    Ok(framing
        .offsets(signal.len())
        .map(|start| {
            signal[start..start + framing.frame_len]
                .iter()
                .zip(&coeffs)
                .map(|(s, w)| s * w)
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_endpoints() {
        let hann = WindowKind::Hann.coefficients(8);
        assert!(hann[0].abs() < 1e-6);
        assert!(hann[7].abs() < 1e-6);
        let ham = WindowKind::Hamming.coefficients(8);
        assert!((ham[0] - 0.08).abs() < 1e-6);
        let rect = WindowKind::Rectangular.coefficients(4);
        assert_eq!(rect, vec![1.0; 4]);
    }

    #[test]
    fn window_degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn hann_is_symmetric_and_peaks_center() {
        let w = WindowKind::Hann.coefficients(64);
        for i in 0..32 {
            assert!((w[i] - w[63 - i]).abs() < 1e-6);
        }
        let peak = w.iter().cloned().fold(0.0f32, f32::max);
        assert!((peak - 1.0).abs() < 1e-3);
    }

    #[test]
    fn framing_counts() {
        let f = Framing::new(400, 160).unwrap();
        // 1 s at 16 kHz with 25 ms frames / 10 ms stride -> 98 frames
        assert_eq!(f.frame_count(16_000), 98);
        assert_eq!(f.frame_count(399), 0);
        assert_eq!(f.frame_count(400), 1);
    }

    #[test]
    fn framing_from_seconds() {
        let f = Framing::from_seconds(0.02, 0.01, 16_000).unwrap();
        assert_eq!(f.frame_len, 320);
        assert_eq!(f.stride, 160);
        assert!(Framing::from_seconds(0.00001, 0.01, 16_000).is_err());
    }

    #[test]
    fn framing_rejects_zero() {
        assert!(Framing::new(0, 1).is_err());
        assert!(Framing::new(1, 0).is_err());
    }

    #[test]
    fn windowed_frames_shape() {
        let signal: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let frames =
            windowed_frames(&signal, Framing::new(20, 10).unwrap(), WindowKind::Rectangular)
                .unwrap();
        assert_eq!(frames.len(), 9);
        assert!(frames.iter().all(|f| f.len() == 20));
        // rectangular window: frame content equals signal slice
        assert_eq!(frames[1][0], 10.0);
    }

    #[test]
    fn windowed_frames_too_short() {
        let err =
            windowed_frames(&[0.0; 5], Framing::new(10, 5).unwrap(), WindowKind::Hann).unwrap_err();
        assert_eq!(err, DspError::InputTooShort { required: 10, actual: 5 });
    }

    // The streaming windower leans on these exact edge behaviors: a window
    // longer than the signal yields zero frames (never a short frame), a
    // negative-overlap stride leaves gaps, and trailing samples that don't
    // fill a frame are dropped, not padded.

    #[test]
    fn window_longer_than_signal_yields_zero_frames() {
        let f = Framing::new(256, 64).unwrap();
        assert_eq!(f.frame_count(255), 0);
        assert_eq!(f.offsets(255).count(), 0);
        let err = windowed_frames(&vec![1.0; 255], f, WindowKind::Rectangular).unwrap_err();
        assert_eq!(err, DspError::InputTooShort { required: 256, actual: 255 });
        // exactly one frame fits once the signal reaches the frame length
        assert_eq!(f.frame_count(256), 1);
    }

    #[test]
    fn negative_overlap_stride_leaves_gaps() {
        // stride 25 > frame 10: frames at 0, 25, 50, 75 with 15-sample gaps
        let f = Framing::new(10, 25).unwrap();
        let signal: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(f.offsets(signal.len()).collect::<Vec<_>>(), vec![0, 25, 50, 75]);
        let frames = windowed_frames(&signal, f, WindowKind::Rectangular).unwrap();
        assert_eq!(frames.len(), 4);
        // each frame starts at its offset; the gap samples appear in none
        for (frame, start) in frames.iter().zip([0usize, 25, 50, 75]) {
            assert_eq!(frame[0], start as f32);
            assert_eq!(frame[9], (start + 9) as f32);
        }
        // zero overlap (stride == frame) tiles the signal exactly
        let tiled = Framing::new(10, 10).unwrap();
        assert_eq!(tiled.frame_count(100), 10);
    }

    #[test]
    fn last_partial_window_is_dropped() {
        // 95 samples, frame 20, stride 15: last full frame starts at 75
        // (75 + 20 = 95); a hypothetical frame at 90 would need 110 samples
        let f = Framing::new(20, 15).unwrap();
        assert_eq!(f.frame_count(95), 6);
        assert_eq!(f.frame_count(109), 6, "14 trailing samples never yield a short frame");
        assert_eq!(f.frame_count(110), 7, "the 110th sample completes the next frame");
        let signal: Vec<f32> = (0..109).map(|i| i as f32).collect();
        let frames = windowed_frames(&signal, f, WindowKind::Rectangular).unwrap();
        assert_eq!(frames.len(), 6);
        assert!(frames.iter().all(|fr| fr.len() == 20), "frames are never padded or truncated");
        assert_eq!(frames[5][19], 94.0, "last emitted sample is 75 + 19");
    }

    proptest! {
        #[test]
        fn prop_frame_count_consistent_with_offsets(
            signal_len in 1usize..5000, frame in 1usize..400, stride in 1usize..400
        ) {
            let f = Framing::new(frame, stride).unwrap();
            let offsets: Vec<usize> = f.offsets(signal_len).collect();
            prop_assert_eq!(offsets.len(), f.frame_count(signal_len));
            for &o in &offsets {
                prop_assert!(o + frame <= signal_len);
            }
        }

        #[test]
        fn prop_window_coeffs_bounded(len in 1usize..512) {
            for kind in [WindowKind::Rectangular, WindowKind::Hann, WindowKind::Hamming] {
                let w = kind.coefficients(len);
                prop_assert!(w.iter().all(|&x| (-1e-6..=1.0 + 1e-6).contains(&x)));
            }
        }
    }
}
