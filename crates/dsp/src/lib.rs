#![warn(missing_docs)]

//! Digital signal processing blocks for the `edgelab` TinyML pipeline.
//!
//! Preprocessing is a first-class pipeline stage in Edge Impulse (paper
//! §4.2): an FFT extracts frequency content in `O(n log n)` where a learned
//! 1-D convolution stack would spend `O(n^2)`, so a good DSP front-end
//! shrinks the downstream model. This crate implements the platform's
//! "processing blocks":
//!
//! * [`blocks::MfeBlock`] — Mel-filterbank energies (audio),
//! * [`blocks::MfccBlock`] — Mel-frequency cepstral coefficients (audio),
//! * [`blocks::SpectralBlock`] — spectral analysis (accelerometer/vibration),
//! * [`blocks::ImageBlock`] — image resize/normalize,
//! * [`blocks::RawBlock`] — pass-through with optional scaling,
//!
//! all behind the [`DspBlock`] trait, which also reports a deterministic
//! operation count and peak scratch RAM so `ei-device` can estimate on-target
//! latency and memory (paper §4.4, Tables 2–3).
//!
//! # Example
//!
//! ```
//! use ei_dsp::{DspBlock, blocks::MfccBlock, MfccConfig};
//!
//! # fn main() -> Result<(), ei_dsp::DspError> {
//! let block = MfccBlock::new(MfccConfig::default())?;
//! let audio = vec![0.0f32; 16_000]; // one second at 16 kHz
//! let features = block.process(&audio)?;
//! assert_eq!(features.len(), block.output_len(audio.len())?);
//! # Ok(())
//! # }
//! ```

pub mod autotune;
pub mod block;
pub mod blocks;
pub mod custom;
pub mod error;
pub mod fft;
pub mod mel;
pub mod parallel;
pub mod streaming;
pub mod window;

pub use autotune::{autotune_audio, AutotuneGoal};
pub use block::{DspBlock, DspConfig, DspCost};
pub use blocks::{
    ImageConfig, MfccConfig, MfeConfig, RawConfig, SpectralConfig, SpectrogramConfig,
};
pub use custom::{register_custom_block, BlockFactory, CustomParams};
pub use error::DspError;
pub use streaming::StreamingExtractor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DspError>;
