//! DSP autotune: suggest sensible block parameters from the data itself.
//!
//! The platform "offers sensible defaults … users can automatically select
//! these hyperparameters via the DSP autotune feature" (paper §4.2). This
//! module inspects a handful of representative samples and picks framing /
//! filter-count parameters that keep the feature tensor small while
//! retaining the signal's bandwidth.

use crate::blocks::{MfccConfig, MfeConfig};
use crate::fft::power_spectrum;
use crate::{DspConfig, DspError, Result};

/// What the autotuner should optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutotuneGoal {
    /// Smallest feature tensor that keeps 95% of spectral energy.
    LowMemory,
    /// Denser features for maximum downstream accuracy.
    HighResolution,
}

/// Suggests an audio DSP configuration from representative samples.
///
/// Estimates the occupied bandwidth by finding the frequency below which
/// 95% of the average power lies, then picks frame length / stride /
/// filter counts accordingly.
///
/// # Errors
///
/// Returns [`DspError::InvalidConfig`] when `samples` is empty or shorter
/// than one analysis window.
///
/// # Example
///
/// ```
/// use ei_dsp::{autotune_audio, AutotuneGoal};
///
/// # fn main() -> Result<(), ei_dsp::DspError> {
/// let audio: Vec<f32> = (0..16_000)
///     .map(|t| (2.0 * std::f32::consts::PI * 500.0 * t as f32 / 16_000.0).sin())
///     .collect();
/// let cfg = autotune_audio(&[&audio], 16_000, AutotuneGoal::LowMemory)?;
/// assert_eq!(cfg.name(), "MFCC");
/// # Ok(())
/// # }
/// ```
pub fn autotune_audio(
    samples: &[&[f32]],
    sample_rate_hz: u32,
    goal: AutotuneGoal,
) -> Result<DspConfig> {
    const ANALYSIS_FFT: usize = 1024;
    if samples.is_empty() {
        return Err(DspError::InvalidConfig("autotune needs at least one sample".into()));
    }
    let mut avg_power = vec![0.0f64; ANALYSIS_FFT / 2 + 1];
    let mut used = 0usize;
    for s in samples {
        if s.len() < ANALYSIS_FFT {
            continue;
        }
        // average power over a few windows spread through the sample
        let step = ((s.len() - ANALYSIS_FFT) / 4).max(1);
        for start in (0..=s.len() - ANALYSIS_FFT).step_by(step).take(5) {
            let p = power_spectrum(&s[start..start + ANALYSIS_FFT], ANALYSIS_FFT)?;
            for (acc, v) in avg_power.iter_mut().zip(&p) {
                *acc += *v as f64;
            }
            used += 1;
        }
    }
    if used == 0 {
        return Err(DspError::InvalidConfig(format!(
            "autotune needs samples of at least {ANALYSIS_FFT} points"
        )));
    }
    let total: f64 = avg_power.iter().sum();
    let mut running = 0.0f64;
    let mut cutoff_bin = avg_power.len() - 1;
    for (i, &p) in avg_power.iter().enumerate() {
        running += p;
        if running >= 0.95 * total {
            cutoff_bin = i;
            break;
        }
    }
    let hz_per_bin = sample_rate_hz as f64 / ANALYSIS_FFT as f64;
    let bandwidth_hz = (cutoff_bin as f64 * hz_per_bin).max(200.0) as f32;

    // narrowband signals can afford longer frames; wideband needs shorter
    let (frame_s, stride_s) = if bandwidth_hz < 1000.0 { (0.05, 0.025) } else { (0.02, 0.01) };
    match goal {
        AutotuneGoal::LowMemory => Ok(DspConfig::Mfcc(MfccConfig {
            frame_s,
            stride_s,
            n_coefficients: 13,
            n_filters: 32,
            sample_rate_hz,
        })),
        AutotuneGoal::HighResolution => Ok(DspConfig::Mfe(MfeConfig {
            frame_s,
            stride_s,
            n_filters: 40,
            sample_rate_hz,
            low_hz: 0.0,
            high_hz: bandwidth_hz.min(sample_rate_hz as f32 / 2.0),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f32, n: usize, rate: u32) -> Vec<f32> {
        (0..n).map(|t| (2.0 * std::f32::consts::PI * freq * t as f32 / rate as f32).sin()).collect()
    }

    #[test]
    fn rejects_empty_and_short() {
        assert!(autotune_audio(&[], 16_000, AutotuneGoal::LowMemory).is_err());
        let short = vec![0.0f32; 100];
        assert!(autotune_audio(&[&short], 16_000, AutotuneGoal::LowMemory).is_err());
    }

    #[test]
    fn narrowband_gets_longer_frames() {
        let audio = tone(300.0, 16_000, 16_000);
        let cfg = autotune_audio(&[&audio], 16_000, AutotuneGoal::LowMemory).unwrap();
        match cfg {
            DspConfig::Mfcc(c) => assert!(c.frame_s > 0.03),
            other => panic!("expected mfcc, got {other:?}"),
        }
    }

    #[test]
    fn wideband_gets_shorter_frames() {
        // white-ish noise via mixed tones across the band
        let mut audio = vec![0.0f32; 16_000];
        for f in (500..7500).step_by(500) {
            for (i, v) in audio.iter_mut().enumerate() {
                *v += (2.0 * std::f32::consts::PI * f as f32 * i as f32 / 16_000.0).sin();
            }
        }
        let cfg = autotune_audio(&[&audio], 16_000, AutotuneGoal::HighResolution).unwrap();
        match cfg {
            DspConfig::Mfe(c) => {
                assert!(c.frame_s < 0.03);
                assert!(c.high_hz > 1000.0);
            }
            other => panic!("expected mfe, got {other:?}"),
        }
    }

    #[test]
    fn suggested_config_builds() {
        let audio = tone(1000.0, 16_000, 16_000);
        for goal in [AutotuneGoal::LowMemory, AutotuneGoal::HighResolution] {
            let cfg = autotune_audio(&[&audio], 16_000, goal).unwrap();
            let block = cfg.build().unwrap();
            assert!(block.output_len(16_000).unwrap() > 0);
        }
    }
}
