//! Concrete processing blocks: MFE, MFCC, spectral analysis, image, raw.

use crate::block::{DspBlock, DspConfig, DspCost};
use crate::fft::{fft_flops, next_power_of_two, power_spectrum};
use crate::mel::{dct2, MelFilterbank};
use crate::window::{windowed_frames, Framing, WindowKind};
use crate::{DspError, Result};
use serde::{Deserialize, Serialize};

/// Floor applied before `ln` so silent frames stay finite.
const LOG_FLOOR: f32 = 1e-10;

// ---------------------------------------------------------------------------
// MFE
// ---------------------------------------------------------------------------

/// Configuration of the Mel-filterbank energy block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfeConfig {
    /// Frame length in seconds.
    pub frame_s: f32,
    /// Frame stride in seconds.
    pub stride_s: f32,
    /// Number of Mel filters (= features per frame).
    pub n_filters: usize,
    /// Input sample rate in hertz.
    pub sample_rate_hz: u32,
    /// Lowest filter edge in hertz.
    pub low_hz: f32,
    /// Highest filter edge in hertz (0 means Nyquist).
    pub high_hz: f32,
}

impl Default for MfeConfig {
    /// The platform's default for 16 kHz audio: 20 ms frames every 10 ms,
    /// 40 filters (paper Table 3, first row).
    fn default() -> Self {
        MfeConfig {
            frame_s: 0.02,
            stride_s: 0.01,
            n_filters: 40,
            sample_rate_hz: 16_000,
            low_hz: 0.0,
            high_hz: 0.0,
        }
    }
}

/// Mel-filterbank energy extraction: framing → Hann window → power FFT →
/// triangular Mel filters → log.
#[derive(Debug, Clone)]
pub struct MfeBlock {
    config: MfeConfig,
    framing: Framing,
    fft_len: usize,
    filterbank: MelFilterbank,
}

impl MfeBlock {
    /// Builds the block, validating every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for zero-length frames, inverted
    /// frequency ranges, or filter counts that exceed the spectrum size.
    pub fn new(config: MfeConfig) -> Result<MfeBlock> {
        let framing =
            Framing::from_seconds(config.frame_s, config.stride_s, config.sample_rate_hz)?;
        let fft_len = next_power_of_two(framing.frame_len);
        let high =
            if config.high_hz <= 0.0 { config.sample_rate_hz as f32 / 2.0 } else { config.high_hz };
        let filterbank = MelFilterbank::new(
            config.n_filters,
            fft_len,
            config.sample_rate_hz,
            config.low_hz,
            high,
        )?;
        Ok(MfeBlock { config, framing, fft_len, filterbank })
    }

    /// Number of frames extracted from `input_len` samples.
    pub fn frames(&self, input_len: usize) -> usize {
        self.framing.frame_count(input_len)
    }

    /// The frame layout this block cuts its input into.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Features produced per frame (one Mel filter each).
    pub fn features_per_frame(&self) -> usize {
        self.config.n_filters
    }

    /// One feature column from an already-windowed frame.
    ///
    /// This is the single per-frame pipeline (power FFT → Mel filterbank →
    /// log) shared by batch [`DspBlock::process`] and the incremental
    /// [`crate::streaming::StreamingExtractor`], which is what makes
    /// streaming features bitwise-equal to batch recomputation: both paths
    /// run the very same instructions on the very same windowed samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputLengthMismatch`] unless `windowed` is
    /// exactly one frame long.
    pub fn frame_column(&self, windowed: &[f32]) -> Result<Vec<f32>> {
        if windowed.len() != self.framing.frame_len {
            return Err(DspError::InputLengthMismatch {
                expected: self.framing.frame_len,
                actual: windowed.len(),
            });
        }
        let power = power_spectrum(windowed, self.fft_len)?;
        let energies = self.filterbank.apply(&power)?;
        Ok(energies.iter().map(|&e| (e.max(LOG_FLOOR)).ln()).collect())
    }
}

impl DspBlock for MfeBlock {
    fn name(&self) -> &str {
        "MFE"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        let frames = self.frames(input_len);
        if frames == 0 {
            return Err(DspError::InputTooShort {
                required: self.framing.frame_len,
                actual: input_len,
            });
        }
        Ok(frames * self.config.n_filters)
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        self.output_len(input_len)?;
        Ok((self.frames(input_len), self.config.n_filters, 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        let frames = windowed_frames(input, self.framing, WindowKind::Hann)?;
        let mut out = Vec::with_capacity(frames.len() * self.config.n_filters);
        for frame in &frames {
            out.extend(self.frame_column(frame)?);
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        let frames = self.frames(input_len) as u64;
        if frames == 0 {
            return Err(DspError::InputTooShort {
                required: self.framing.frame_len,
                actual: input_len,
            });
        }
        let per_frame = self.framing.frame_len as u64      // windowing
            + fft_flops(self.fft_len)                      // fft
            + (self.fft_len as u64 / 2 + 1) * 3            // power spectrum
            + self.filterbank.macs() * 2                   // filterbank
            + self.config.n_filters as u64 * 8; // log
        let scratch = self.fft_len * 8          // complex fft buffer
            + (self.fft_len / 2 + 1) * 4        // power spectrum
            + self.framing.frame_len * 4; // windowed frame
        Ok(DspCost {
            flops: frames * per_frame,
            scratch_bytes: scratch,
            output_features: frames as usize * self.config.n_filters,
        })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Mfe(self.config.clone())
    }
}

// ---------------------------------------------------------------------------
// Spectrogram
// ---------------------------------------------------------------------------

/// Configuration of the linear-frequency spectrogram block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrogramConfig {
    /// Frame length in seconds.
    pub frame_s: f32,
    /// Frame stride in seconds.
    pub stride_s: f32,
    /// FFT length (power of two); features per frame = `fft_len / 2 + 1`.
    pub fft_len: usize,
    /// Input sample rate in hertz.
    pub sample_rate_hz: u32,
}

impl Default for SpectrogramConfig {
    /// 20 ms frames every 10 ms with a 512-point FFT at 16 kHz.
    fn default() -> Self {
        SpectrogramConfig { frame_s: 0.02, stride_s: 0.01, fft_len: 512, sample_rate_hz: 16_000 }
    }
}

/// Linear-frequency log-power spectrogram: framing → Hann window → power
/// FFT → log. The platform offers this alongside MFE for non-voice audio
/// where the Mel warp would discard useful high-frequency detail.
#[derive(Debug, Clone)]
pub struct SpectrogramBlock {
    config: SpectrogramConfig,
    framing: Framing,
}

impl SpectrogramBlock {
    /// Builds the block.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for invalid framing or an FFT
    /// shorter than the frame, and [`DspError::FftLengthNotPowerOfTwo`]
    /// for a non-power-of-two FFT length.
    pub fn new(config: SpectrogramConfig) -> Result<SpectrogramBlock> {
        let framing =
            Framing::from_seconds(config.frame_s, config.stride_s, config.sample_rate_hz)?;
        if !config.fft_len.is_power_of_two() || config.fft_len == 0 {
            return Err(DspError::FftLengthNotPowerOfTwo(config.fft_len));
        }
        if config.fft_len < framing.frame_len {
            return Err(DspError::InvalidConfig(format!(
                "fft length {} shorter than the {}-sample frame",
                config.fft_len, framing.frame_len
            )));
        }
        Ok(SpectrogramBlock { config, framing })
    }

    /// Frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.config.fft_len / 2 + 1
    }

    /// Number of frames extracted from `input_len` samples.
    pub fn frames(&self, input_len: usize) -> usize {
        self.framing.frame_count(input_len)
    }

    /// The frame layout this block cuts its input into.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// One feature column (log-power bins) from an already-windowed frame;
    /// the shared per-frame pipeline batch and streaming extraction both
    /// run (see [`MfeBlock::frame_column`]).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputLengthMismatch`] unless `windowed` is
    /// exactly one frame long.
    pub fn frame_column(&self, windowed: &[f32]) -> Result<Vec<f32>> {
        if windowed.len() != self.framing.frame_len {
            return Err(DspError::InputLengthMismatch {
                expected: self.framing.frame_len,
                actual: windowed.len(),
            });
        }
        let power = power_spectrum(windowed, self.config.fft_len)?;
        Ok(power.iter().map(|&p| (p.max(LOG_FLOOR)).ln()).collect())
    }
}

impl DspBlock for SpectrogramBlock {
    fn name(&self) -> &str {
        "Spectrogram"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        let frames = self.frames(input_len);
        if frames == 0 {
            return Err(DspError::InputTooShort {
                required: self.framing.frame_len,
                actual: input_len,
            });
        }
        Ok(frames * self.bins())
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        self.output_len(input_len)?;
        Ok((self.frames(input_len), self.bins(), 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        let frames = windowed_frames(input, self.framing, WindowKind::Hann)?;
        let mut out = Vec::with_capacity(frames.len() * self.bins());
        for frame in &frames {
            out.extend(self.frame_column(frame)?);
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        let frames = self.frames(input_len) as u64;
        if frames == 0 {
            return Err(DspError::InputTooShort {
                required: self.framing.frame_len,
                actual: input_len,
            });
        }
        let per_frame = self.framing.frame_len as u64
            + fft_flops(self.config.fft_len)
            + self.bins() as u64 * 11; // power + log
        Ok(DspCost {
            flops: frames * per_frame,
            scratch_bytes: self.config.fft_len * 8 + self.framing.frame_len * 4,
            output_features: frames as usize * self.bins(),
        })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Spectrogram(self.config.clone())
    }
}

// ---------------------------------------------------------------------------
// MFCC
// ---------------------------------------------------------------------------

/// Configuration of the MFCC block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfccConfig {
    /// Frame length in seconds.
    pub frame_s: f32,
    /// Frame stride in seconds.
    pub stride_s: f32,
    /// Number of cepstral coefficients kept per frame.
    pub n_coefficients: usize,
    /// Number of Mel filters feeding the DCT.
    pub n_filters: usize,
    /// Input sample rate in hertz.
    pub sample_rate_hz: u32,
}

impl Default for MfccConfig {
    /// 20 ms frames every 10 ms, 13 coefficients over 32 filters at 16 kHz.
    fn default() -> Self {
        MfccConfig {
            frame_s: 0.02,
            stride_s: 0.01,
            n_coefficients: 13,
            n_filters: 32,
            sample_rate_hz: 16_000,
        }
    }
}

/// Mel-frequency cepstral coefficients: an [`MfeBlock`] followed by a
/// DCT-II decorrelation per frame.
#[derive(Debug, Clone)]
pub struct MfccBlock {
    config: MfccConfig,
    mfe: MfeBlock,
}

impl MfccBlock {
    /// Builds the block.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for invalid framing or when more
    /// coefficients are requested than Mel filters exist.
    pub fn new(config: MfccConfig) -> Result<MfccBlock> {
        if config.n_coefficients == 0 || config.n_coefficients > config.n_filters {
            return Err(DspError::InvalidConfig(format!(
                "n_coefficients {} must be in 1..={}",
                config.n_coefficients, config.n_filters
            )));
        }
        let mfe = MfeBlock::new(MfeConfig {
            frame_s: config.frame_s,
            stride_s: config.stride_s,
            n_filters: config.n_filters,
            sample_rate_hz: config.sample_rate_hz,
            low_hz: 20.0,
            high_hz: 0.0,
        })?;
        Ok(MfccBlock { config, mfe })
    }

    /// The frame layout this block cuts its input into.
    pub fn framing(&self) -> Framing {
        self.mfe.framing()
    }

    /// Cepstral coefficients produced per frame.
    pub fn features_per_frame(&self) -> usize {
        self.config.n_coefficients
    }

    /// One cepstral column from an already-windowed frame: the inner
    /// [`MfeBlock::frame_column`] followed by the per-frame DCT-II — the
    /// identical pipeline batch [`DspBlock::process`] applies frame by
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputLengthMismatch`] unless `windowed` is
    /// exactly one frame long.
    pub fn frame_column(&self, windowed: &[f32]) -> Result<Vec<f32>> {
        let log_energies = self.mfe.frame_column(windowed)?;
        Ok(dct2(&log_energies, self.config.n_coefficients))
    }
}

impl DspBlock for MfccBlock {
    fn name(&self) -> &str {
        "MFCC"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        self.mfe.output_len(input_len)?;
        Ok(self.mfe.frames(input_len) * self.config.n_coefficients)
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        self.output_len(input_len)?;
        Ok((self.mfe.frames(input_len), self.config.n_coefficients, 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        let log_energies = self.mfe.process(input)?;
        let n_filters = self.config.n_filters;
        let mut out =
            Vec::with_capacity(log_energies.len() / n_filters * self.config.n_coefficients);
        for frame in log_energies.chunks(n_filters) {
            out.extend(dct2(frame, self.config.n_coefficients));
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        let base = self.mfe.cost(input_len)?;
        let frames = self.mfe.frames(input_len) as u64;
        let dct_flops =
            frames * (self.config.n_coefficients as u64 * self.config.n_filters as u64 * 2);
        Ok(DspCost {
            flops: base.flops + dct_flops,
            scratch_bytes: base.scratch_bytes + self.config.n_filters * 4,
            output_features: frames as usize * self.config.n_coefficients,
        })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Mfcc(self.config.clone())
    }
}

// ---------------------------------------------------------------------------
// Spectral analysis (inertial)
// ---------------------------------------------------------------------------

/// Configuration of the spectral-analysis block for accelerometer data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// Number of interleaved sensor axes (3 for an accelerometer).
    pub axes: usize,
    /// FFT length (power of two).
    pub fft_len: usize,
    /// Number of power buckets summarized from the spectrum per axis.
    pub n_buckets: usize,
    /// Sample rate in hertz (used for cost/latency accounting only).
    pub sample_rate_hz: u32,
}

impl Default for SpectralConfig {
    /// 3 axes, 128-point FFT, 16 buckets at 100 Hz — the platform default
    /// for motion workloads.
    fn default() -> Self {
        SpectralConfig { axes: 3, fft_len: 128, n_buckets: 16, sample_rate_hz: 100 }
    }
}

/// Spectral analysis: per axis, time-domain statistics (RMS, mean, std)
/// plus bucketed FFT power.
#[derive(Debug, Clone)]
pub struct SpectralBlock {
    config: SpectralConfig,
}

impl SpectralBlock {
    /// Builds the block.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for a zero axis count, a
    /// non-power-of-two FFT length, or more buckets than spectrum bins.
    pub fn new(config: SpectralConfig) -> Result<SpectralBlock> {
        if config.axes == 0 {
            return Err(DspError::InvalidConfig("axes must be non-zero".into()));
        }
        if !config.fft_len.is_power_of_two() {
            return Err(DspError::FftLengthNotPowerOfTwo(config.fft_len));
        }
        if config.n_buckets == 0 || config.n_buckets > config.fft_len / 2 {
            return Err(DspError::InvalidConfig(format!(
                "n_buckets {} must be in 1..={}",
                config.n_buckets,
                config.fft_len / 2
            )));
        }
        Ok(SpectralBlock { config })
    }

    /// Features per axis: 3 statistics + `n_buckets` power buckets.
    pub fn features_per_axis(&self) -> usize {
        3 + self.config.n_buckets
    }
}

impl DspBlock for SpectralBlock {
    fn name(&self) -> &str {
        "Spectral"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        if input_len == 0 || !input_len.is_multiple_of(self.config.axes) {
            return Err(DspError::InputLengthMismatch {
                expected: self.config.axes,
                actual: input_len,
            });
        }
        Ok(self.config.axes * self.features_per_axis())
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        let len = self.output_len(input_len)?;
        Ok((1, len, 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        self.output_len(input.len())?;
        let axes = self.config.axes;
        let per_axis = input.len() / axes;
        let mut out = Vec::with_capacity(self.output_len(input.len())?);
        for axis in 0..axes {
            let series: Vec<f32> = (0..per_axis).map(|i| input[i * axes + axis]).collect();
            let mean = series.iter().sum::<f32>() / per_axis as f32;
            let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / per_axis as f32;
            let rms = (series.iter().map(|x| x * x).sum::<f32>() / per_axis as f32).sqrt();
            out.push(rms);
            out.push(mean);
            out.push(var.sqrt());
            // bucketed power spectrum over (up to) the first fft_len samples
            let take = per_axis.min(self.config.fft_len);
            let power = power_spectrum(&series[..take], self.config.fft_len)?;
            let bins = power.len() - 1; // skip DC mirror bookkeeping; use 1..=bins
            let per_bucket = (bins / self.config.n_buckets).max(1);
            for b in 0..self.config.n_buckets {
                let lo = 1 + b * per_bucket;
                let hi = if b + 1 == self.config.n_buckets {
                    power.len()
                } else {
                    1 + (b + 1) * per_bucket
                };
                let sum: f32 = power[lo.min(power.len())..hi.min(power.len())].iter().sum();
                out.push((sum.max(LOG_FLOOR)).ln());
            }
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        let features = self.output_len(input_len)?;
        let per_axis = input_len / self.config.axes;
        let stats = per_axis as u64 * 6;
        let fft = fft_flops(self.config.fft_len) + self.config.fft_len as u64 * 3;
        Ok(DspCost {
            flops: self.config.axes as u64 * (stats + fft),
            scratch_bytes: self.config.fft_len * 8 + per_axis * 4,
            output_features: features,
        })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Spectral(self.config.clone())
    }
}

// ---------------------------------------------------------------------------
// Image
// ---------------------------------------------------------------------------

/// Pixel normalization applied after resizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PixelNorm {
    /// Scale 0–255 to 0–1.
    ZeroToOne,
    /// Scale 0–255 to −1–1 (the convention MobileNet expects).
    MinusOneToOne,
}

/// Configuration of the image block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageConfig {
    /// Source image width in pixels.
    pub in_width: usize,
    /// Source image height in pixels.
    pub in_height: usize,
    /// Source channel count (1 or 3).
    pub in_channels: usize,
    /// Target width after resizing.
    pub out_width: usize,
    /// Target height after resizing.
    pub out_height: usize,
    /// Target channel count; converting 3 → 1 averages RGB.
    pub out_channels: usize,
    /// Normalization applied to the 0–255 pixel range.
    pub norm: PixelNorm,
}

impl Default for ImageConfig {
    /// 96×96 grayscale — the Visual Wake Words input (paper §5.1).
    fn default() -> Self {
        ImageConfig {
            in_width: 96,
            in_height: 96,
            in_channels: 1,
            out_width: 96,
            out_height: 96,
            out_channels: 1,
            norm: PixelNorm::ZeroToOne,
        }
    }
}

/// Image preprocessing: bilinear resize, channel conversion, normalization.
#[derive(Debug, Clone)]
pub struct ImageBlock {
    config: ImageConfig,
}

impl ImageBlock {
    /// Builds the block.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidConfig`] for zero dimensions or channel
    /// counts other than 1 or 3.
    pub fn new(config: ImageConfig) -> Result<ImageBlock> {
        for (label, v) in [
            ("in_width", config.in_width),
            ("in_height", config.in_height),
            ("out_width", config.out_width),
            ("out_height", config.out_height),
        ] {
            if v == 0 {
                return Err(DspError::InvalidConfig(format!("{label} must be non-zero")));
            }
        }
        if ![1, 3].contains(&config.in_channels) || ![1, 3].contains(&config.out_channels) {
            return Err(DspError::InvalidConfig("channels must be 1 or 3".into()));
        }
        if config.in_channels == 1 && config.out_channels == 3 {
            return Err(DspError::InvalidConfig("cannot expand grayscale to rgb".into()));
        }
        Ok(ImageBlock { config })
    }

    fn expected_input(&self) -> usize {
        self.config.in_width * self.config.in_height * self.config.in_channels
    }

    /// Samples the source image bilinearly at fractional coordinates.
    fn sample(&self, input: &[f32], x: f32, y: f32, c: usize) -> f32 {
        let cfg = &self.config;
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(cfg.in_width - 1);
        let y1 = (y0 + 1).min(cfg.in_height - 1);
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let at = |yy: usize, xx: usize| input[(yy * cfg.in_width + xx) * cfg.in_channels + c];
        let top = at(y0, x0) * (1.0 - fx) + at(y0, x1) * fx;
        let bottom = at(y1, x0) * (1.0 - fx) + at(y1, x1) * fx;
        top * (1.0 - fy) + bottom * fy
    }
}

impl DspBlock for ImageBlock {
    fn name(&self) -> &str {
        "Image"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        if input_len != self.expected_input() {
            return Err(DspError::InputLengthMismatch {
                expected: self.expected_input(),
                actual: input_len,
            });
        }
        Ok(self.config.out_width * self.config.out_height * self.config.out_channels)
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        self.output_len(input_len)?;
        Ok((self.config.out_height, self.config.out_width, self.config.out_channels))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        self.output_len(input.len())?;
        let cfg = &self.config;
        let sx = cfg.in_width as f32 / cfg.out_width as f32;
        let sy = cfg.in_height as f32 / cfg.out_height as f32;
        let mut out = Vec::with_capacity(cfg.out_width * cfg.out_height * cfg.out_channels);
        for oy in 0..cfg.out_height {
            for ox in 0..cfg.out_width {
                let x = (ox as f32 + 0.5) * sx - 0.5;
                let y = (oy as f32 + 0.5) * sy - 0.5;
                let x = x.clamp(0.0, (cfg.in_width - 1) as f32);
                let y = y.clamp(0.0, (cfg.in_height - 1) as f32);
                let mut channels = [0.0f32; 3];
                for (c, slot) in channels.iter_mut().take(cfg.in_channels).enumerate() {
                    *slot = self.sample(input, x, y, c);
                }
                let push = |v: f32| match cfg.norm {
                    PixelNorm::ZeroToOne => v / 255.0,
                    PixelNorm::MinusOneToOne => v / 127.5 - 1.0,
                };
                if cfg.out_channels == cfg.in_channels {
                    for &v in channels.iter().take(cfg.out_channels) {
                        out.push(push(v));
                    }
                } else {
                    // 3 -> 1: luminance average
                    let gray = (channels[0] + channels[1] + channels[2]) / 3.0;
                    out.push(push(gray));
                }
            }
        }
        Ok(out)
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        let out = self.output_len(input_len)?;
        // bilinear: ~8 ops per output channel value + normalization
        Ok(DspCost { flops: out as u64 * 9, scratch_bytes: 64, output_features: out })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Image(self.config.clone())
    }
}

// ---------------------------------------------------------------------------
// Raw
// ---------------------------------------------------------------------------

/// Configuration of the raw pass-through block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawConfig {
    /// Multiplier applied to every sample.
    pub scale: f32,
    /// Offset added after scaling.
    pub offset: f32,
}

impl Default for RawConfig {
    fn default() -> Self {
        RawConfig { scale: 1.0, offset: 0.0 }
    }
}

/// Raw block: features are the (optionally affine-mapped) input samples.
#[derive(Debug, Clone, Default)]
pub struct RawBlock {
    config: RawConfig,
}

impl RawBlock {
    /// Builds the block; all parameter values are valid.
    pub fn new(config: RawConfig) -> RawBlock {
        RawBlock { config }
    }
}

impl DspBlock for RawBlock {
    fn name(&self) -> &str {
        "Raw"
    }

    fn output_len(&self, input_len: usize) -> Result<usize> {
        Ok(input_len)
    }

    fn output_shape(&self, input_len: usize) -> Result<(usize, usize, usize)> {
        Ok((1, input_len, 1))
    }

    fn process(&self, input: &[f32]) -> Result<Vec<f32>> {
        Ok(input.iter().map(|&x| x * self.config.scale + self.config.offset).collect())
    }

    fn cost(&self, input_len: usize) -> Result<DspCost> {
        Ok(DspCost { flops: input_len as u64 * 2, scratch_bytes: 0, output_features: input_len })
    }

    fn config(&self) -> DspConfig {
        DspConfig::Raw(self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tone(freq: f32, seconds: f32, rate: u32) -> Vec<f32> {
        let n = (seconds * rate as f32) as usize;
        (0..n).map(|t| (2.0 * std::f32::consts::PI * freq * t as f32 / rate as f32).sin()).collect()
    }

    // --- MFE ---

    #[test]
    fn mfe_output_dimensions() {
        let block = MfeBlock::new(MfeConfig::default()).unwrap();
        // 16 000 samples, 320-frame, 160-stride -> 99 frames x 40 filters
        assert_eq!(block.output_len(16_000).unwrap(), 99 * 40);
        assert_eq!(block.output_shape(16_000).unwrap(), (99, 40, 1));
        let features = block.process(&vec![0.0; 16_000]).unwrap();
        assert_eq!(features.len(), 99 * 40);
    }

    #[test]
    fn mfe_silence_hits_log_floor() {
        let block = MfeBlock::new(MfeConfig::default()).unwrap();
        let features = block.process(&vec![0.0; 16_000]).unwrap();
        assert!(features.iter().all(|&f| (f - LOG_FLOOR.ln()).abs() < 1e-3));
    }

    #[test]
    fn mfe_tone_energy_concentrated() {
        let block = MfeBlock::new(MfeConfig::default()).unwrap();
        let audio = tone(1000.0, 1.0, 16_000);
        let features = block.process(&audio).unwrap();
        // per-frame argmax filter should be consistent across frames
        let per_frame: Vec<usize> = features
            .chunks(40)
            .map(|f| f.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0)
            .collect();
        let first = per_frame[0];
        assert!(per_frame.iter().all(|&p| p.abs_diff(first) <= 1));
    }

    #[test]
    fn mfe_too_short_input() {
        let block = MfeBlock::new(MfeConfig::default()).unwrap();
        assert!(block.process(&[0.0; 100]).is_err());
        assert!(block.cost(100).is_err());
    }

    #[test]
    fn mfe_cost_scales_with_length() {
        let block = MfeBlock::new(MfeConfig::default()).unwrap();
        let c1 = block.cost(16_000).unwrap();
        let c2 = block.cost(32_000).unwrap();
        assert!(c2.flops > c1.flops * 3 / 2);
        assert_eq!(c1.output_features, 99 * 40);
    }

    // --- Spectrogram ---

    #[test]
    fn spectrogram_output_dimensions() {
        let block = SpectrogramBlock::new(SpectrogramConfig::default()).unwrap();
        // 99 frames x 257 bins
        assert_eq!(block.output_shape(16_000).unwrap(), (99, 257, 1));
        let features = block.process(&vec![0.0; 16_000]).unwrap();
        assert_eq!(features.len(), 99 * 257);
        assert!(features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn spectrogram_tone_peaks_at_right_bin() {
        let block = SpectrogramBlock::new(SpectrogramConfig::default()).unwrap();
        let audio = tone(1000.0, 1.0, 16_000);
        let features = block.process(&audio).unwrap();
        // 1 kHz at 16 kHz / 512-point fft -> bin 32
        let frame = &features[..257];
        let peak = frame.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak.abs_diff(32) <= 1, "peak bin {peak}");
    }

    #[test]
    fn spectrogram_validation() {
        assert!(SpectrogramBlock::new(SpectrogramConfig { fft_len: 100, ..Default::default() })
            .is_err());
        assert!(
            SpectrogramBlock::new(SpectrogramConfig { fft_len: 128, ..Default::default() })
                .is_err(),
            "fft shorter than frame"
        );
        let block = SpectrogramBlock::new(SpectrogramConfig::default()).unwrap();
        assert!(block.process(&[0.0; 10]).is_err());
        assert!(block.cost(10).is_err());
        assert!(block.cost(16_000).unwrap().flops > 0);
    }

    // --- MFCC ---

    #[test]
    fn mfcc_output_dimensions() {
        let block = MfccBlock::new(MfccConfig::default()).unwrap();
        assert_eq!(block.output_shape(16_000).unwrap(), (99, 13, 1));
        let features = block.process(&tone(440.0, 1.0, 16_000)).unwrap();
        assert_eq!(features.len(), 99 * 13);
        assert!(features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn mfcc_rejects_more_coeffs_than_filters() {
        let cfg = MfccConfig { n_coefficients: 64, n_filters: 32, ..MfccConfig::default() };
        assert!(MfccBlock::new(cfg).is_err());
    }

    #[test]
    fn mfcc_costs_more_than_mfe_with_same_filters() {
        let mfcc = MfccBlock::new(MfccConfig::default()).unwrap();
        let mfe = MfeBlock::new(MfeConfig { n_filters: 32, ..MfeConfig::default() }).unwrap();
        assert!(mfcc.cost(16_000).unwrap().flops > mfe.cost(16_000).unwrap().flops);
    }

    #[test]
    fn mfcc_distinguishes_tones() {
        let block = MfccBlock::new(MfccConfig::default()).unwrap();
        let low = block.process(&tone(300.0, 1.0, 16_000)).unwrap();
        let high = block.process(&tone(3000.0, 1.0, 16_000)).unwrap();
        let dist: f32 = low.iter().zip(&high).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(dist > 1.0, "different tones must produce different cepstra");
    }

    // --- Spectral ---

    #[test]
    fn spectral_output_layout() {
        let block = SpectralBlock::new(SpectralConfig::default()).unwrap();
        // 3 axes x (3 stats + 16 buckets) = 57 features
        assert_eq!(block.output_len(300).unwrap(), 57);
        let features = block.process(&vec![0.5; 300]).unwrap();
        assert_eq!(features.len(), 57);
    }

    #[test]
    fn spectral_rejects_unaligned_input() {
        let block = SpectralBlock::new(SpectralConfig::default()).unwrap();
        assert!(block.output_len(301).is_err());
        assert!(block.output_len(0).is_err());
    }

    #[test]
    fn spectral_stats_correct_for_constant_signal() {
        let block =
            SpectralBlock::new(SpectralConfig { axes: 1, ..SpectralConfig::default() }).unwrap();
        let features = block.process(&vec![2.0; 128]).unwrap();
        assert!((features[0] - 2.0).abs() < 1e-5, "rms");
        assert!((features[1] - 2.0).abs() < 1e-5, "mean");
        assert!(features[2].abs() < 1e-5, "std");
    }

    #[test]
    fn spectral_config_validation() {
        assert!(SpectralBlock::new(SpectralConfig { axes: 0, ..Default::default() }).is_err());
        assert!(SpectralBlock::new(SpectralConfig { fft_len: 100, ..Default::default() }).is_err());
        assert!(
            SpectralBlock::new(SpectralConfig { n_buckets: 1000, ..Default::default() }).is_err()
        );
    }

    #[test]
    fn spectral_vibration_frequency_visible() {
        let block = SpectralBlock::new(SpectralConfig {
            axes: 1,
            fft_len: 128,
            n_buckets: 8,
            sample_rate_hz: 100,
        })
        .unwrap();
        let slow: Vec<f32> =
            (0..128).map(|t| (2.0 * std::f32::consts::PI * 2.0 * t as f32 / 100.0).sin()).collect();
        let fast: Vec<f32> = (0..128)
            .map(|t| (2.0 * std::f32::consts::PI * 40.0 * t as f32 / 100.0).sin())
            .collect();
        let fs = block.process(&slow).unwrap();
        let ff = block.process(&fast).unwrap();
        // bucket features start at index 3; slow tone peaks earlier than fast tone
        let peak_slow =
            fs[3..].iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_fast =
            ff[3..].iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak_slow < peak_fast);
    }

    // --- Image ---

    #[test]
    fn image_identity_resize() {
        let block = ImageBlock::new(ImageConfig {
            in_width: 4,
            in_height: 4,
            in_channels: 1,
            out_width: 4,
            out_height: 4,
            out_channels: 1,
            norm: PixelNorm::ZeroToOne,
        })
        .unwrap();
        let input: Vec<f32> = (0..16).map(|i| i as f32 * 17.0).collect();
        let out = block.process(&input).unwrap();
        for (o, i) in out.iter().zip(&input) {
            assert!((o - i / 255.0).abs() < 1e-5);
        }
    }

    #[test]
    fn image_downscale_and_grayscale() {
        let block = ImageBlock::new(ImageConfig {
            in_width: 8,
            in_height: 8,
            in_channels: 3,
            out_width: 4,
            out_height: 4,
            out_channels: 1,
            norm: PixelNorm::MinusOneToOne,
        })
        .unwrap();
        let input = vec![255.0f32; 8 * 8 * 3];
        let out = block.process(&input).unwrap();
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|&v| (v - 1.0).abs() < 1e-4));
    }

    #[test]
    fn image_validates_input_len() {
        let block = ImageBlock::new(ImageConfig::default()).unwrap();
        assert!(block.process(&[0.0; 10]).is_err());
    }

    #[test]
    fn image_rejects_gray_to_rgb() {
        let cfg = ImageConfig { in_channels: 1, out_channels: 3, ..ImageConfig::default() };
        assert!(ImageBlock::new(cfg).is_err());
    }

    // --- Raw ---

    #[test]
    fn raw_affine_mapping() {
        let block = RawBlock::new(RawConfig { scale: 2.0, offset: 1.0 });
        assert_eq!(block.process(&[0.0, 1.0]).unwrap(), vec![1.0, 3.0]);
        assert_eq!(block.output_len(7).unwrap(), 7);
        assert_eq!(block.output_shape(7).unwrap(), (1, 7, 1));
    }

    proptest! {
        #[test]
        fn prop_mfe_features_finite(samples in proptest::collection::vec(-1.0f32..1.0, 640..2000)) {
            let block = MfeBlock::new(MfeConfig {
                n_filters: 20, ..MfeConfig::default()
            }).unwrap();
            let features = block.process(&samples).unwrap();
            prop_assert_eq!(features.len(), block.output_len(samples.len()).unwrap());
            prop_assert!(features.iter().all(|f| f.is_finite()));
        }

        #[test]
        fn prop_image_output_in_norm_range(pixels in proptest::collection::vec(0.0f32..255.0, 64)) {
            let block = ImageBlock::new(ImageConfig {
                in_width: 8, in_height: 8, in_channels: 1,
                out_width: 5, out_height: 5, out_channels: 1,
                norm: PixelNorm::ZeroToOne,
            }).unwrap();
            let out = block.process(&pixels).unwrap();
            prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
