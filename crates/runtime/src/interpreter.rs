//! TFLite-Micro-style interpreter: op registry, dynamic dispatch, and the
//! RAM/flash overheads that come with interpreting a serialized graph.
//!
//! Arithmetic is shared with the EON executor: both run the model through
//! the kernel layer — im2col + cache-blocked GEMM for float layers
//! (`ei_nn::par`), fused requantizing int8 GEMM for quantized layers
//! (`ei_quant`) — so engine choice changes dispatch overhead and memory
//! shape, never the numerics.

use std::collections::BTreeSet;

use crate::costs;
use crate::engine::{op_profiles, EngineKind, InferenceEngine, MemoryReport, OpProfile};
use crate::ir::ModelArtifact;
use crate::planner::{plan_model, MemoryPlan};
use crate::{Result, RuntimeError};

/// A TFLM-style interpreter bound to one model artifact.
///
/// The registry models the op-resolver: only registered kernels can run,
/// and every registered kernel costs flash whether or not the model uses
/// it (the `AllOpsResolver` failure mode EON avoids).
#[derive(Debug, Clone)]
pub struct Interpreter {
    artifact: ModelArtifact,
    registry: BTreeSet<&'static str>,
    plan: MemoryPlan,
}

/// Every op name the full resolver registers.
const ALL_OPS: &[&str] = &[
    "conv2d",
    "depthwise_conv2d",
    "conv1d",
    "dense",
    "max_pool",
    "avg_pool",
    "global_avg_pool",
    "softmax",
    "batch_norm",
    "reshape",
    "flatten",
    "dropout",
];

impl Interpreter {
    /// Creates an interpreter registering exactly the ops the model uses
    /// (the `MutableOpResolver` best practice).
    ///
    /// # Errors
    ///
    /// Propagates memory-planning failures.
    pub fn new(artifact: ModelArtifact) -> Result<Interpreter> {
        let registry = artifact.op_kinds().into_iter().collect();
        let plan = plan_model(&artifact)?;
        Ok(Interpreter { artifact, registry, plan })
    }

    /// Creates an interpreter with every kernel registered (the
    /// `AllOpsResolver` convenience that wastes flash).
    ///
    /// # Errors
    ///
    /// Propagates memory-planning failures.
    pub fn with_all_ops(artifact: ModelArtifact) -> Result<Interpreter> {
        let plan = plan_model(&artifact)?;
        Ok(Interpreter { artifact, registry: ALL_OPS.iter().copied().collect(), plan })
    }

    /// Creates an interpreter with an explicit registry (for testing the
    /// missing-kernel path).
    ///
    /// # Errors
    ///
    /// Propagates memory-planning failures.
    pub fn with_ops(artifact: ModelArtifact, ops: &[&'static str]) -> Result<Interpreter> {
        let plan = plan_model(&artifact)?;
        Ok(Interpreter { artifact, registry: ops.iter().copied().collect(), plan })
    }

    /// The planned activation arena.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Registered op names.
    pub fn registered_ops(&self) -> impl Iterator<Item = &&'static str> {
        self.registry.iter()
    }
}

impl InferenceEngine for Interpreter {
    fn kind(&self) -> EngineKind {
        EngineKind::TflmInterpreter
    }

    fn run(&self, input: &[f32]) -> Result<Vec<f32>> {
        // dynamic dispatch: every node looks its kernel up in the registry
        for op in self.artifact.ops() {
            if !self.registry.contains(op.name) {
                return Err(RuntimeError::MissingKernel(op.name.to_string()));
            }
        }
        self.artifact.run_reference(input)
    }

    fn memory(&self) -> MemoryReport {
        let ops = self.artifact.ops();
        // tensor structs: one per activation buffer plus two per
        // parameterized op (weights + bias)
        let n_tensors =
            self.plan.buffers.len() + ops.iter().filter(|o| o.weight_bytes > 0).count() * 2;
        let runtime_ram = costs::TFLM_INTERPRETER_RAM_BYTES
            + n_tensors * costs::TFLM_TENSOR_STRUCT_BYTES
            + ops.len() * costs::TFLM_NODE_STRUCT_BYTES
            + costs::TFLM_SCRATCH_RAM_BYTES;
        let weight_bytes = self.artifact.weight_bytes();
        let model_format = (weight_bytes as f64 * costs::TFLM_SCHEMA_OVERHEAD_RATIO) as usize
            + costs::TFLM_SCHEMA_FIXED_BYTES;
        let kernel_code: usize = self
            .registry
            .iter()
            .map(|op| {
                (costs::kernel_code_bytes(op) as f64 * costs::TFLM_KERNEL_CODE_FACTOR) as usize
            })
            .sum();
        MemoryReport {
            arena_bytes: costs::padded_arena_bytes(self.plan.arena_bytes),
            runtime_ram_bytes: runtime_ram,
            weight_bytes,
            model_format_bytes: model_format,
            code_bytes: costs::TFLM_INTERPRETER_CODE_BYTES + kernel_code,
        }
    }

    fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    fn op_profile(&self) -> Vec<OpProfile> {
        op_profiles(&self.artifact, &self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec};
    use ei_nn::Sequential;

    fn artifact() -> ModelArtifact {
        let spec = ModelSpec::new(Dims::new(1, 8, 1))
            .named("kws-mini")
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 6, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        ModelArtifact::Float(Sequential::build(&spec, 3).unwrap())
    }

    #[test]
    fn runs_and_matches_reference() {
        let a = artifact();
        let interp = Interpreter::new(a.clone()).unwrap();
        let input = vec![0.1f32; 8];
        assert_eq!(interp.run(&input).unwrap(), a.run_reference(&input).unwrap());
        assert_eq!(interp.kind(), EngineKind::TflmInterpreter);
    }

    #[test]
    fn missing_kernel_detected() {
        let interp = Interpreter::with_ops(artifact(), &["dense", "flatten"]).unwrap();
        let err = interp.run(&[0.0; 8]).unwrap_err();
        assert_eq!(err, RuntimeError::MissingKernel("softmax".to_string()));
    }

    #[test]
    fn all_ops_resolver_costs_more_flash() {
        let minimal = Interpreter::new(artifact()).unwrap();
        let full = Interpreter::with_all_ops(artifact()).unwrap();
        assert!(full.memory().code_bytes > minimal.memory().code_bytes);
        // but identical RAM
        assert_eq!(full.memory().ram_total(), minimal.memory().ram_total());
    }

    #[test]
    fn memory_report_structure() {
        let interp = Interpreter::new(artifact()).unwrap();
        let m = interp.memory();
        assert!(m.arena_bytes > 0);
        assert!(m.runtime_ram_bytes >= costs::TFLM_INTERPRETER_RAM_BYTES);
        assert!(m.code_bytes >= costs::TFLM_INTERPRETER_CODE_BYTES);
        assert!(m.model_format_bytes >= costs::TFLM_SCHEMA_FIXED_BYTES);
        assert_eq!(m.weight_bytes, interp.artifact().weight_bytes());
    }
}
