//! Greedy-by-size arena memory planner.
//!
//! Both engines pre-plan every activation buffer into one contiguous tensor
//! arena: each buffer gets a static offset such that buffers with
//! overlapping lifetimes never overlap in memory, while buffers that are
//! dead can be recycled. This is the same strategy TFLite Micro's
//! `GreedyMemoryPlanner` uses and is what makes the reported arena size
//! (RAM estimate, paper §4.4) deterministic.

use crate::ir::ModelArtifact;
use crate::{Result, RuntimeError};
use ei_tensor::arena::align_up;

/// Planner alignment (matches the tensor arena alignment).
pub const PLAN_ALIGN: usize = 16;

/// One activation buffer with its lifetime in execution steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferReq {
    /// Size in bytes.
    pub size: usize,
    /// First step (inclusive) at which the buffer must exist.
    pub first_use: usize,
    /// Last step (inclusive) at which the buffer is read.
    pub last_use: usize,
}

/// A planned buffer: the request plus its assigned offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBuffer {
    /// The original request.
    pub req: BufferReq,
    /// Byte offset within the arena.
    pub offset: usize,
}

/// The result of planning: placed buffers and total arena size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Placed buffers, in the order the requests were given.
    pub buffers: Vec<PlannedBuffer>,
    /// Total arena bytes required.
    pub arena_bytes: usize,
}

/// Plans buffer placement with the greedy-by-size strategy: largest buffers
/// first, each placed at the lowest offset that does not collide with an
/// already-placed, lifetime-overlapping buffer.
///
/// # Errors
///
/// Returns [`RuntimeError::InvalidPlan`] if any request has
/// `first_use > last_use`.
pub fn plan_memory(requests: &[BufferReq]) -> Result<MemoryPlan> {
    for (i, r) in requests.iter().enumerate() {
        if r.first_use > r.last_use {
            return Err(RuntimeError::InvalidPlan(format!(
                "buffer {i} has first_use {} after last_use {}",
                r.first_use, r.last_use
            )));
        }
    }
    // place largest first
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| requests[b].size.cmp(&requests[a].size).then(a.cmp(&b)));

    let mut placed: Vec<PlannedBuffer> =
        vec![
            PlannedBuffer { req: BufferReq { size: 0, first_use: 0, last_use: 0 }, offset: 0 };
            requests.len()
        ];
    let mut done: Vec<usize> = Vec::new();
    for &i in &order {
        let req = requests[i];
        let size = align_up(req.size.max(1), PLAN_ALIGN);
        // candidate gaps: 0 and the end of every lifetime-overlapping buffer
        let mut candidates = vec![0usize];
        for &j in &done {
            let other = placed[j];
            if lifetimes_overlap(req, other.req) {
                candidates.push(other.offset + align_up(other.req.size.max(1), PLAN_ALIGN));
            }
        }
        candidates.sort_unstable();
        let offset = candidates
            .into_iter()
            .find(|&cand| {
                done.iter().all(|&j| {
                    let other = placed[j];
                    !lifetimes_overlap(req, other.req)
                        || !ranges_overlap(
                            cand,
                            size,
                            other.offset,
                            align_up(other.req.size.max(1), PLAN_ALIGN),
                        )
                })
            })
            .ok_or_else(|| {
                RuntimeError::InvalidPlan(format!(
                    "no feasible offset for buffer {i} (size {size})"
                ))
            })?;
        placed[i] = PlannedBuffer { req, offset };
        done.push(i);
    }
    let arena_bytes = placed
        .iter()
        .map(|p| p.offset + align_up(p.req.size.max(1), PLAN_ALIGN))
        .max()
        .unwrap_or(0);
    Ok(MemoryPlan { buffers: placed, arena_bytes })
}

fn lifetimes_overlap(a: BufferReq, b: BufferReq) -> bool {
    a.first_use <= b.last_use && b.first_use <= a.last_use
}

fn ranges_overlap(a_off: usize, a_len: usize, b_off: usize, b_len: usize) -> bool {
    a_off < b_off + b_len && b_off < a_off + a_len
}

/// Builds the activation-buffer requests for a sequential model.
///
/// Buffer 0 is the input; each non-in-place op `i` produces a buffer that
/// lives from step `i` until the next non-in-place consumer. In-place ops
/// (reshape, flatten, dropout-at-inference) extend their input's lifetime
/// instead of allocating.
pub fn activation_requests(artifact: &ModelArtifact) -> Vec<BufferReq> {
    let elem = artifact.activation_elem_bytes();
    let ops = artifact.ops();
    let mut requests = Vec::new();
    // input buffer: produced before step 0
    let mut current = BufferReq { size: artifact.input_len() * elem, first_use: 0, last_use: 0 };
    for (step, op) in ops.iter().enumerate() {
        current.last_use = step;
        if op.in_place {
            continue;
        }
        requests.push(current);
        current = BufferReq { size: op.output_elems * elem, first_use: step, last_use: step + 1 };
    }
    current.last_use = ops.len();
    requests.push(current);
    requests
}

/// Plans the activation arena for a model artifact.
///
/// # Errors
///
/// Propagates [`plan_memory`] failures (which cannot occur for requests
/// produced by [`activation_requests`]).
pub fn plan_model(artifact: &ModelArtifact) -> Result<MemoryPlan> {
    plan_memory(&activation_requests(artifact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_inverted_lifetime() {
        let reqs = [BufferReq { size: 10, first_use: 3, last_use: 1 }];
        assert!(plan_memory(&reqs).is_err());
    }

    #[test]
    fn disjoint_lifetimes_share_memory() {
        let reqs = [
            BufferReq { size: 100, first_use: 0, last_use: 1 },
            BufferReq { size: 100, first_use: 2, last_use: 3 },
        ];
        let plan = plan_memory(&reqs).unwrap();
        assert_eq!(plan.buffers[0].offset, plan.buffers[1].offset);
        assert_eq!(plan.arena_bytes, align_up(100, PLAN_ALIGN));
    }

    #[test]
    fn overlapping_lifetimes_do_not_share() {
        let reqs = [
            BufferReq { size: 100, first_use: 0, last_use: 2 },
            BufferReq { size: 50, first_use: 1, last_use: 3 },
        ];
        let plan = plan_memory(&reqs).unwrap();
        let a = plan.buffers[0];
        let b = plan.buffers[1];
        assert!(!ranges_overlap(
            a.offset,
            align_up(a.req.size, PLAN_ALIGN),
            b.offset,
            align_up(b.req.size, PLAN_ALIGN)
        ));
        assert_eq!(plan.arena_bytes, align_up(100, PLAN_ALIGN) + align_up(50, PLAN_ALIGN));
    }

    #[test]
    fn chain_arena_is_max_adjacent_pair() {
        // a sequential chain: each buffer overlaps only its neighbours, so
        // the arena is the largest sum of adjacent (aligned) pairs
        let sizes = [400usize, 800, 200, 1600, 100];
        let reqs: Vec<BufferReq> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| BufferReq { size: s, first_use: i, last_use: i + 1 })
            .collect();
        let plan = plan_memory(&reqs).unwrap();
        let expected = sizes
            .windows(2)
            .map(|w| align_up(w[0], PLAN_ALIGN) + align_up(w[1], PLAN_ALIGN))
            .max()
            .unwrap();
        assert_eq!(plan.arena_bytes, expected);
    }

    #[test]
    fn empty_plan() {
        let plan = plan_memory(&[]).unwrap();
        assert_eq!(plan.arena_bytes, 0);
    }

    proptest! {
        #[test]
        fn prop_no_live_overlap(
            reqs in proptest::collection::vec(
                (1usize..5000, 0usize..10, 0usize..10).prop_map(|(size, a, b)| BufferReq {
                    size,
                    first_use: a.min(b),
                    last_use: a.max(b),
                }),
                1..25,
            )
        ) {
            let plan = plan_memory(&reqs).unwrap();
            for i in 0..plan.buffers.len() {
                for j in (i + 1)..plan.buffers.len() {
                    let a = plan.buffers[i];
                    let b = plan.buffers[j];
                    if lifetimes_overlap(a.req, b.req) {
                        prop_assert!(
                            !ranges_overlap(
                                a.offset,
                                align_up(a.req.size.max(1), PLAN_ALIGN),
                                b.offset,
                                align_up(b.req.size.max(1), PLAN_ALIGN)
                            ),
                            "buffers {i} and {j} overlap in time and memory"
                        );
                    }
                }
            }
            // arena never smaller than the largest single buffer
            let biggest = reqs.iter().map(|r| align_up(r.size.max(1), PLAN_ALIGN)).max().unwrap();
            prop_assert!(plan.arena_bytes >= biggest);
            // arena never larger than the no-sharing total
            let total: usize = reqs.iter().map(|r| align_up(r.size.max(1), PLAN_ALIGN)).sum();
            prop_assert!(plan.arena_bytes <= total);
        }
    }
}
