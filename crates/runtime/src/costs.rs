//! Deployment cost constants for the two engines.
//!
//! These constants model where the bytes go when a converted model lands on
//! a microcontroller. They are calibrated so that the *relative* movements
//! match paper Table 4 (EON saves roughly 10–35% RAM and 15–45% flash
//! versus the TFLM interpreter across the three tasks); absolute values are
//! representative of a Cortex-M4 `-Os` build.

/// Flash bytes of the TFLM interpreter core (graph walker, allocator,
/// flatbuffer parsing) — removed entirely by EON.
pub const TFLM_INTERPRETER_CODE_BYTES: usize = 26_000;

/// Flash bytes of EON's generated glue (static call sequence, tensor
/// tables baked as constants).
pub const EON_GLUE_CODE_BYTES: usize = 3_500;

/// Serialized-schema overhead the interpreter keeps in flash alongside the
/// raw weights (flatbuffer framing, operator metadata), as a fraction of
/// weight bytes.
pub const TFLM_SCHEMA_OVERHEAD_RATIO: f64 = 0.08;

/// Fixed flatbuffer metadata bytes (model header, subgraph tables).
pub const TFLM_SCHEMA_FIXED_BYTES: usize = 2_048;

/// RAM bytes of the interpreter object itself (MicroInterpreter, allocator
/// state, error reporter).
pub const TFLM_INTERPRETER_RAM_BYTES: usize = 1_024;

/// RAM bytes per tensor for the interpreter's `TfLiteTensor` bookkeeping.
pub const TFLM_TENSOR_STRUCT_BYTES: usize = 64;

/// RAM bytes per graph node (`TfLiteNode` + registration pointers).
pub const TFLM_NODE_STRUCT_BYTES: usize = 48;

/// Persistent scratch the interpreter reserves for kernel workspaces.
pub const TFLM_SCRATCH_RAM_BYTES: usize = 2_048;

/// RAM bytes of EON's static state (a few pointers and counters).
pub const EON_STATIC_RAM_BYTES: usize = 256;

/// Safety margin applied on top of the planned arena when reporting RAM.
///
/// Real arenas carry kernel temporaries (im2col/column buffers,
/// requantization tables) and alignment slack beyond the planner's
/// optimal packing; Edge Impulse's own guidance is to size the static
/// arena ~20–25% above the estimate. Both engines apply the same margin,
/// so engine-to-engine comparisons are unaffected.
pub const ARENA_SAFETY_MARGIN_RATIO: f64 = 0.25;

/// Applies [`ARENA_SAFETY_MARGIN_RATIO`] to a planned arena size.
pub fn padded_arena_bytes(planned: usize) -> usize {
    planned + (planned as f64 * ARENA_SAFETY_MARGIN_RATIO) as usize
}

/// Kernel code-size multiplier for the interpreter: TFLM kernels are
/// generic over dtypes/shapes, EON links specialized variants.
pub const TFLM_KERNEL_CODE_FACTOR: f64 = 1.5;

/// Flash bytes of one specialized kernel per op kind (EON baseline; the
/// interpreter multiplies by [`TFLM_KERNEL_CODE_FACTOR`]).
pub fn kernel_code_bytes(op_name: &str) -> usize {
    match op_name {
        "conv2d" => 7_168,
        "depthwise_conv2d" => 5_120,
        "conv1d" => 4_096,
        "dense" => 2_048,
        "max_pool" | "avg_pool" => 1_536,
        "global_avg_pool" => 1_024,
        "softmax" => 1_024,
        "batch_norm" => 1_536,
        "reshape" | "flatten" | "dropout" => 256,
        _ => 1_024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the modeled-cost invariant
    fn interpreter_code_dwarfs_eon_glue() {
        assert!(TFLM_INTERPRETER_CODE_BYTES > 5 * EON_GLUE_CODE_BYTES);
    }

    #[test]
    fn conv_kernels_cost_more_than_reshape() {
        assert!(kernel_code_bytes("conv2d") > kernel_code_bytes("dense"));
        assert!(kernel_code_bytes("dense") > kernel_code_bytes("reshape"));
        assert_eq!(kernel_code_bytes("unknown_op"), 1_024);
    }
}
