//! Error type for runtime construction and execution.

use std::fmt;

/// Errors produced by the inference runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The input buffer did not match the model's input size.
    InputLengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// An op required by the model is missing from the interpreter registry.
    MissingKernel(String),
    /// The memory planner was given inconsistent buffer lifetimes.
    InvalidPlan(String),
    /// An upstream model error.
    Model(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputLengthMismatch { expected, actual } => {
                write!(f, "input length mismatch: expected {expected}, got {actual}")
            }
            RuntimeError::MissingKernel(op) => write!(f, "no kernel registered for op {op}"),
            RuntimeError::InvalidPlan(msg) => write!(f, "invalid memory plan: {msg}"),
            RuntimeError::Model(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ei_nn::NnError> for RuntimeError {
    fn from(e: ei_nn::NnError) -> Self {
        RuntimeError::Model(e.to_string())
    }
}

impl From<ei_quant::QuantError> for RuntimeError {
    fn from(e: ei_quant::QuantError) -> Self {
        RuntimeError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = ei_nn::NnError::InvalidTrainingData("x".into()).into();
        assert!(matches!(e, RuntimeError::Model(_)));
        assert!(RuntimeError::MissingKernel("conv2d".into()).to_string().contains("conv2d"));
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<RuntimeError>();
    }
}
