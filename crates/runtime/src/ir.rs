//! Deployable model artifacts and per-op resource metadata.

use ei_nn::layers::conv::{Conv1dGeom, Conv2dGeom};
use ei_nn::spec::{Dims, LayerSpec};
use ei_nn::Sequential;
use ei_quant::QuantizedModel;

use crate::{Result, RuntimeError};

/// Per-op resource metadata derived from a model, independent of engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Kernel-style op name (e.g. `"conv2d"`).
    pub name: &'static str,
    /// Multiply–accumulate count of one execution.
    pub macs: u64,
    /// Parameter bytes stored in flash for this op.
    pub weight_bytes: usize,
    /// Input activation element count.
    pub input_elems: usize,
    /// Output activation element count.
    pub output_elems: usize,
    /// `true` for ops that alias their input buffer (no new activation).
    pub in_place: bool,
}

/// MAC count of an op given its spec and input dimensions.
pub fn op_macs(spec: &LayerSpec, input: Dims) -> u64 {
    match spec {
        LayerSpec::Dense { units, .. } => (input.len() * units) as u64,
        LayerSpec::Conv1d { filters, kernel, stride, padding, .. } => Conv1dGeom {
            in_w: input.w,
            in_c: input.c,
            out_c: *filters,
            kernel: *kernel,
            stride: *stride,
            padding: *padding,
        }
        .macs(),
        LayerSpec::Conv2d { filters, kernel, stride, padding, .. } => Conv2dGeom {
            in_h: input.h,
            in_w: input.w,
            in_c: input.c,
            out_c: *filters,
            kernel_h: *kernel,
            kernel_w: *kernel,
            stride: *stride,
            padding: *padding,
        }
        .macs(),
        LayerSpec::Conv2dRect { filters, kernel_h, kernel_w, stride, padding, .. } => Conv2dGeom {
            in_h: input.h,
            in_w: input.w,
            in_c: input.c,
            out_c: *filters,
            kernel_h: *kernel_h,
            kernel_w: *kernel_w,
            stride: *stride,
            padding: *padding,
        }
        .macs(),
        LayerSpec::DepthwiseConv2d { kernel, stride, padding, .. } => {
            ei_nn::layers::conv::depthwise_macs(Conv2dGeom {
                in_h: input.h,
                in_w: input.w,
                in_c: input.c,
                out_c: input.c,
                kernel_h: *kernel,
                kernel_w: *kernel,
                stride: *stride,
                padding: *padding,
            })
        }
        LayerSpec::MaxPool { .. } | LayerSpec::AvgPool { .. } | LayerSpec::GlobalAvgPool => {
            input.len() as u64
        }
        LayerSpec::BatchNorm => input.len() as u64 * 2,
        LayerSpec::Softmax => input.len() as u64 * 4,
        LayerSpec::Reshape { .. } | LayerSpec::Flatten | LayerSpec::Dropout { .. } => 0,
    }
}

/// Whether an op aliases its input buffer instead of producing a new one.
pub fn op_in_place(spec: &LayerSpec) -> bool {
    matches!(spec, LayerSpec::Reshape { .. } | LayerSpec::Flatten | LayerSpec::Dropout { .. })
}

/// A deployable model: trained float weights or a fully int8 artifact.
///
/// This is what the platform's deployment stage converts and what both
/// engines execute.
#[derive(Debug, Clone)]
pub enum ModelArtifact {
    /// float32 weights and activations.
    Float(Sequential),
    /// Fully int8 weights and activations.
    Int8(QuantizedModel),
}

impl ModelArtifact {
    /// Architecture name.
    pub fn name(&self) -> &str {
        match self {
            ModelArtifact::Float(m) => &m.spec().name,
            ModelArtifact::Int8(m) => m.name(),
        }
    }

    /// `true` for the quantized variant.
    pub fn is_quantized(&self) -> bool {
        matches!(self, ModelArtifact::Int8(_))
    }

    /// Bytes per activation element (4 for float, 1 for int8).
    pub fn activation_elem_bytes(&self) -> usize {
        if self.is_quantized() {
            1
        } else {
            4
        }
    }

    /// Input element count.
    pub fn input_len(&self) -> usize {
        match self {
            ModelArtifact::Float(m) => m.input_dims().len(),
            ModelArtifact::Int8(m) => m.input_dims().len(),
        }
    }

    /// Output element count.
    pub fn output_len(&self) -> usize {
        match self {
            ModelArtifact::Float(m) => m.output_dims().len(),
            ModelArtifact::Int8(m) => m.output_dims().len(),
        }
    }

    /// Total parameter bytes as stored in flash.
    pub fn weight_bytes(&self) -> usize {
        match self {
            ModelArtifact::Float(m) => m.param_count() * 4,
            ModelArtifact::Int8(m) => m.weight_bytes(),
        }
    }

    /// Per-op metadata in execution order.
    pub fn ops(&self) -> Vec<OpInfo> {
        match self {
            ModelArtifact::Float(m) => m
                .layers()
                .iter()
                .map(|l| OpInfo {
                    name: l.spec.op_name(),
                    macs: op_macs(&l.spec, l.input),
                    weight_bytes: l.param_count() * 4,
                    input_elems: l.input.len(),
                    output_elems: l.output.len(),
                    in_place: op_in_place(&l.spec),
                })
                .collect(),
            ModelArtifact::Int8(m) => m
                .layers()
                .iter()
                .map(|l| OpInfo {
                    name: l.spec.op_name(),
                    macs: op_macs(&l.spec, l.input),
                    weight_bytes: l.weight_bytes(),
                    input_elems: l.input.len(),
                    output_elems: l.output.len(),
                    in_place: op_in_place(&l.spec),
                })
                .collect(),
        }
    }

    /// Distinct op kinds used (for kernel linking / dead-code elimination).
    pub fn op_kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = self.ops().iter().map(|o| o.name).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// Executes the artifact directly (reference path, no engine
    /// bookkeeping).
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized input.
    pub fn run_reference(&self, input: &[f32]) -> Result<Vec<f32>> {
        match self {
            ModelArtifact::Float(m) => m.forward(input).map_err(RuntimeError::from),
            ModelArtifact::Int8(m) => m.forward(input).map_err(RuntimeError::from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_nn::spec::{Activation, ModelSpec, Padding};

    fn float_model() -> Sequential {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .named("test-cnn")
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool { size: 2 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        Sequential::build(&spec, 7).unwrap()
    }

    #[test]
    fn float_artifact_metadata() {
        let model = float_model();
        let artifact = ModelArtifact::Float(model.clone());
        assert_eq!(artifact.name(), "test-cnn");
        assert!(!artifact.is_quantized());
        assert_eq!(artifact.activation_elem_bytes(), 4);
        assert_eq!(artifact.input_len(), 64);
        assert_eq!(artifact.output_len(), 3);
        assert_eq!(artifact.weight_bytes(), model.param_count() * 4);
        let ops = artifact.ops();
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[0].name, "conv2d");
        assert!(ops[2].in_place, "flatten is in-place");
        // op macs agree with the model's own accounting
        let total: u64 = ops.iter().map(|o| o.macs).sum();
        assert_eq!(total, model.macs());
    }

    #[test]
    fn int8_artifact_smaller() {
        let model = float_model();
        let calib = vec![vec![0.2f32; 64], vec![-0.3f32; 64]];
        let qmodel = ei_quant::quantize_model(&model, &calib).unwrap();
        let fa = ModelArtifact::Float(model);
        let qa = ModelArtifact::Int8(qmodel);
        assert!(qa.weight_bytes() < fa.weight_bytes() / 3);
        assert_eq!(qa.activation_elem_bytes(), 1);
        assert_eq!(qa.ops().len(), fa.ops().len());
    }

    #[test]
    fn op_kinds_deduplicated() {
        let artifact = ModelArtifact::Float(float_model());
        let kinds = artifact.op_kinds();
        assert!(kinds.contains(&"conv2d"));
        assert!(kinds.contains(&"dense"));
        let mut sorted = kinds.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }

    #[test]
    fn reference_run_matches_model() {
        let model = float_model();
        let artifact = ModelArtifact::Float(model.clone());
        let input = vec![0.25f32; 64];
        assert_eq!(artifact.run_reference(&input).unwrap(), model.forward(&input).unwrap());
        assert!(artifact.run_reference(&[0.0; 3]).is_err());
    }
}
