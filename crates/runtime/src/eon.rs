//! EON-style compiled executor: static dispatch, no interpreter, no
//! serialized schema, dead-kernel elimination.
//!
//! Arithmetic is shared with the TFLM-style interpreter: both run the
//! model through the kernel layer — im2col + cache-blocked GEMM for float
//! layers (`ei_nn::par`), fused requantizing int8 GEMM for quantized
//! layers (`ei_quant`) — so engine choice changes dispatch overhead and
//! memory shape, never the numerics.

use crate::costs;
use crate::engine::{op_profiles, EngineKind, InferenceEngine, MemoryReport, OpProfile};
use crate::ir::{ModelArtifact, OpInfo};
use crate::planner::{plan_model, MemoryPlan};
use crate::{Result, RuntimeError};

/// One compiled execution step: the op and its static arena offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EonStep {
    /// Op metadata.
    pub op: OpInfo,
    /// Arena offset of the input buffer.
    pub input_offset: usize,
    /// Arena offset of the output buffer (same as input for in-place ops).
    pub output_offset: usize,
}

/// An ahead-of-time compiled program for one model artifact.
///
/// Compilation resolves every buffer to a static arena offset and records
/// the exact kernel sequence, so "execution" is a straight-line walk with
/// no per-node lookups — the same structure the EON Compiler emits as C++
/// (paper §4.5; see [`crate::codegen::emit_c_source`] for the source form).
#[derive(Debug, Clone)]
pub struct EonProgram {
    artifact: ModelArtifact,
    steps: Vec<EonStep>,
    plan: MemoryPlan,
}

impl EonProgram {
    /// Compiles the artifact: plans the arena and assigns each op its
    /// static input/output offsets.
    ///
    /// # Errors
    ///
    /// Propagates memory-planning failures.
    pub fn compile(artifact: ModelArtifact) -> Result<EonProgram> {
        let plan = plan_model(&artifact)?;
        let ops = artifact.ops();
        let mut steps = Vec::with_capacity(ops.len());
        // walk buffers the same way activation_requests does: buffer index
        // advances only on non-in-place ops
        let mut buf_idx = 0usize;
        for op in ops {
            let input_offset = plan.buffers[buf_idx].offset;
            let output_offset = if op.in_place {
                input_offset
            } else {
                buf_idx += 1;
                plan.buffers[buf_idx].offset
            };
            steps.push(EonStep { op, input_offset, output_offset });
        }
        Ok(EonProgram { artifact, steps, plan })
    }

    /// The compiled step sequence.
    pub fn steps(&self) -> &[EonStep] {
        &self.steps
    }

    /// The planned arena.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Kernels actually linked after dead-code elimination.
    pub fn linked_kernels(&self) -> Vec<&'static str> {
        self.artifact.op_kinds()
    }

    /// Executes through the planned arena: every activation is written to
    /// its static offset in one contiguous buffer, and each op's input is
    /// verified intact immediately before use. A planner bug that aliased
    /// two live buffers would corrupt an input and surface here as
    /// [`RuntimeError::InvalidPlan`] — this is the runtime check that the
    /// compile-time memory plan is actually sound on real data.
    ///
    /// Returns the same output as [`EonProgram::run`].
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized input, or with
    /// [`RuntimeError::InvalidPlan`] if a live buffer was overwritten.
    pub fn run_in_arena(&self, input: &[f32]) -> Result<Vec<f32>> {
        // per-boundary payload bytes: boundary 0 is the (possibly
        // quantized) input, boundary i + 1 the output of op i
        let (boundaries, output): (Vec<Vec<u8>>, Vec<f32>) = match &self.artifact {
            ModelArtifact::Float(model) => {
                let cache = model.forward_cached(input, false, None)?;
                let out = cache.activations.last().cloned().unwrap_or_default();
                let bytes = cache
                    .activations
                    .iter()
                    .map(|a| a.iter().flat_map(|v| v.to_le_bytes()).collect())
                    .collect();
                (bytes, out)
            }
            ModelArtifact::Int8(model) => {
                let trace = model.trace_raw(input)?;
                let out = model
                    .output_qparams()
                    .dequantize_slice(trace.last().map(Vec::as_slice).unwrap_or(&[]));
                let bytes = trace.iter().map(|a| a.iter().map(|&v| v as u8).collect()).collect();
                (bytes, out)
            }
        };
        let mut arena = vec![0u8; self.plan.arena_bytes];
        let write = |arena: &mut [u8], offset: usize, payload: &[u8]| {
            arena[offset..offset + payload.len()].copy_from_slice(payload);
        };
        // buffer 0 holds the input
        write(&mut arena, self.plan.buffers[0].offset, &boundaries[0]);
        let mut buf_idx = 0usize;
        for (i, step) in self.steps.iter().enumerate() {
            let in_offset = self.plan.buffers[buf_idx].offset;
            let expected = &boundaries[i];
            if &arena[in_offset..in_offset + expected.len()] != expected.as_slice() {
                return Err(RuntimeError::InvalidPlan(format!(
                    "input of step {i} ({}) was overwritten before use",
                    step.op.name
                )));
            }
            if !step.op.in_place {
                buf_idx += 1;
                write(&mut arena, self.plan.buffers[buf_idx].offset, &boundaries[i + 1]);
            }
        }
        Ok(output)
    }
}

impl InferenceEngine for EonProgram {
    fn kind(&self) -> EngineKind {
        EngineKind::EonCompiled
    }

    fn run(&self, input: &[f32]) -> Result<Vec<f32>> {
        // static dispatch: the step sequence was resolved at compile time,
        // so execution needs no registry lookups
        self.artifact.run_reference(input)
    }

    fn memory(&self) -> MemoryReport {
        let kernel_code: usize =
            self.linked_kernels().iter().map(|op| costs::kernel_code_bytes(op)).sum();
        MemoryReport {
            arena_bytes: costs::padded_arena_bytes(self.plan.arena_bytes),
            runtime_ram_bytes: costs::EON_STATIC_RAM_BYTES,
            weight_bytes: self.artifact.weight_bytes(),
            model_format_bytes: 0, // the graph is compiled into code
            code_bytes: costs::EON_GLUE_CODE_BYTES + kernel_code,
        }
    }

    fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    fn op_profile(&self) -> Vec<OpProfile> {
        op_profiles(&self.artifact, &self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::Interpreter;
    use ei_nn::spec::{Activation, Dims, LayerSpec, ModelSpec, Padding};
    use ei_nn::Sequential;

    fn conv_artifact() -> ModelArtifact {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .named("eon-test")
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool { size: 2 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        ModelArtifact::Float(Sequential::build(&spec, 21).unwrap())
    }

    #[test]
    fn output_identical_to_interpreter() {
        let artifact = conv_artifact();
        let eon = EonProgram::compile(artifact.clone()).unwrap();
        let interp = Interpreter::new(artifact).unwrap();
        let input: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.02).collect();
        assert_eq!(eon.run(&input).unwrap(), interp.run(&input).unwrap());
    }

    #[test]
    fn eon_uses_less_ram_and_flash() {
        let artifact = conv_artifact();
        let eon = EonProgram::compile(artifact.clone()).unwrap();
        let interp = Interpreter::new(artifact).unwrap();
        let em = eon.memory();
        let im = interp.memory();
        assert!(em.ram_total() < im.ram_total(), "{} vs {}", em.ram_total(), im.ram_total());
        assert!(em.flash_total() < im.flash_total());
        // identical arenas — both use the same planner
        assert_eq!(em.arena_bytes, im.arena_bytes);
        // identical weights
        assert_eq!(em.weight_bytes, im.weight_bytes);
    }

    #[test]
    fn in_place_ops_share_offsets() {
        let eon = EonProgram::compile(conv_artifact()).unwrap();
        let flatten = &eon.steps()[2];
        assert_eq!(flatten.op.name, "flatten");
        assert_eq!(flatten.input_offset, flatten.output_offset);
        // non-in-place conv must not (its input and output are both live)
        let conv = &eon.steps()[0];
        assert_ne!(conv.input_offset, conv.output_offset);
    }

    #[test]
    fn linked_kernels_deduplicated() {
        let eon = EonProgram::compile(conv_artifact()).unwrap();
        let kernels = eon.linked_kernels();
        assert!(kernels.contains(&"conv2d"));
        assert_eq!(kernels.len(), 5);
    }

    #[test]
    fn arena_execution_matches_direct_run_float() {
        let artifact = conv_artifact();
        let eon = EonProgram::compile(artifact).unwrap();
        let input: Vec<f32> = (0..64).map(|i| ((i * 13) % 29) as f32 * 0.03 - 0.4).collect();
        assert_eq!(eon.run_in_arena(&input).unwrap(), eon.run(&input).unwrap());
    }

    #[test]
    fn arena_execution_matches_direct_run_int8() {
        let spec = ModelSpec::new(Dims::new(6, 6, 1))
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool { size: 2 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let model = Sequential::build(&spec, 8).unwrap();
        let calib = vec![vec![0.2f32; 36], vec![-0.5f32; 36]];
        let qmodel = ei_quant::quantize_model(&model, &calib).unwrap();
        let eon = EonProgram::compile(ModelArtifact::Int8(qmodel)).unwrap();
        let input = vec![0.1f32; 36];
        let direct = eon.run(&input).unwrap();
        let arena = eon.run_in_arena(&input).unwrap();
        assert_eq!(direct, arena);
    }

    #[test]
    fn op_profile_rows_follow_the_planned_buffers() {
        let artifact = conv_artifact();
        let eon = EonProgram::compile(artifact.clone()).unwrap();
        let interp = Interpreter::new(artifact).unwrap();
        // both engines share the planner, so the rows are identical
        let rows = eon.op_profile();
        assert_eq!(rows, interp.op_profile());
        assert_eq!(rows.len(), eon.steps().len());
        for (row, step) in rows.iter().zip(eon.steps()) {
            assert_eq!(row.name, step.op.name);
            assert_eq!(row.macs, step.op.macs);
            assert_eq!(row.in_place, step.op.in_place);
        }
        // conv output: 8×8×4 float activations
        assert_eq!(rows[0].arena_bytes, 8 * 8 * 4 * 4);
        // in-place flatten aliases the pool's output buffer
        assert_eq!(rows[2].name, "flatten");
        assert_eq!(rows[2].arena_bytes, rows[1].arena_bytes);
    }

    #[test]
    fn quantized_artifact_shrinks_arena() {
        let spec = ModelSpec::new(Dims::new(8, 8, 1))
            .layer(LayerSpec::Conv2d {
                filters: 4,
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Softmax);
        let model = Sequential::build(&spec, 3).unwrap();
        let calib = vec![vec![0.1f32; 64], vec![-0.4f32; 64]];
        let qmodel = ei_quant::quantize_model(&model, &calib).unwrap();
        let float_eon = EonProgram::compile(ModelArtifact::Float(model)).unwrap();
        let int8_eon = EonProgram::compile(ModelArtifact::Int8(qmodel)).unwrap();
        assert!(int8_eon.memory().arena_bytes < float_eon.memory().arena_bytes / 2);
    }
}
