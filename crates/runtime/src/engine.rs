//! The engine abstraction shared by the interpreter and EON executor.

use crate::ir::ModelArtifact;
use crate::planner::MemoryPlan;
use crate::Result;

/// Which execution engine produced a result or report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// TFLite-Micro-style interpreter (dynamic dispatch, schema in flash).
    TflmInterpreter,
    /// EON-style ahead-of-time compiled program (static dispatch).
    EonCompiled,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::TflmInterpreter => f.write_str("TFLM"),
            EngineKind::EonCompiled => f.write_str("EON"),
        }
    }
}

/// Byte-accurate deployment footprint of an engine + model pair.
///
/// `RAM = arena + runtime state`; `flash = weights + model format + code`.
/// These are the numbers paper Table 4 compares across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryReport {
    /// Activation tensor arena (planned, aligned).
    pub arena_bytes: usize,
    /// Engine bookkeeping RAM (interpreter structs, scratch, statics).
    pub runtime_ram_bytes: usize,
    /// Raw parameter bytes in flash.
    pub weight_bytes: usize,
    /// Serialized model-format overhead in flash (flatbuffer schema for the
    /// interpreter; zero for EON, whose graph is baked into code).
    pub model_format_bytes: usize,
    /// Engine + kernel code bytes in flash.
    pub code_bytes: usize,
}

impl MemoryReport {
    /// Total RAM requirement in bytes.
    pub fn ram_total(&self) -> usize {
        self.arena_bytes + self.runtime_ram_bytes
    }

    /// Total flash requirement in bytes.
    pub fn flash_total(&self) -> usize {
        self.weight_bytes + self.model_format_bytes + self.code_bytes
    }
}

/// Static per-op execution profile: the op's compute cost plus the planned
/// activation buffer it writes into.
///
/// This is the engine-side half of the per-layer breakdown the profiler
/// (and the Studio's per-layer timing view) renders: MACs and weight bytes
/// come from the op metadata, arena bytes from the memory plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Kernel-style op name (e.g. `"conv2d"`).
    pub name: &'static str,
    /// Multiply–accumulate count of one execution.
    pub macs: u64,
    /// Parameter bytes this op reads from flash.
    pub weight_bytes: usize,
    /// Size in bytes of the planned output activation buffer.
    pub arena_bytes: usize,
    /// `true` for ops that alias their input buffer.
    pub in_place: bool,
}

/// Builds the per-op profile rows from an artifact and its memory plan,
/// walking planned buffers the same way compilation does: the buffer index
/// advances only on non-in-place ops.
pub(crate) fn op_profiles(artifact: &ModelArtifact, plan: &MemoryPlan) -> Vec<OpProfile> {
    let mut buf_idx = 0usize;
    artifact
        .ops()
        .into_iter()
        .map(|op| {
            if !op.in_place {
                buf_idx += 1;
            }
            OpProfile {
                name: op.name,
                macs: op.macs,
                weight_bytes: op.weight_bytes,
                arena_bytes: plan.buffers[buf_idx].req.size,
                in_place: op.in_place,
            }
        })
        .collect()
}

/// A model execution engine.
///
/// Implementations must return bit-identical outputs for the same
/// [`ModelArtifact`] — engines differ in dispatch and footprint only.
pub trait InferenceEngine {
    /// The engine variant.
    fn kind(&self) -> EngineKind;

    /// Runs one inference.
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized input or (interpreter only) missing kernels.
    fn run(&self, input: &[f32]) -> Result<Vec<f32>>;

    /// Deployment memory footprint.
    fn memory(&self) -> MemoryReport;

    /// The artifact this engine executes.
    fn artifact(&self) -> &ModelArtifact;

    /// Per-op execution profile in graph order: compute cost plus the
    /// planned arena buffer each op writes. Both engines report the same
    /// rows — they share the memory planner — so downstream latency
    /// breakdowns differ only in the per-op dispatch cost.
    fn op_profile(&self) -> Vec<OpProfile>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = MemoryReport {
            arena_bytes: 100,
            runtime_ram_bytes: 20,
            weight_bytes: 1000,
            model_format_bytes: 80,
            code_bytes: 500,
        };
        assert_eq!(r.ram_total(), 120);
        assert_eq!(r.flash_total(), 1580);
    }

    #[test]
    fn kind_display() {
        assert_eq!(EngineKind::TflmInterpreter.to_string(), "TFLM");
        assert_eq!(EngineKind::EonCompiled.to_string(), "EON");
    }
}
