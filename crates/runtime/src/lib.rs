#![warn(missing_docs)]

//! Inference runtimes for `edgelab`: a TFLM-style interpreter and the
//! EON-style compiled executor, with byte-accurate memory accounting.
//!
//! Edge Impulse ships two ways to execute a converted model (paper §4.5):
//!
//! * the **TFLite-Micro interpreter** — a generic graph walker that keeps
//!   per-tensor/per-node bookkeeping structures in RAM and carries the
//!   interpreter code plus a serialized model schema in flash;
//! * the **EON Compiler** — ahead-of-time code generation that "eliminates
//!   the need for the TFLM interpreter by generating code that directly
//!   calls the underlying kernels and enables the linker to eliminate
//!   unused instructions", cutting RAM and flash (paper Table 4).
//!
//! This crate rebuilds both:
//!
//! * [`ir::ModelArtifact`] — a deployable model (float or fully int8) with
//!   per-op resource metadata;
//! * [`planner`] — the greedy-by-size arena memory planner that assigns
//!   static offsets to activation buffers (what both engines use to size
//!   the tensor arena);
//! * [`interpreter::Interpreter`] — dynamic dispatch through an op
//!   registry, with the interpreter's RAM/flash overheads modeled from
//!   [`costs`];
//! * [`eon::EonProgram`] — a precompiled execution plan with static
//!   dispatch and dead-kernel elimination, plus
//!   [`codegen::emit_c_source`], which renders the plan as a standalone
//!   C translation unit (what the platform actually ships to firmware).
//!
//! Both engines produce bit-identical outputs to the underlying model;
//! they differ only in dispatch style and memory footprint — exactly the
//! comparison paper §5.3 makes.

pub mod codegen;
pub mod costs;
pub mod engine;
pub mod eon;
pub mod error;
pub mod interpreter;
pub mod ir;
pub mod planner;

pub use engine::{EngineKind, InferenceEngine, MemoryReport, OpProfile};
pub use eon::EonProgram;
pub use error::RuntimeError;
pub use interpreter::Interpreter;
pub use ir::{ModelArtifact, OpInfo};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
