//! K-means clustering with k-means++ seeding and distance-based anomaly
//! scores.

use crate::{AnomalyError, Result};
use ei_tensor::ops::squared_distance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 8, max_iters: 50, seed: 0 }
    }
}

/// A fitted K-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
    /// Mean member distance per cluster (the "radius" used to normalize
    /// anomaly scores).
    radii: Vec<f32>,
    dims: usize,
}

impl KMeans {
    /// Fits the model on rows of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::InvalidTrainingData`] for empty data, ragged
    /// rows, `k == 0`, or fewer rows than clusters.
    pub fn fit(data: &[Vec<f32>], config: KMeansConfig) -> Result<KMeans> {
        if config.k == 0 {
            return Err(AnomalyError::InvalidTrainingData("k must be non-zero".into()));
        }
        if data.len() < config.k {
            return Err(AnomalyError::InvalidTrainingData(format!(
                "{} rows cannot form {} clusters",
                data.len(),
                config.k
            )));
        }
        let dims = data[0].len();
        if dims == 0 || data.iter().any(|r| r.len() != dims) {
            return Err(AnomalyError::InvalidTrainingData("ragged or empty rows".into()));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // k-means++ seeding
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(config.k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        while centroids.len() < config.k {
            let weights: Vec<f32> = data
                .iter()
                .map(|row| {
                    centroids.iter().map(|c| squared_distance(row, c)).fold(f32::INFINITY, f32::min)
                })
                .collect();
            let total: f32 = weights.iter().sum();
            if total <= f32::EPSILON {
                // all residual points coincide with centroids: duplicate one
                centroids.push(data[rng.gen_range(0..data.len())].clone());
                continue;
            }
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if pick <= w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            centroids.push(data[chosen].clone());
        }

        // Lloyd iterations
        let mut assignment = vec![0usize; data.len()];
        for _ in 0..config.max_iters {
            let mut changed = false;
            for (i, row) in data.iter().enumerate() {
                let best = nearest(&centroids, row).0;
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // recompute centroids
            let mut sums = vec![vec![0.0f32; dims]; config.k];
            let mut counts = vec![0usize; config.k];
            for (row, &a) in data.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(row) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cv, &s) in c.iter_mut().zip(sum) {
                        *cv = s / count as f32;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // radii: mean member distance (fallback: global mean distance)
        let mut dist_sums = vec![0.0f32; config.k];
        let mut counts = vec![0usize; config.k];
        for (row, &a) in data.iter().zip(&assignment) {
            dist_sums[a] += squared_distance(row, &centroids[a]).sqrt();
            counts[a] += 1;
        }
        let global = dist_sums.iter().sum::<f32>() / counts.iter().sum::<usize>().max(1) as f32;
        let radii: Vec<f32> = dist_sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { (s / c as f32).max(1e-6) } else { global.max(1e-6) })
            .collect();

        Ok(KMeans { centroids, radii, dims })
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Index of the nearest cluster for a point.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized points.
    pub fn predict(&self, point: &[f32]) -> Result<usize> {
        self.check(point)?;
        Ok(nearest(&self.centroids, point).0)
    }

    /// Anomaly score: distance to the nearest centroid divided by that
    /// cluster's mean member distance. Roughly, ≤1 is inlier territory and
    /// values well above 1 are anomalous.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized points.
    pub fn anomaly_score(&self, point: &[f32]) -> Result<f32> {
        self.check(point)?;
        let (idx, d2) = nearest(&self.centroids, point);
        Ok(d2.sqrt() / self.radii[idx])
    }

    /// Total within-cluster squared distance of a dataset under this model.
    pub fn inertia(&self, data: &[Vec<f32>]) -> f32 {
        data.iter().map(|row| nearest(&self.centroids, row).1).sum()
    }

    fn check(&self, point: &[f32]) -> Result<()> {
        if point.len() != self.dims {
            return Err(AnomalyError::DimensionMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        Ok(())
    }
}

/// `(index, squared distance)` of the closest centroid.
fn nearest(centroids: &[Vec<f32>], point: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::{prop_assert, proptest, ProptestConfig};

    fn blobs(seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for center in [[0.0f32, 0.0], [10.0, 10.0], [0.0, 10.0]] {
            for _ in 0..30 {
                data.push(vec![
                    center[0] + rng.gen_range(-0.5f32..0.5),
                    center[1] + rng.gen_range(-0.5f32..0.5),
                ]);
            }
        }
        data
    }

    #[test]
    fn fit_validation() {
        assert!(KMeans::fit(&[], KMeansConfig::default()).is_err());
        assert!(KMeans::fit(&[vec![1.0]], KMeansConfig { k: 0, ..Default::default() }).is_err());
        assert!(KMeans::fit(&[vec![1.0]], KMeansConfig { k: 2, ..Default::default() }).is_err());
        assert!(KMeans::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            KMeansConfig { k: 1, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn recovers_three_blobs() {
        let data = blobs(1);
        let model = KMeans::fit(&data, KMeansConfig { k: 3, ..Default::default() }).unwrap();
        // every centroid is near one of the true centers
        for c in model.centroids() {
            let near = [[0.0f32, 0.0], [10.0, 10.0], [0.0, 10.0]]
                .iter()
                .any(|t| squared_distance(c, t) < 1.0);
            assert!(near, "centroid {c:?} far from every blob");
        }
        // and all points assign to their own blob consistently
        let a = model.predict(&[0.1, -0.1]).unwrap();
        let b = model.predict(&[0.2, 0.3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn anomaly_scores_separate_outliers() {
        let data = blobs(2);
        let model = KMeans::fit(&data, KMeansConfig { k: 3, ..Default::default() }).unwrap();
        let inlier = model.anomaly_score(&[0.1, 0.1]).unwrap();
        let outlier = model.anomaly_score(&[5.0, 5.0]).unwrap();
        assert!(inlier < 2.0, "inlier score {inlier}");
        assert!(outlier > 5.0 * inlier.max(0.1), "outlier score {outlier} vs {inlier}");
    }

    #[test]
    fn predict_dimension_checked() {
        let data = blobs(3);
        let model = KMeans::fit(&data, KMeansConfig { k: 2, ..Default::default() }).unwrap();
        assert!(model.predict(&[1.0]).is_err());
        assert!(model.anomaly_score(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(4);
        let cfg = KMeansConfig { k: 3, seed: 9, ..Default::default() };
        let a = KMeans::fit(&data, cfg).unwrap();
        let b = KMeans::fit(&data, cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_handled() {
        let data = vec![vec![1.0, 1.0]; 10];
        let model = KMeans::fit(&data, KMeansConfig { k: 3, ..Default::default() }).unwrap();
        assert_eq!(model.centroids().len(), 3);
        assert!(model.anomaly_score(&[1.0, 1.0]).unwrap() < 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_more_clusters_never_increase_inertia(seed in 0u64..50) {
            let data = blobs(seed);
            let i2 = KMeans::fit(&data, KMeansConfig { k: 2, seed, ..Default::default() })
                .unwrap()
                .inertia(&data);
            let i6 = KMeans::fit(&data, KMeansConfig { k: 6, seed, ..Default::default() })
                .unwrap()
                .inertia(&data);
            // k-means++ with Lloyd refinement: more clusters should not be
            // substantially worse
            prop_assert!(i6 <= i2 * 1.05, "k=6 inertia {i6} vs k=2 {i2}");
        }
    }
}
