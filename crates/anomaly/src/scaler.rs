//! Per-dimension feature standardization.
//!
//! Spectral features mix scales wildly (log-energies near −23 for silent
//! bands, RMS values near 1), so raw Euclidean distance is dominated by
//! whichever dimensions happen to be loudest. The platform's anomaly block
//! standardizes features before clustering; [`Standardizer`] reproduces
//! that: `z = (x − μ) / σ` with per-dimension statistics from the
//! training (normal) data.

use crate::{AnomalyError, Result};

/// Fitted per-dimension mean/standard-deviation scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Standardizer {
    /// Fits the scaler on rows of equal length.
    ///
    /// Dimensions with (near-)zero variance get a unit scale so they pass
    /// through unchanged (centered).
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::InvalidTrainingData`] for empty data or
    /// ragged rows.
    pub fn fit(data: &[Vec<f32>]) -> Result<Standardizer> {
        if data.is_empty() {
            return Err(AnomalyError::InvalidTrainingData("scaler needs data".into()));
        }
        let dims = data[0].len();
        if dims == 0 || data.iter().any(|r| r.len() != dims) {
            return Err(AnomalyError::InvalidTrainingData("ragged or empty rows".into()));
        }
        let n = data.len() as f32;
        let means: Vec<f32> =
            (0..dims).map(|d| data.iter().map(|r| r[d]).sum::<f32>() / n).collect();
        let stds: Vec<f32> = (0..dims)
            .map(|d| {
                let var = data.iter().map(|r| (r[d] - means[d]).powi(2)).sum::<f32>() / n;
                let std = var.sqrt();
                if std < 1e-6 {
                    1.0
                } else {
                    std
                }
            })
            .collect();
        Ok(Standardizer { means, stds })
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one row.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized rows.
    pub fn transform(&self, row: &[f32]) -> Result<Vec<f32>> {
        if row.len() != self.means.len() {
            return Err(AnomalyError::DimensionMismatch {
                expected: self.means.len(),
                actual: row.len(),
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect())
    }

    /// Standardizes many rows.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized rows.
    pub fn transform_all(&self, data: &[Vec<f32>]) -> Result<Vec<Vec<f32>>> {
        data.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let data: Vec<Vec<f32>> =
            (0..100).map(|i| vec![i as f32, 1000.0 + 10.0 * i as f32]).collect();
        let scaler = Standardizer::fit(&data).unwrap();
        let z = scaler.transform_all(&data).unwrap();
        for d in 0..2 {
            let mean: f32 = z.iter().map(|r| r[d]).sum::<f32>() / z.len() as f32;
            let var: f32 = z.iter().map(|r| r[d].powi(2)).sum::<f32>() / z.len() as f32;
            assert!(mean.abs() < 1e-4, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "dim {d} var {var}");
        }
    }

    #[test]
    fn constant_dimension_passes_through_centered() {
        let data = vec![vec![5.0f32, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let scaler = Standardizer::fit(&data).unwrap();
        let z = scaler.transform(&[5.0, 2.0]).unwrap();
        assert_eq!(z[0], 0.0);
    }

    #[test]
    fn validation() {
        assert!(Standardizer::fit(&[]).is_err());
        assert!(Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let scaler = Standardizer::fit(&[vec![1.0, 2.0]]).unwrap();
        assert!(scaler.transform(&[1.0]).is_err());
        assert_eq!(scaler.dims(), 2);
    }
}
