#![warn(missing_docs)]

//! Unsupervised anomaly detection for sensor features (paper §4.3).
//!
//! "Edge Impulse supports several unsupervised learning algorithms to
//! tackle anomaly detection problems. At the moment, Edge Impulse uses
//! K-means clustering and will support Gaussian mixture models (GMM) in
//! the near future." Both live here:
//!
//! * [`kmeans::KMeans`] — Lloyd's algorithm with k-means++ seeding; the
//!   anomaly score of a point is its distance to the nearest centroid
//!   normalized by that cluster's radius, so scores ≳ 1 are suspicious;
//! * [`gmm::Gmm`] — diagonal-covariance Gaussian mixtures fit by EM; the
//!   anomaly score is the negative log-likelihood.
//!
//! Both models train on *normal* data only (typically spectral features
//! from `ei-dsp`'s spectral-analysis block) and flag deviations at
//! inference time.

pub mod error;
pub mod gmm;
pub mod kmeans;
pub mod scaler;

pub use error::AnomalyError;
pub use gmm::Gmm;
pub use kmeans::KMeans;
pub use scaler::Standardizer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnomalyError>;
