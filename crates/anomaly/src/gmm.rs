//! Diagonal-covariance Gaussian mixture models fit by EM.

use crate::kmeans::{KMeans, KMeansConfig};
use crate::{AnomalyError, Result};

/// GMM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on mean log-likelihood improvement.
    pub tol: f64,
    /// Seed (components are initialized from a k-means fit).
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig { components: 4, max_iters: 60, tol: 1e-5, seed: 0 }
    }
}

/// Variance floor preventing component collapse.
const VAR_FLOOR: f32 = 1e-4;

/// A fitted diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm {
    weights: Vec<f32>,
    means: Vec<Vec<f32>>,
    variances: Vec<Vec<f32>>,
    dims: usize,
}

impl Gmm {
    /// Fits the mixture with EM, initializing means from k-means++.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::InvalidTrainingData`] for empty/ragged data
    /// or fewer rows than components.
    pub fn fit(data: &[Vec<f32>], config: GmmConfig) -> Result<Gmm> {
        let kmeans = KMeans::fit(
            data,
            KMeansConfig { k: config.components, max_iters: 20, seed: config.seed },
        )?;
        let dims = kmeans.dims();
        let k = config.components;
        let mut means: Vec<Vec<f32>> = kmeans.centroids().to_vec();
        let mut weights = vec![1.0f32 / k as f32; k];
        // initial variances: global per-dimension variance
        let global_var: Vec<f32> = {
            let n = data.len() as f32;
            let mean: Vec<f32> =
                (0..dims).map(|d| data.iter().map(|r| r[d]).sum::<f32>() / n).collect();
            (0..dims)
                .map(|d| {
                    (data.iter().map(|r| (r[d] - mean[d]).powi(2)).sum::<f32>() / n).max(VAR_FLOOR)
                })
                .collect()
        };
        let mut variances = vec![global_var; k];

        let mut prev_ll = f64::NEG_INFINITY;
        let mut resp = vec![vec![0.0f32; k]; data.len()];
        for _ in 0..config.max_iters {
            // E step
            let mut ll = 0.0f64;
            for (row, r) in data.iter().zip(resp.iter_mut()) {
                let logps: Vec<f64> = (0..k)
                    .map(|c| {
                        (weights[c].max(1e-12) as f64).ln()
                            + log_gaussian(row, &means[c], &variances[c])
                    })
                    .collect();
                let max = logps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum: f64 = logps.iter().map(|&lp| (lp - max).exp()).sum();
                ll += max + sum.ln();
                for (c, slot) in r.iter_mut().enumerate() {
                    *slot = ((logps[c] - max).exp() / sum) as f32;
                }
            }
            ll /= data.len() as f64;
            if (ll - prev_ll).abs() < config.tol {
                break;
            }
            prev_ll = ll;
            // M step
            for c in 0..k {
                let nk: f32 = resp.iter().map(|r| r[c]).sum::<f32>().max(1e-6);
                weights[c] = nk / data.len() as f32;
                for d in 0..dims {
                    let mean =
                        data.iter().zip(&resp).map(|(row, r)| r[c] * row[d]).sum::<f32>() / nk;
                    means[c][d] = mean;
                }
                for d in 0..dims {
                    let var = data
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * (row[d] - means[c][d]).powi(2))
                        .sum::<f32>()
                        / nk;
                    variances[c][d] = var.max(VAR_FLOOR);
                }
            }
        }
        Ok(Gmm { weights, means, variances, dims })
    }

    /// Component means.
    pub fn means(&self) -> &[Vec<f32>] {
        &self.means
    }

    /// Mixture weights (sum to 1).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Log-likelihood of one point under the mixture.
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized points.
    pub fn log_likelihood(&self, point: &[f32]) -> Result<f64> {
        if point.len() != self.dims {
            return Err(AnomalyError::DimensionMismatch {
                expected: self.dims,
                actual: point.len(),
            });
        }
        let logps: Vec<f64> = (0..self.weights.len())
            .map(|c| {
                (self.weights[c].max(1e-12) as f64).ln()
                    + log_gaussian(point, &self.means[c], &self.variances[c])
            })
            .collect();
        let max = logps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = logps.iter().map(|&lp| (lp - max).exp()).sum();
        Ok(max + sum.ln())
    }

    /// Anomaly score: negative log-likelihood (higher = more anomalous).
    ///
    /// # Errors
    ///
    /// Returns [`AnomalyError::DimensionMismatch`] for wrongly sized points.
    pub fn anomaly_score(&self, point: &[f32]) -> Result<f64> {
        Ok(-self.log_likelihood(point)?)
    }
}

/// Log-density of a diagonal Gaussian.
fn log_gaussian(x: &[f32], mean: &[f32], var: &[f32]) -> f64 {
    let mut ll = 0.0f64;
    for ((xv, mv), vv) in x.iter().zip(mean).zip(var) {
        let v = *vv as f64;
        let d = (*xv - *mv) as f64;
        ll += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + d * d / v);
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_blobs(seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for center in [[-5.0f32, 0.0], [5.0, 0.0]] {
            for _ in 0..60 {
                data.push(vec![
                    center[0] + rng.gen_range(-0.8f32..0.8),
                    center[1] + rng.gen_range(-0.8f32..0.8),
                ]);
            }
        }
        data
    }

    #[test]
    fn recovers_two_modes() {
        let data = two_blobs(1);
        let gmm = Gmm::fit(&data, GmmConfig { components: 2, ..Default::default() }).unwrap();
        let mut xs: Vec<f32> = gmm.means().iter().map(|m| m[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] + 5.0).abs() < 1.0, "left mode at {}", xs[0]);
        assert!((xs[1] - 5.0).abs() < 1.0, "right mode at {}", xs[1]);
        let wsum: f32 = gmm.weights().iter().sum();
        assert!((wsum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn likelihood_higher_on_modes_than_between() {
        let data = two_blobs(2);
        let gmm = Gmm::fit(&data, GmmConfig { components: 2, ..Default::default() }).unwrap();
        let on_mode = gmm.log_likelihood(&[5.0, 0.0]).unwrap();
        let between = gmm.log_likelihood(&[0.0, 0.0]).unwrap();
        assert!(on_mode > between + 2.0, "{on_mode} vs {between}");
    }

    #[test]
    fn anomaly_scores_rank_outliers() {
        let data = two_blobs(3);
        let gmm = Gmm::fit(&data, GmmConfig { components: 2, ..Default::default() }).unwrap();
        let inlier = gmm.anomaly_score(&[-5.0, 0.0]).unwrap();
        let outlier = gmm.anomaly_score(&[0.0, 30.0]).unwrap();
        assert!(outlier > inlier + 10.0);
    }

    #[test]
    fn dimension_validation() {
        let data = two_blobs(4);
        let gmm = Gmm::fit(&data, GmmConfig { components: 2, ..Default::default() }).unwrap();
        assert!(gmm.log_likelihood(&[0.0]).is_err());
        assert!(Gmm::fit(&[], GmmConfig::default()).is_err());
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // identical points would otherwise produce zero variance
        let data = vec![vec![2.0f32, 2.0]; 20];
        let gmm = Gmm::fit(&data, GmmConfig { components: 2, ..Default::default() }).unwrap();
        let ll = gmm.log_likelihood(&[2.0, 2.0]).unwrap();
        assert!(ll.is_finite());
    }
}
