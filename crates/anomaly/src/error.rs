//! Error type for anomaly-detection training.

use std::fmt;

/// Errors produced while fitting or scoring anomaly models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnomalyError {
    /// Training data was empty, inconsistent, or smaller than `k`.
    InvalidTrainingData(String),
    /// A scored point had the wrong dimensionality.
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        actual: usize,
    },
}

impl fmt::Display for AnomalyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            AnomalyError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for AnomalyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AnomalyError::DimensionMismatch { expected: 3, actual: 2 }
            .to_string()
            .contains("expected 3"));
    }
}
