#![warn(missing_docs)]

//! Multi-tenant inference serving for `edgelab`: artifact cache,
//! admission control and micro-batching.
//!
//! The paper's platform is a cloud service running ingestion-to-deployment
//! pipelines for thousands of concurrent projects (paper §3); this crate
//! is the serving layer that makes the reproduction behave like one
//! process of that service rather than a single-user CLI:
//!
//! * [`CompiledArtifactCache`] — an LRU keyed by
//!   `(model content hash, board, engine, dtype)` that memoizes the
//!   expensive half of a request (registry JSON decode, EON codegen /
//!   TFLM interpreter setup, arena memory planning). Hits return
//!   byte-identical classifications and memory plans to a cold compile.
//! * [`Server`] — per-tenant token-bucket quotas, a bounded request queue
//!   with explicit backpressure ([`Rejected::Overloaded`]), deadline
//!   propagation into [`ei_faults`] per-attempt timeouts, and
//!   micro-batching that dispatches same-artifact requests through one
//!   [`ei_par::ParPool::par_map`] call.
//! * Full [`ei_trace`] instrumentation: queue-depth gauges, per-tenant
//!   latency histograms (`serve.latency_ms.<tenant>`), batch-size
//!   distribution and cache hit/miss/eviction counters.
//!
//! Everything runs on an injected [`ei_faults::Clock`] with *modeled*
//! latencies, so a load test under a [`ei_faults::VirtualClock`] is
//! byte-for-byte reproducible regardless of `EI_THREADS` or wall time.

pub mod cache;
pub mod error;
pub mod quota;
pub mod request;
pub mod server;

pub use cache::{content_hash, ArtifactKey, CacheStats, CompiledArtifact, CompiledArtifactCache};
pub use error::ServeError;
pub use quota::TokenBucket;
pub use request::{
    Completion, InferenceRequest, InferenceSpec, ModelName, ModelSource, Outcome, Rejected,
};
pub use server::{Estimate, Server, ServerConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
