//! Request and response types of the serving front-end.

use crate::cache::{content_hash, ArtifactKey};
use ei_core::Classification;
use ei_runtime::EngineKind;
use std::sync::Arc;

/// A model as the registry stores it: name plus opaque JSON bytes.
///
/// The content hash is computed once at construction; requests carrying
/// the same bytes share compiled artifacts, while a re-upload of changed
/// bytes under the same name gets a fresh [`ArtifactKey`] and can never
/// hit a stale entry.
#[derive(Debug, Clone)]
pub struct ModelSource {
    /// Registry name (display only — never part of the cache key).
    pub name: String,
    /// The model's registry JSON, shared without copying.
    pub json: Arc<String>,
    /// [`content_hash`] of `json`.
    pub content_hash: u64,
}

impl ModelSource {
    /// Wraps registry bytes, stamping their content hash.
    pub fn new(name: &str, json: String) -> ModelSource {
        let content_hash = content_hash(&json);
        ModelSource { name: name.to_string(), json: Arc::new(json), content_hash }
    }
}

/// One tenant inference call.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Tenant the request is attributed to (quota + latency series).
    pub tenant: String,
    /// The model to execute.
    pub model: ModelSource,
    /// Deployment board context (part of the artifact identity).
    pub board: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// `true` to run the int8 artifact.
    pub quantized: bool,
    /// Raw input window.
    pub window: Vec<f32>,
    /// Completion deadline, logical milliseconds from admission; `0`
    /// selects the server's default.
    pub deadline_ms: u64,
}

impl InferenceRequest {
    /// The cache identity this request resolves to.
    pub fn artifact_key(&self) -> ArtifactKey {
        ArtifactKey {
            content_hash: self.model.content_hash,
            board: self.board.clone(),
            engine: self.engine,
            quantized: self.quantized,
        }
    }
}

/// Why a submission was refused at the door.
///
/// Rejections are *cheap and explicit*: they happen before any queue
/// growth or compilation, which is what keeps the server's memory bounded
/// under overload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded request queue is full — backpressure, try later.
    Overloaded {
        /// Queue depth observed at rejection (== the configured bound).
        queue_depth: usize,
    },
    /// The tenant's token bucket is empty.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { queue_depth } => {
                write!(f, "overloaded: queue is full at depth {queue_depth}")
            }
            Rejected::QuotaExceeded { tenant } => {
                write!(f, "quota exceeded for tenant {tenant:?}")
            }
        }
    }
}

/// Terminal state of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The model ran; here is its answer.
    Classified(Classification),
    /// The request's deadline elapsed before (or while) it ran.
    DeadlineExceeded {
        /// Logical milliseconds from admission until the server gave up.
        waited_ms: u64,
    },
    /// Compilation or execution failed.
    Failed(String),
}

/// One finished request with its cost-attribution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Ticket returned by `submit`.
    pub ticket: u64,
    /// Tenant the work is attributed to.
    pub tenant: String,
    /// What happened.
    pub outcome: Outcome,
    /// Engine the request asked for.
    pub engine: EngineKind,
    /// Logical milliseconds spent queued before its batch started.
    pub queued_ms: u64,
    /// Admission-to-completion logical milliseconds.
    pub latency_ms: u64,
    /// `true` when the artifact came from the cache.
    pub cache_hit: bool,
    /// Number of requests co-dispatched in the same micro-batch.
    pub batch_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bytes_same_key_new_bytes_new_key() {
        let a = ModelSource::new("kws", "{\"v\":1}".into());
        let b = ModelSource::new("kws-copy", "{\"v\":1}".into());
        let c = ModelSource::new("kws", "{\"v\":2}".into());
        assert_eq!(a.content_hash, b.content_hash, "names never enter the hash");
        assert_ne!(a.content_hash, c.content_hash, "content changes change the key");
    }

    #[test]
    fn rejection_display() {
        assert_eq!(
            Rejected::Overloaded { queue_depth: 8 }.to_string(),
            "overloaded: queue is full at depth 8"
        );
        assert_eq!(
            Rejected::QuotaExceeded { tenant: "acme".into() }.to_string(),
            "quota exceeded for tenant \"acme\""
        );
    }
}
