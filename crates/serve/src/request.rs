//! Request and response types of the serving front-end.

use crate::cache::{content_hash, ArtifactKey};
use ei_core::Classification;
use ei_runtime::EngineKind;
use std::sync::Arc;

/// Name of a model in a project's registry.
///
/// A newtype rather than a bare `&str` so the platform and serving layers
/// share one spelling of "which model" across upload, download, classify
/// and estimate calls.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelName(pub String);

impl ModelName {
    /// The raw registry key.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ModelName {
    fn from(name: &str) -> Self {
        ModelName(name.to_string())
    }
}

impl From<String> for ModelName {
    fn from(name: String) -> Self {
        ModelName(name)
    }
}

impl std::fmt::Display for ModelName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A model as the registry stores it: name plus opaque JSON bytes.
///
/// The content hash is computed once at construction; requests carrying
/// the same bytes share compiled artifacts, while a re-upload of changed
/// bytes under the same name gets a fresh [`ArtifactKey`] and can never
/// hit a stale entry.
#[derive(Debug, Clone)]
pub struct ModelSource {
    /// Registry name (display only — never part of the cache key).
    pub name: ModelName,
    /// The model's registry JSON, shared without copying.
    pub json: Arc<String>,
    /// [`content_hash`] of `json`.
    pub content_hash: u64,
}

impl ModelSource {
    /// Wraps registry bytes, stamping their content hash.
    pub fn new(name: impl Into<ModelName>, json: String) -> ModelSource {
        let content_hash = content_hash(&json);
        ModelSource { name: name.into(), json: Arc::new(json), content_hash }
    }
}

/// *How* to run an inference, minus the input window and the resolved
/// model bytes: model name, board, engine, dtype, deadline, and an
/// optional tenant override.
///
/// One spec type is shared by `ei_platform::Api::classify`/`estimate` and
/// the serving layer, replacing the positional argument lists that used
/// to grow with every new knob. Build with [`InferenceSpec::new`] and
/// chain the setters:
///
/// ```
/// use ei_runtime::EngineKind;
/// use ei_serve::InferenceSpec;
///
/// let spec = InferenceSpec::new("kws-v1", EngineKind::EonCompiled)
///     .on_board("nano 33")
///     .quantized(true)
///     .deadline_ms(40);
/// assert_eq!(spec.model.as_str(), "kws-v1");
/// ```
#[derive(Debug, Clone)]
pub struct InferenceSpec {
    /// Registry name of the model to run.
    pub model: ModelName,
    /// Deployment board context (part of the artifact identity; empty
    /// means "no board context").
    pub board: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// `true` to run the int8 artifact.
    pub quantized: bool,
    /// Completion deadline, logical milliseconds from admission; `0`
    /// selects the server's default.
    pub deadline_ms: u64,
    /// Tenant override; `None` lets the caller (e.g. the platform API)
    /// derive one.
    pub tenant: Option<String>,
}

impl InferenceSpec {
    /// A float-path spec with no board context, default deadline, and a
    /// caller-derived tenant.
    pub fn new(model: impl Into<ModelName>, engine: EngineKind) -> InferenceSpec {
        InferenceSpec {
            model: model.into(),
            board: String::new(),
            engine,
            quantized: false,
            deadline_ms: 0,
            tenant: None,
        }
    }

    /// Sets the deployment board the artifact is compiled against.
    #[must_use]
    pub fn on_board(mut self, board: &str) -> InferenceSpec {
        self.board = board.to_string();
        self
    }

    /// Selects the int8 (`true`) or float (`false`) artifact.
    #[must_use]
    pub fn quantized(mut self, quantized: bool) -> InferenceSpec {
        self.quantized = quantized;
        self
    }

    /// Sets the completion deadline in logical milliseconds (`0` = server
    /// default).
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: u64) -> InferenceSpec {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Attributes the request to an explicit tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: &str) -> InferenceSpec {
        self.tenant = Some(tenant.to_string());
        self
    }
}

/// One tenant inference call.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Tenant the request is attributed to (quota + latency series).
    pub tenant: String,
    /// The model to execute.
    pub model: ModelSource,
    /// Deployment board context (part of the artifact identity).
    pub board: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// `true` to run the int8 artifact.
    pub quantized: bool,
    /// Input window: raw samples by default, or already-extracted DSP
    /// features when `precomputed` is set.
    pub window: Vec<f32>,
    /// Completion deadline, logical milliseconds from admission; `0`
    /// selects the server's default.
    pub deadline_ms: u64,
    /// `true` when `window` holds DSP features rather than raw samples,
    /// so dispatch skips the artifact's DSP stage and feeds the engine
    /// directly. Streaming sessions set this: their incremental extractor
    /// already computed each frame column exactly once, and re-running
    /// DSP per overlapping window would throw that reuse away.
    pub precomputed: bool,
}

impl InferenceRequest {
    /// Binds a spec to resolved model bytes, an input window, and the
    /// tenant to bill when the spec doesn't name one.
    pub fn from_spec(
        spec: &InferenceSpec,
        model: ModelSource,
        window: Vec<f32>,
        default_tenant: &str,
    ) -> InferenceRequest {
        InferenceRequest {
            tenant: spec.tenant.clone().unwrap_or_else(|| default_tenant.to_string()),
            model,
            board: spec.board.clone(),
            engine: spec.engine,
            quantized: spec.quantized,
            window,
            deadline_ms: spec.deadline_ms,
            precomputed: false,
        }
    }

    /// Marks `window` as already-extracted DSP features (see the
    /// `precomputed` field).
    #[must_use]
    pub fn with_precomputed_features(mut self) -> InferenceRequest {
        self.precomputed = true;
        self
    }

    /// The cache identity this request resolves to.
    pub fn artifact_key(&self) -> ArtifactKey {
        ArtifactKey {
            content_hash: self.model.content_hash,
            board: self.board.clone(),
            engine: self.engine,
            quantized: self.quantized,
        }
    }
}

/// Why a submission was refused at the door.
///
/// Rejections are *cheap and explicit*: they happen before any queue
/// growth or compilation, which is what keeps the server's memory bounded
/// under overload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded request queue is full — backpressure, try later.
    Overloaded {
        /// Queue depth observed at rejection (== the configured bound).
        queue_depth: usize,
    },
    /// The tenant's token bucket is empty.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { queue_depth } => {
                write!(f, "overloaded: queue is full at depth {queue_depth}")
            }
            Rejected::QuotaExceeded { tenant } => {
                write!(f, "quota exceeded for tenant {tenant:?}")
            }
        }
    }
}

/// Terminal state of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The model ran; here is its answer.
    Classified(Classification),
    /// The request's deadline elapsed before (or while) it ran.
    DeadlineExceeded {
        /// Logical milliseconds from admission until the server gave up.
        waited_ms: u64,
    },
    /// Compilation or execution failed.
    Failed(String),
}

/// One finished request with its cost-attribution metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Ticket returned by `submit`.
    pub ticket: u64,
    /// Tenant the work is attributed to.
    pub tenant: String,
    /// What happened.
    pub outcome: Outcome,
    /// Engine the request asked for.
    pub engine: EngineKind,
    /// Logical milliseconds spent queued before its batch started.
    pub queued_ms: u64,
    /// Admission-to-completion logical milliseconds.
    pub latency_ms: u64,
    /// `true` when the artifact came from the cache.
    pub cache_hit: bool,
    /// Number of requests co-dispatched in the same micro-batch.
    pub batch_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bytes_same_key_new_bytes_new_key() {
        let a = ModelSource::new("kws", "{\"v\":1}".into());
        let b = ModelSource::new("kws-copy", "{\"v\":1}".into());
        let c = ModelSource::new("kws", "{\"v\":2}".into());
        assert_eq!(a.content_hash, b.content_hash, "names never enter the hash");
        assert_ne!(a.content_hash, c.content_hash, "content changes change the key");
    }

    #[test]
    fn spec_builder_binds_into_a_request() {
        let spec = InferenceSpec::new("kws-v1", EngineKind::EonCompiled)
            .on_board("nano 33")
            .quantized(true)
            .deadline_ms(25);
        let req = InferenceRequest::from_spec(
            &spec,
            ModelSource::new(spec.model.clone(), "{}".into()),
            vec![0.5],
            "project-3",
        );
        assert_eq!(req.tenant, "project-3", "unset tenant falls back to the caller's default");
        assert_eq!((req.board.as_str(), req.quantized, req.deadline_ms), ("nano 33", true, 25));
        let billed = InferenceRequest::from_spec(
            &spec.clone().tenant("acme"),
            ModelSource::new("kws-v1", "{}".into()),
            vec![],
            "project-3",
        );
        assert_eq!(billed.tenant, "acme", "explicit tenant wins");
    }

    #[test]
    fn rejection_display() {
        assert_eq!(
            Rejected::Overloaded { queue_depth: 8 }.to_string(),
            "overloaded: queue is full at depth 8"
        );
        assert_eq!(
            Rejected::QuotaExceeded { tenant: "acme".into() }.to_string(),
            "quota exceeded for tenant \"acme\""
        );
    }
}
