//! The compiled-artifact cache: memoized EON codegen / interpreter setup.
//!
//! Compiling a served model — decoding the registry JSON, building the
//! deployment artifact, running EON codegen or interpreter setup and the
//! arena memory planner — dominates end-to-end turnaround, so the serving
//! layer memoizes the whole bundle in an LRU keyed by
//! [`ArtifactKey`]: `(model content hash, board, engine, dtype)`. Keying
//! on the *content* hash (not the model name) means re-uploading a changed
//! model under the same name can never serve stale results: the new bytes
//! hash to a new key and the old entry ages out.
//!
//! A cache hit must be indistinguishable from a cold compile except in
//! latency — [`CompiledArtifact::classify`] is deterministic, so hit and
//! miss paths return byte-identical classifications and memory plans.

use crate::error::ServeError;
use ei_core::TrainedImpulse;
use ei_dsp::DspCost;
use ei_runtime::planner::MemoryPlan;
use ei_runtime::{
    EngineKind, EonProgram, InferenceEngine, Interpreter, MemoryReport, ModelArtifact,
};
use ei_trace::Tracer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hash of a model's registry JSON.
///
/// Stable across runs and platforms (unlike `DefaultHasher`), so cache
/// keys — and therefore hit/miss traces — are reproducible.
pub fn content_hash(json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identity of one compiled artifact: what must match for a cache hit.
///
/// Two requests share an entry only when the model *bytes*, the target
/// board, the execution engine and the dtype all agree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// [`content_hash`] of the model's registry JSON.
    pub content_hash: u64,
    /// Deployment board name (estimates are board-specific).
    pub board: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// `true` for the int8 artifact, `false` for float32.
    pub quantized: bool,
}

/// Everything the serving layer memoizes for one [`ArtifactKey`]: the
/// decoded impulse, the ready-to-run engine and its arena memory plan,
/// plus the modeled compile cost that a cache hit saves.
pub struct CompiledArtifact {
    key: ArtifactKey,
    impulse: TrainedImpulse,
    engine: Box<dyn InferenceEngine + Send + Sync>,
    plan: MemoryPlan,
    compile_cost_ms: u64,
}

impl std::fmt::Debug for CompiledArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledArtifact")
            .field("key", &self.key)
            .field("compile_cost_ms", &self.compile_cost_ms)
            .finish_non_exhaustive()
    }
}

impl CompiledArtifact {
    /// Decodes `json` and compiles it for `engine`/`quantized` — the cold
    /// path a cache hit short-circuits.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for malformed model JSON or a model
    /// the engine cannot compile.
    pub fn compile(key: ArtifactKey, json: &str) -> Result<CompiledArtifact, ServeError> {
        let impulse =
            TrainedImpulse::from_json(json).map_err(|e| ServeError::Model(e.to_string()))?;
        let artifact = if key.quantized {
            impulse.int8_artifact().map_err(|e| ServeError::Model(e.to_string()))?
        } else {
            impulse.float_artifact()
        };
        let (engine, plan): (Box<dyn InferenceEngine + Send + Sync>, MemoryPlan) = match key.engine
        {
            EngineKind::EonCompiled => {
                let program =
                    EonProgram::compile(artifact).map_err(|e| ServeError::Model(e.to_string()))?;
                let plan = program.plan().clone();
                (Box::new(program), plan)
            }
            EngineKind::TflmInterpreter => {
                let interp =
                    Interpreter::new(artifact).map_err(|e| ServeError::Model(e.to_string()))?;
                let plan = interp.plan().clone();
                (Box::new(interp), plan)
            }
        };
        let compile_cost_ms = modeled_compile_cost_ms(key.engine, engine.artifact());
        Ok(CompiledArtifact { key, impulse, engine, plan, compile_cost_ms })
    }

    /// The identity this entry is cached under.
    pub fn key(&self) -> &ArtifactKey {
        &self.key
    }

    /// The planned activation arena — identical on hit and cold compile.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// The engine's deployment memory footprint.
    pub fn memory(&self) -> MemoryReport {
        self.engine.memory()
    }

    /// The ready-to-run engine.
    pub fn engine(&self) -> &dyn InferenceEngine {
        &*self.engine
    }

    /// Class labels in output order.
    pub fn labels(&self) -> &[String] {
        self.impulse.labels()
    }

    /// Modeled milliseconds a cold compile of this entry costs (charged to
    /// the serving clock on every miss; a hit pays nothing).
    pub fn compile_cost_ms(&self) -> u64 {
        self.compile_cost_ms
    }

    /// The DSP footprint of one input window.
    ///
    /// # Errors
    ///
    /// Propagates DSP configuration failures as [`ServeError::Model`].
    pub fn dsp_cost(&self) -> Result<DspCost, ServeError> {
        let design = self.impulse.design();
        let block = design.dsp_block().map_err(|e| ServeError::Model(e.to_string()))?;
        block.cost(design.window_samples).map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Classifies one raw window: DSP then the compiled engine.
    ///
    /// Deterministic — repeated calls (and hit vs cold-compile entries for
    /// the same key) return byte-identical [`ei_core::Classification`]s.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for wrongly sized windows or engine
    /// failures.
    pub fn classify(&self, raw: &[f32]) -> Result<ei_core::Classification, ServeError> {
        let block =
            self.impulse.design().dsp_block().map_err(|e| ServeError::Model(e.to_string()))?;
        let features = block.process(raw).map_err(|e| ServeError::Model(e.to_string()))?;
        self.classify_features(&features)
    }

    /// Classifies an already-extracted feature window, skipping the DSP
    /// stage. This is the dispatch path for streaming sessions, whose
    /// incremental extractor computed each overlapping window's columns
    /// exactly once; [`CompiledArtifact::classify`] funnels through it, so
    /// both paths run the identical engine call and argmax.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for wrongly sized feature vectors or
    /// engine failures.
    pub fn classify_features(
        &self,
        features: &[f32],
    ) -> Result<ei_core::Classification, ServeError> {
        let probabilities =
            self.engine.run(features).map_err(|e| ServeError::Model(e.to_string()))?;
        let label_index = ei_tensor::ops::argmax(&probabilities);
        Ok(ei_core::Classification {
            label: self.impulse.labels().get(label_index).cloned().unwrap_or_default(),
            confidence: probabilities.get(label_index).copied().unwrap_or(0.0),
            probabilities,
            label_index,
        })
    }
}

/// Deterministic compile-cost model (logical milliseconds).
///
/// EON codegen walks the graph and emits source, so it costs more up front
/// than interpreter setup; both scale with model size. The constants only
/// need to be stable and large relative to per-request service time — they
/// are what an artifact-cache hit saves.
fn modeled_compile_cost_ms(engine: EngineKind, artifact: &ModelArtifact) -> u64 {
    let base = match engine {
        EngineKind::EonCompiled => 30,
        EngineKind::TflmInterpreter => 20,
    };
    base + artifact.weight_bytes() as u64 / 4096 + artifact.ops().len() as u64
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of [`CompiledArtifact`]s with hit/miss/eviction counters.
///
/// Counters are mirrored into the tracer's metrics registry as the quiet
/// series `serve.cache.{hit,miss,eviction}` (registry-only: lookup order
/// under concurrent tenants is scheduling-dependent, so they stay out of
/// the deterministic record stream).
pub struct CompiledArtifactCache {
    capacity: usize,
    /// LRU order: front = least recently used, back = most recently used.
    entries: Mutex<VecDeque<Arc<CompiledArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tracer: Tracer,
}

impl std::fmt::Debug for CompiledArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledArtifactCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl CompiledArtifactCache {
    /// A cache holding at most `capacity` compiled artifacts (clamped to
    /// at least one).
    pub fn new(capacity: usize, tracer: Tracer) -> CompiledArtifactCache {
        CompiledArtifactCache {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tracer,
        }
    }

    /// Looks up `key`, building (and inserting) via `build` on a miss.
    ///
    /// Returns the entry plus `true` on a hit, `false` on a cold compile.
    /// The build runs under the cache lock, so concurrent misses for one
    /// key compile exactly once.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; a failed build inserts nothing.
    pub fn get_or_insert_with(
        &self,
        key: &ArtifactKey,
        build: impl FnOnce() -> Result<CompiledArtifact, ServeError>,
    ) -> Result<(Arc<CompiledArtifact>, bool), ServeError> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|a| a.key() == key) {
            let entry = entries.remove(pos).expect("position is in range");
            entries.push_back(Arc::clone(&entry));
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.tracer.quiet_counter("serve.cache.hit").inc();
            return Ok((entry, true));
        }
        let entry = Arc::new(build()?);
        entries.push_back(Arc::clone(&entry));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.tracer.quiet_counter("serve.cache.miss").inc();
        while entries.len() > self.capacity {
            entries.pop_front();
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.tracer.quiet_counter("serve.cache.eviction").inc();
        }
        Ok((entry, false))
    }

    /// `true` when `key` is resident (does not touch LRU order or stats).
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().any(|a| a.key() == key)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = content_hash("{\"w\":1}");
        assert_eq!(a, content_hash("{\"w\":1}"));
        assert_ne!(a, content_hash("{\"w\":2}"));
        // FNV-1a of the empty string is the offset basis
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
