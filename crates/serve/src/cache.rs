//! The compiled-artifact cache: memoized EON codegen / interpreter setup.
//!
//! Compiling a served model — decoding the registry JSON, building the
//! deployment artifact, running EON codegen or interpreter setup and the
//! arena memory planner — dominates end-to-end turnaround, so the serving
//! layer memoizes the whole bundle in an LRU keyed by
//! [`ArtifactKey`]: `(model content hash, board, engine, dtype)`. Keying
//! on the *content* hash (not the model name) means re-uploading a changed
//! model under the same name can never serve stale results: the new bytes
//! hash to a new key and the old entry ages out.
//!
//! A cache hit must be indistinguishable from a cold compile except in
//! latency — [`CompiledArtifact::classify`] is deterministic, so hit and
//! miss paths return byte-identical classifications and memory plans.
//!
//! The cache stripes by *tenant* (FNV-1a, the platform-wide placement
//! function) into independent LRU shards — see
//! [`CompiledArtifactCache::with_shards`] — so under multi-tenant
//! contention one tenant's cold compiles never serialize another
//! tenant's hits.

use crate::error::ServeError;
use ei_core::TrainedImpulse;
use ei_dsp::DspCost;
use ei_runtime::planner::MemoryPlan;
use ei_runtime::{
    EngineKind, EonProgram, InferenceEngine, Interpreter, MemoryReport, ModelArtifact,
};
use ei_shard::ShardKey;
use ei_trace::Tracer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hash of a model's registry JSON.
///
/// Stable across runs and platforms (unlike `DefaultHasher`), so cache
/// keys — and therefore hit/miss traces — are reproducible.
pub fn content_hash(json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identity of one compiled artifact: what must match for a cache hit.
///
/// Two requests share an entry only when the model *bytes*, the target
/// board, the execution engine and the dtype all agree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// [`content_hash`] of the model's registry JSON.
    pub content_hash: u64,
    /// Deployment board name (estimates are board-specific).
    pub board: String,
    /// Execution engine.
    pub engine: EngineKind,
    /// `true` for the int8 artifact, `false` for float32.
    pub quantized: bool,
}

/// Everything the serving layer memoizes for one [`ArtifactKey`]: the
/// decoded impulse, the ready-to-run engine and its arena memory plan,
/// plus the modeled compile cost that a cache hit saves.
pub struct CompiledArtifact {
    key: ArtifactKey,
    impulse: TrainedImpulse,
    engine: Box<dyn InferenceEngine + Send + Sync>,
    plan: MemoryPlan,
    compile_cost_ms: u64,
}

impl std::fmt::Debug for CompiledArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledArtifact")
            .field("key", &self.key)
            .field("compile_cost_ms", &self.compile_cost_ms)
            .finish_non_exhaustive()
    }
}

impl CompiledArtifact {
    /// Decodes `json` and compiles it for `engine`/`quantized` — the cold
    /// path a cache hit short-circuits.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for malformed model JSON or a model
    /// the engine cannot compile.
    pub fn compile(key: ArtifactKey, json: &str) -> Result<CompiledArtifact, ServeError> {
        let impulse =
            TrainedImpulse::from_json(json).map_err(|e| ServeError::Model(e.to_string()))?;
        let artifact = if key.quantized {
            impulse.int8_artifact().map_err(|e| ServeError::Model(e.to_string()))?
        } else {
            impulse.float_artifact()
        };
        let (engine, plan): (Box<dyn InferenceEngine + Send + Sync>, MemoryPlan) = match key.engine
        {
            EngineKind::EonCompiled => {
                let program =
                    EonProgram::compile(artifact).map_err(|e| ServeError::Model(e.to_string()))?;
                let plan = program.plan().clone();
                (Box::new(program), plan)
            }
            EngineKind::TflmInterpreter => {
                let interp =
                    Interpreter::new(artifact).map_err(|e| ServeError::Model(e.to_string()))?;
                let plan = interp.plan().clone();
                (Box::new(interp), plan)
            }
        };
        let compile_cost_ms = modeled_compile_cost_ms(key.engine, engine.artifact());
        Ok(CompiledArtifact { key, impulse, engine, plan, compile_cost_ms })
    }

    /// The identity this entry is cached under.
    pub fn key(&self) -> &ArtifactKey {
        &self.key
    }

    /// The planned activation arena — identical on hit and cold compile.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// The engine's deployment memory footprint.
    pub fn memory(&self) -> MemoryReport {
        self.engine.memory()
    }

    /// The ready-to-run engine.
    pub fn engine(&self) -> &dyn InferenceEngine {
        &*self.engine
    }

    /// Class labels in output order.
    pub fn labels(&self) -> &[String] {
        self.impulse.labels()
    }

    /// Modeled milliseconds a cold compile of this entry costs (charged to
    /// the serving clock on every miss; a hit pays nothing).
    pub fn compile_cost_ms(&self) -> u64 {
        self.compile_cost_ms
    }

    /// The DSP footprint of one input window.
    ///
    /// # Errors
    ///
    /// Propagates DSP configuration failures as [`ServeError::Model`].
    pub fn dsp_cost(&self) -> Result<DspCost, ServeError> {
        let design = self.impulse.design();
        let block = design.dsp_block().map_err(|e| ServeError::Model(e.to_string()))?;
        block.cost(design.window_samples).map_err(|e| ServeError::Model(e.to_string()))
    }

    /// Classifies one raw window: DSP then the compiled engine.
    ///
    /// Deterministic — repeated calls (and hit vs cold-compile entries for
    /// the same key) return byte-identical [`ei_core::Classification`]s.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for wrongly sized windows or engine
    /// failures.
    pub fn classify(&self, raw: &[f32]) -> Result<ei_core::Classification, ServeError> {
        let block =
            self.impulse.design().dsp_block().map_err(|e| ServeError::Model(e.to_string()))?;
        let features = block.process(raw).map_err(|e| ServeError::Model(e.to_string()))?;
        self.classify_features(&features)
    }

    /// Classifies an already-extracted feature window, skipping the DSP
    /// stage. This is the dispatch path for streaming sessions, whose
    /// incremental extractor computed each overlapping window's columns
    /// exactly once; [`CompiledArtifact::classify`] funnels through it, so
    /// both paths run the identical engine call and argmax.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] for wrongly sized feature vectors or
    /// engine failures.
    pub fn classify_features(
        &self,
        features: &[f32],
    ) -> Result<ei_core::Classification, ServeError> {
        let probabilities =
            self.engine.run(features).map_err(|e| ServeError::Model(e.to_string()))?;
        let label_index = ei_tensor::ops::argmax(&probabilities);
        Ok(ei_core::Classification {
            label: self.impulse.labels().get(label_index).cloned().unwrap_or_default(),
            confidence: probabilities.get(label_index).copied().unwrap_or(0.0),
            probabilities,
            label_index,
        })
    }
}

/// Deterministic compile-cost model (logical milliseconds).
///
/// EON codegen walks the graph and emits source, so it costs more up front
/// than interpreter setup; both scale with model size. The constants only
/// need to be stable and large relative to per-request service time — they
/// are what an artifact-cache hit saves.
fn modeled_compile_cost_ms(engine: EngineKind, artifact: &ModelArtifact) -> u64 {
    let base = match engine {
        EngineKind::EonCompiled => 30,
        EngineKind::TflmInterpreter => 20,
    };
    base + artifact.weight_bytes() as u64 / 4096 + artifact.ops().len() as u64
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            entries: self.entries + rhs.entries,
        }
    }
}

/// One stripe of the cache: its own LRU list, lock and counters.
struct CacheShard {
    /// LRU order: front = least recently used, back = most recently used.
    entries: Mutex<VecDeque<Arc<CompiledArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheShard {
    fn new() -> CacheShard {
        CacheShard {
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: entries.len(),
        }
    }
}

/// Tenant-striped LRU cache of [`CompiledArtifact`]s with per-shard
/// hit/miss/eviction counters.
///
/// The cache stripes over `shards` independent LRU lists, each behind its
/// own lock with its own `capacity`-entry budget; a lookup takes only the
/// lock of the shard its *tenant* hashes to (FNV-1a, the platform-wide
/// placement function), so one tenant's cold compiles never stall another
/// tenant's hits on a different stripe. With one shard (the default) the
/// cache behaves exactly as the unsharded original. A hit is byte-identical
/// to a cold compile regardless of which stripe served it —
/// [`CompiledArtifact::classify`] is deterministic and striping only moves
/// *where* an entry lives, never what it computes.
///
/// Counters are mirrored into the tracer's metrics registry as the quiet
/// series `serve.cache.{hit,miss,eviction}` (registry-only: lookup order
/// under concurrent tenants is scheduling-dependent, so they stay out of
/// the deterministic record stream).
pub struct CompiledArtifactCache {
    /// Per-shard entry budget (total capacity = `capacity × shards`).
    capacity: usize,
    shards: Vec<CacheShard>,
    tracer: Tracer,
}

impl std::fmt::Debug for CompiledArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledArtifactCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl CompiledArtifactCache {
    /// An unsharded cache holding at most `capacity` compiled artifacts
    /// (clamped to at least one) — identical to
    /// [`CompiledArtifactCache::with_shards`] at one shard.
    pub fn new(capacity: usize, tracer: Tracer) -> CompiledArtifactCache {
        CompiledArtifactCache::with_shards(capacity, 1, tracer)
    }

    /// A cache striped over `shards` stripes, each holding at most
    /// `capacity` compiled artifacts (both clamped to at least one).
    pub fn with_shards(capacity: usize, shards: usize, tracer: Tracer) -> CompiledArtifactCache {
        CompiledArtifactCache {
            capacity: capacity.max(1),
            shards: (0..shards.max(1)).map(|_| CacheShard::new()).collect(),
            tracer,
        }
    }

    /// Number of cache stripes (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe `tenant`'s artifacts live on: FNV-1a of the tenant id
    /// modulo the stripe count.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (tenant.shard_hash() % self.shards.len() as u64) as usize
    }

    /// Looks up `key` on `tenant`'s stripe, building (and inserting) via
    /// `build` on a miss.
    ///
    /// Returns the entry plus `true` on a hit, `false` on a cold compile.
    /// The build runs under the stripe's lock, so concurrent misses for
    /// one key on one stripe compile exactly once; lookups on other
    /// stripes proceed unblocked.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; a failed build inserts nothing.
    pub fn get_or_insert_with(
        &self,
        tenant: &str,
        key: &ArtifactKey,
        build: impl FnOnce() -> Result<CompiledArtifact, ServeError>,
    ) -> Result<(Arc<CompiledArtifact>, bool), ServeError> {
        let shard = &self.shards[self.shard_of(tenant)];
        let mut entries = shard.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = entries.iter().position(|a| a.key() == key) {
            let entry = entries.remove(pos).expect("position is in range");
            entries.push_back(Arc::clone(&entry));
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.tracer.quiet_counter("serve.cache.hit").inc();
            return Ok((entry, true));
        }
        let entry = Arc::new(build()?);
        entries.push_back(Arc::clone(&entry));
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.tracer.quiet_counter("serve.cache.miss").inc();
        while entries.len() > self.capacity {
            entries.pop_front();
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            self.tracer.quiet_counter("serve.cache.eviction").inc();
        }
        Ok((entry, false))
    }

    /// `true` when `key` is resident on `tenant`'s stripe (does not touch
    /// LRU order or stats).
    pub fn contains(&self, tenant: &str, key: &ArtifactKey) -> bool {
        let shard = &self.shards[self.shard_of(tenant)];
        let entries = shard.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().any(|a| a.key() == key)
    }

    /// Merged counters across every stripe (one consistent-enough
    /// snapshot: each stripe is read atomically, stripes in index order).
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().map(CacheShard::stats).fold(CacheStats::default(), |a, b| a + b)
    }

    /// Per-stripe counters, in stripe-index order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(CacheShard::stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = content_hash("{\"w\":1}");
        assert_eq!(a, content_hash("{\"w\":1}"));
        assert_ne!(a, content_hash("{\"w\":2}"));
        // FNV-1a of the empty string is the offset basis
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, evictions: 0, entries: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tenant_striping_is_stable_and_merges_stats() {
        let cache = CompiledArtifactCache::with_shards(4, 8, Tracer::disabled());
        assert_eq!(cache.shard_count(), 8);
        // placement is the pure FNV-1a function, so it never moves
        assert_eq!(cache.shard_of("project-1"), cache.shard_of("project-1"));
        assert_eq!(cache.shard_of("project-1"), ("project-1".shard_hash() % 8) as usize);
        // merged stats are the sum of per-stripe stats
        let merged = cache.stats();
        let per: CacheStats =
            cache.shard_stats().into_iter().fold(CacheStats::default(), |a, b| a + b);
        assert_eq!(merged, per);
        assert_eq!(cache.shard_stats().len(), 8);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache = CompiledArtifactCache::with_shards(0, 0, Tracer::disabled());
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.shard_of("anyone"), 0);
    }
}
