//! Error type for the serving layer.

use std::fmt;

/// Errors produced while compiling or executing a served model.
///
/// Upstream error types (`CoreError`, `DspError`, `RuntimeError`,
/// `DeviceError`) are flattened to their display strings at the serving
/// boundary: a tenant sees *what* failed, while the typed detail stays in
/// the layer that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The uploaded model could not be decoded, compiled or executed.
    Model(String),
    /// The requested deployment board is not in the registry.
    UnknownBoard(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Model(msg) => write!(f, "model error: {msg}"),
            ServeError::UnknownBoard(name) => write!(f, "unknown board: {name}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(ServeError::Model("bad json".into()).to_string(), "model error: bad json");
        assert_eq!(ServeError::UnknownBoard("x9".into()).to_string(), "unknown board: x9");
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<ServeError>();
    }
}
