//! The serving front-end: admission, micro-batching and dispatch.
//!
//! A [`Server`] is the single door through which tenant inference enters
//! the pipeline:
//!
//! 1. **Admission** — [`Server::submit`] routes the request to its
//!    tenant's admission shard (FNV-1a of the tenant id, the same
//!    placement function `ei-shard` uses platform-wide), checks that
//!    shard's bounded queue first (full ⇒ [`Rejected::Overloaded`], so
//!    memory stays bounded under overload), then the tenant's token
//!    bucket, which lives on the same shard (empty ⇒
//!    [`Rejected::QuotaExceeded`]). Admitted requests get a ticket and an
//!    absolute logical-clock deadline. With the default
//!    [`ServerConfig::admission_shards`] of 1 the server behaves exactly
//!    as the unsharded original.
//! 2. **Micro-batching** — [`Server::drain`] walks the admission shards
//!    in index order; within a shard it repeatedly takes the oldest
//!    pending request and groups up to `max_batch` queued requests that
//!    resolve to the *same* [`ArtifactKey`] into one batch, so one
//!    compiled artifact amortizes across tenants. All shards feed the
//!    one shared [`ParPool`].
//! 3. **Dispatch** — each batch runs as a single [`ei_faults::retry`]
//!    attempt whose per-attempt timeout is the batch's deadline slack
//!    (deadline propagation), executing every window through one
//!    [`ParPool::par_map`] call.
//!
//! All latency in the serving layer is *modeled* and charged to the
//! injected [`Clock`]: a cold compile costs
//! [`CompiledArtifact::compile_cost_ms`], a batch costs
//! `batch_overhead_ms + per_item_ms × batch len`. The model is independent
//! of thread count and wall time, so a load test on a
//! [`ei_faults::VirtualClock`] is byte-for-byte reproducible at any
//! `EI_THREADS` setting — and the artifact cache's hit-path speedup shows
//! up as honest logical-latency numbers.

use crate::cache::{ArtifactKey, CacheStats, CompiledArtifact, CompiledArtifactCache};
use crate::error::ServeError;
use crate::quota::TokenBucket;
use crate::request::{Completion, InferenceRequest, Outcome, Rejected};
use crate::ModelSource;
use ei_core::Classification;
use ei_device::{Board, Profiler};
use ei_faults::retry::{self, RetryOutcome};
use ei_faults::{CancelToken, Clock, FailureCause, RetryPolicy};
use ei_obs::Obs;
use ei_par::ParPool;
use ei_runtime::EngineKind;
use ei_shard::ShardKey;
use ei_trace::{SpanGuard, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Latency histogram bucket bounds (logical milliseconds).
const LATENCY_BOUNDS: [f64; 10] = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0];

/// Batch-size histogram bucket bounds.
const BATCH_BOUNDS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Pending requests admitted before submissions bounce with
    /// [`Rejected::Overloaded`].
    pub queue_capacity: usize,
    /// Most same-artifact requests dispatched as one batch.
    pub max_batch: usize,
    /// Deadline for requests that pass `deadline_ms: 0`.
    pub default_deadline_ms: u64,
    /// Compiled artifacts kept resident.
    pub cache_capacity: usize,
    /// Per-tenant burst tokens.
    pub quota_capacity: u32,
    /// Per-tenant sustained request rate (tokens per second).
    pub quota_refill_per_sec: f64,
    /// Modeled per-batch dispatch overhead (logical ms).
    pub batch_overhead_ms: u64,
    /// Modeled per-request service time (logical ms).
    pub per_item_ms: u64,
    /// Admission shards. Tenants stripe across shards by FNV-1a of the
    /// tenant id; each shard has its own bounded sub-queue (capacity
    /// `queue_capacity / admission_shards`, rounded up) and owns its
    /// tenants' token buckets, so admission for one tenant population
    /// never contends on another's shard. `1` (the default) reproduces
    /// the unsharded server exactly.
    pub admission_shards: usize,
    /// Artifact-cache stripes. The compiled-artifact cache stripes by
    /// FNV-1a of the tenant id — the same placement function as
    /// `admission_shards` — into independent LRU lists of
    /// `cache_capacity` entries each, so one tenant's cold compiles
    /// never serialize another stripe's hits. `1` (the default)
    /// reproduces the single-LRU original exactly.
    pub cache_shards: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_capacity: 64,
            max_batch: 8,
            default_deadline_ms: 1_000,
            cache_capacity: 8,
            quota_capacity: 64,
            quota_refill_per_sec: 64.0,
            batch_overhead_ms: 2,
            per_item_ms: 1,
            admission_shards: 1,
            cache_shards: 1,
        }
    }
}

/// A device estimate served through the artifact cache.
///
/// The serving layer's view of a [`ei_device::Profiler`] report, flattened
/// so platform callers need no `ei-device` types.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Canonical board name the estimate is for.
    pub board: String,
    /// Engine the artifact was compiled for.
    pub engine: EngineKind,
    /// `true` for the int8 artifact.
    pub quantized: bool,
    /// Preprocessing latency (modeled device ms).
    pub dsp_ms: f64,
    /// Inference latency (modeled device ms).
    pub inference_ms: f64,
    /// End-to-end latency including invoke overhead.
    pub total_ms: f64,
    /// Total RAM the deployment needs.
    pub ram_bytes: usize,
    /// Total flash the deployment needs.
    pub flash_bytes: usize,
    /// `true` when the deployment fits the board.
    pub fits: bool,
    /// `true` when the compiled artifact came from the cache.
    pub cache_hit: bool,
}

/// One admitted, not-yet-dispatched request.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    key: ArtifactKey,
    enqueued_ms: u64,
    deadline_at_ms: u64,
    req: InferenceRequest,
    /// The request's `serve.request` span, opened at admission and
    /// closed at completion; its trace id names the whole causal chain
    /// (batch, pool scope, outcome event) for the flight recorder.
    span: SpanGuard,
}

/// State behind the server's admission lock.
#[derive(Debug)]
struct Inner {
    /// One bounded sub-queue per admission shard; a tenant's requests
    /// always land on `fnv1a(tenant) % shards`.
    queues: Vec<VecDeque<Pending>>,
    /// Token buckets, held on the owning tenant's shard.
    buckets: Vec<HashMap<String, TokenBucket>>,
    next_ticket: u64,
    completed: Vec<Completion>,
    /// Admitted-but-not-completed requests per tenant, mirrored into the
    /// obs registry as the `serve.inflight` gauge.
    inflight: HashMap<String, u64>,
}

/// The multi-tenant serving front-end.
pub struct Server {
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    pool: Arc<ParPool>,
    tracer: Tracer,
    cache: CompiledArtifactCache,
    obs: Option<Arc<Obs>>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("queue_depth", &self.queue_depth())
            .field("cache", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// A server over an injected clock, pool and tracer.
    ///
    /// Pass a [`ei_faults::VirtualClock`] to make every latency and
    /// timeout in a load test reproducible.
    pub fn new(
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        pool: Arc<ParPool>,
        tracer: Tracer,
    ) -> Server {
        let cache = CompiledArtifactCache::with_shards(
            config.cache_capacity,
            config.cache_shards,
            tracer.clone(),
        );
        let shards = config.admission_shards.max(1);
        Server {
            config,
            clock,
            pool,
            tracer,
            cache,
            obs: None,
            inner: Mutex::new(Inner {
                queues: (0..shards).map(|_| VecDeque::new()).collect(),
                buckets: (0..shards).map(|_| HashMap::new()).collect(),
                next_ticket: 1,
                completed: Vec::new(),
                inflight: HashMap::new(),
            }),
        }
    }

    /// Number of admission shards (at least 1).
    pub fn admission_shards(&self) -> usize {
        self.config.admission_shards.max(1)
    }

    /// The admission shard `tenant`'s requests (and token bucket) live
    /// on: FNV-1a of the tenant id modulo the shard count — the same
    /// placement function the platform's `ei-shard` stores use.
    pub fn admission_shard_of(&self, tenant: &str) -> usize {
        (tenant.shard_hash() % self.admission_shards() as u64) as usize
    }

    /// Pending requests per admission shard, in shard-index order.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.lock_inner().queues.iter().map(VecDeque::len).collect()
    }

    /// Each shard's queue bound: the configured total capacity split
    /// evenly (rounded up), so one shard's overload cannot consume
    /// another shard's admission budget.
    fn per_shard_capacity(&self) -> usize {
        self.config.queue_capacity.div_ceil(self.admission_shards()).max(1)
    }

    /// Attaches an always-on telemetry hub: every completion feeds the
    /// hub's sharded per-tenant registry and SLO monitors (breaches trip
    /// its flight recorder). Typically the server's `tracer` is
    /// `obs.tracer().clone()` so spans land in the same recorder.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Server {
        self.obs = Some(obs);
        self
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The serving clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The tracer requests are recorded through. Callers that open their
    /// own spans on it (e.g. a streaming session's `stream.session` span)
    /// get `serve.request` stitched in as a child via the ambient context.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Admitted-but-not-completed requests for `tenant`.
    pub fn tenant_inflight(&self, tenant: &str) -> u64 {
        self.lock_inner().inflight.get(tenant).copied().unwrap_or(0)
    }

    /// Mirrors the admission-queue depth into the obs registry (the
    /// tracer's quiet gauge only surfaces in per-run exports, which left
    /// backpressure invisible to always-on telemetry until requests were
    /// actually rejected). The `__all__` sentinel marks the one
    /// cross-tenant series, mirroring the registry's `__other__` overflow
    /// label.
    fn publish_queue_depth(&self, depth: usize) {
        if let Some(obs) = &self.obs {
            obs.registry().set_gauge("serve.queue_depth", "__all__", depth as f64);
        }
    }

    /// Mirrors one tenant's in-flight count into the obs registry.
    fn publish_inflight(&self, tenant: &str, count: u64) {
        if let Some(obs) = &self.obs {
            obs.registry().set_gauge("serve.inflight", tenant, count as f64);
        }
    }

    /// Current artifact-cache counters, merged across every stripe.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-stripe artifact-cache counters, in stripe-index order.
    pub fn cache_shard_stats(&self) -> Vec<CacheStats> {
        self.cache.shard_stats()
    }

    /// Number of artifact-cache stripes (at least 1).
    pub fn cache_shards(&self) -> usize {
        self.cache.shard_count()
    }

    /// Requests currently queued, summed across admission shards.
    pub fn queue_depth(&self) -> usize {
        self.lock_inner().queues.iter().map(VecDeque::len).sum()
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits one request, returning its ticket.
    ///
    /// Admission is two cheap checks under one lock, both on the
    /// tenant's admission shard — shard queue bound first (overload must
    /// not drain quota), then the tenant's token bucket — and never
    /// compiles or copies model bytes, so a rejection costs nothing and
    /// queue memory stays bounded at `queue_capacity` across shards.
    ///
    /// # Errors
    ///
    /// [`Rejected::Overloaded`] when the tenant's shard queue is full,
    /// [`Rejected::QuotaExceeded`] when the tenant is out of tokens.
    pub fn submit(&self, req: InferenceRequest) -> Result<u64, Rejected> {
        let now = self.clock.now_ms();
        let shard = self.admission_shard_of(&req.tenant);
        let per_shard = self.per_shard_capacity();
        let mut inner = self.lock_inner();
        if inner.queues[shard].len() >= per_shard {
            self.tracer.quiet_counter("serve.rejected.overloaded").inc();
            if let Some(obs) = &self.obs {
                obs.registry().add("serve.rejected", &req.tenant, 1);
            }
            return Err(Rejected::Overloaded { queue_depth: inner.queues[shard].len() });
        }
        let (capacity, refill) = (self.config.quota_capacity, self.config.quota_refill_per_sec);
        let bucket = inner.buckets[shard]
            .entry(req.tenant.clone())
            .or_insert_with(|| TokenBucket::new(capacity, refill, now));
        if !bucket.try_take(now) {
            self.tracer.quiet_counter("serve.rejected.quota").inc();
            if let Some(obs) = &self.obs {
                obs.registry().add("serve.rejected", &req.tenant, 1);
            }
            return Err(Rejected::QuotaExceeded { tenant: req.tenant });
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let budget_ms =
            if req.deadline_ms == 0 { self.config.default_deadline_ms } else { req.deadline_ms };
        // The request's causal root. Opened *after* admission (rejects
        // stay span-free and cheap) and adopts any ambient context, so a
        // request submitted from inside a traced caller stitches in.
        let span = self.tracer.span_with(
            "serve.request",
            vec![("tenant", req.tenant.clone().into()), ("ticket", ticket.into())],
        );
        let pending = Pending {
            ticket,
            key: req.artifact_key(),
            enqueued_ms: now,
            deadline_at_ms: now + budget_ms,
            req,
            span,
        };
        let tenant = pending.req.tenant.clone();
        inner.queues[shard].push_back(pending);
        let depth = inner.queues.iter().map(VecDeque::len).sum::<usize>();
        let inflight = {
            let count = inner.inflight.entry(tenant.clone()).or_insert(0);
            *count += 1;
            *count
        };
        self.tracer.quiet_counter("serve.submitted").inc();
        self.tracer.quiet_gauge("serve.queue_depth").set(depth as f64);
        self.publish_queue_depth(depth);
        self.publish_inflight(&tenant, inflight);
        Ok(ticket)
    }

    /// Dispatches every queued request and returns all new completions
    /// (in dispatch order).
    pub fn drain(&self) -> Vec<Completion> {
        self.process_queue();
        std::mem::take(&mut self.lock_inner().completed)
    }

    /// Dispatches the queue, then extracts the completion for `ticket`,
    /// leaving other tenants' completions for their own callers.
    pub fn resolve(&self, ticket: u64) -> Option<Completion> {
        self.process_queue();
        let mut inner = self.lock_inner();
        let pos = inner.completed.iter().position(|c| c.ticket == ticket)?;
        Some(inner.completed.remove(pos))
    }

    /// Estimates on-device cost for a model through the artifact cache
    /// (the platform's pre-deployment "how will this run on board X"
    /// call), billed to `tenant` — the lookup takes only that tenant's
    /// cache stripe. A miss charges the modeled compile cost to the
    /// clock, just like the inference path.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownBoard`] for an unknown board,
    /// [`ServeError::Model`] when the model fails to compile.
    pub fn estimate(
        &self,
        tenant: &str,
        model: &ModelSource,
        board: &str,
        engine: EngineKind,
        quantized: bool,
    ) -> Result<Estimate, ServeError> {
        let board = Board::by_name(board).map_err(|_| ServeError::UnknownBoard(board.into()))?;
        let key = ArtifactKey {
            content_hash: model.content_hash,
            board: board.name.clone(),
            engine,
            quantized,
        };
        let json = Arc::clone(&model.json);
        let (artifact, hit) = self
            .cache
            .get_or_insert_with(tenant, &key, || CompiledArtifact::compile(key.clone(), &json))?;
        if !hit {
            self.clock.sleep_ms(artifact.compile_cost_ms(), None);
        }
        let dsp_cost = artifact.dsp_cost()?;
        let report = Profiler::new(board).profile(Some(dsp_cost), artifact.engine());
        Ok(Estimate {
            ram_bytes: report.total_ram_bytes(),
            flash_bytes: report.total_flash_bytes(),
            fits: report.fit.fits,
            board: report.board,
            engine,
            quantized,
            dsp_ms: report.dsp_ms,
            inference_ms: report.inference_ms,
            total_ms: report.total_ms,
            cache_hit: hit,
        })
    }

    /// Dispatches queued requests batch by batch until every shard queue
    /// is empty, visiting shards in index order so dispatch order is
    /// deterministic at any shard count. Batches form within one shard
    /// (a tenant's requests never straddle shards) and all of them feed
    /// the one shared pool.
    fn process_queue(&self) {
        for shard in 0..self.admission_shards() {
            loop {
                let batch = {
                    let mut inner = self.lock_inner();
                    let Some(front) = inner.queues[shard].front() else { break };
                    let key = front.key.clone();
                    let mut batch = Vec::new();
                    let mut i = 0;
                    while i < inner.queues[shard].len() && batch.len() < self.config.max_batch {
                        if inner.queues[shard][i].key == key {
                            batch.push(inner.queues[shard].remove(i).expect("index is in range"));
                        } else {
                            i += 1;
                        }
                    }
                    let depth = inner.queues.iter().map(VecDeque::len).sum::<usize>();
                    self.tracer.quiet_gauge("serve.queue_depth").set(depth as f64);
                    self.publish_queue_depth(depth);
                    batch
                };
                self.run_batch(batch);
            }
        }
    }

    /// Runs one same-artifact batch: expiry sweep, cached (or cold)
    /// compile, then a single deadline-bounded retry attempt that charges
    /// the modeled service time and fans the windows out over the pool.
    fn run_batch(&self, batch: Vec<Pending>) {
        let now = self.clock.now_ms();
        let (live, expired): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| now < p.deadline_at_ms);
        for p in expired {
            let waited_ms = now.saturating_sub(p.enqueued_ms);
            self.complete(p, Outcome::DeadlineExceeded { waited_ms }, now, now, false, 0);
        }
        if live.is_empty() {
            return;
        }
        // The batch span hangs off the oldest member's request, so at
        // least one causal chain shows the full queue → batch → pool
        // path; the pool scope below stitches in via the entered context.
        let batch_span = live[0].span.child_with(
            "serve.batch",
            vec![
                ("batch_size", (live.len() as u64).into()),
                ("artifact", live[0].key.board.clone().into()),
            ],
        );
        let key = live[0].key.clone();
        let json = Arc::clone(&live[0].req.model.json);
        // batches form within one admission shard and share one artifact;
        // the lookup is billed to (and striped by) the oldest member's
        // tenant, the same request that owns the batch span
        let compiled = self.cache.get_or_insert_with(&live[0].req.tenant, &key, || {
            CompiledArtifact::compile(key.clone(), &json)
        });
        let (artifact, hit) = match compiled {
            Ok(pair) => pair,
            Err(e) => {
                let finish = self.clock.now_ms();
                let batch_size = live.len();
                drop(batch_span);
                for p in live {
                    self.complete(
                        p,
                        Outcome::Failed(e.to_string()),
                        now,
                        finish,
                        false,
                        batch_size,
                    );
                }
                return;
            }
        };
        if !hit {
            // cold path: charge the codegen / interpreter-setup cost the
            // cache exists to amortize
            self.clock.sleep_ms(artifact.compile_cost_ms(), None);
        }

        let start = self.clock.now_ms();
        // deadline propagation: the batch attempt may run at most as long
        // as its most patient member is willing to wait; items whose own
        // deadline passes are marked individually after the attempt
        let slack_ms =
            live.iter().map(|p| p.deadline_at_ms.saturating_sub(start)).max().unwrap_or(0);
        let service_ms =
            self.config.batch_overhead_ms + self.config.per_item_ms * live.len() as u64;
        let policy = RetryPolicy::immediate(1).with_timeout(slack_ms);
        let cancel = CancelToken::new();
        let mut outputs: Option<Vec<Result<Classification, ServeError>>> = None;
        let result = {
            let _in_batch = batch_span.enter();
            retry::execute(
                &policy,
                &*self.clock,
                key.content_hash,
                &cancel,
                |_| {},
                |_| {
                    self.clock.sleep_ms(service_ms, None);
                    outputs = Some(self.pool.par_map(&live, |p| {
                        if p.req.precomputed {
                            artifact.classify_features(&p.req.window)
                        } else {
                            artifact.classify(&p.req.window)
                        }
                    }));
                    Ok(String::new())
                },
            )
        };

        let finish = self.clock.now_ms();
        let batch_size = live.len();
        self.tracer.histogram("serve.batch_size", &BATCH_BOUNDS).observe(batch_size as f64);
        drop(batch_span);
        match result.outcome {
            RetryOutcome::Success { .. } => {
                let outputs = outputs.take().expect("successful attempt stored its outputs");
                for (p, out) in live.into_iter().zip(outputs) {
                    let outcome = if finish > p.deadline_at_ms {
                        Outcome::DeadlineExceeded {
                            waited_ms: finish.saturating_sub(p.enqueued_ms),
                        }
                    } else {
                        match out {
                            Ok(c) => Outcome::Classified(c),
                            Err(e) => Outcome::Failed(e.to_string()),
                        }
                    };
                    self.complete(p, outcome, start, finish, hit, batch_size);
                }
            }
            RetryOutcome::Exhausted { error } => {
                let timed_out = result
                    .attempts
                    .last()
                    .is_some_and(|a| matches!(a.cause, FailureCause::TimedOut { .. }));
                for p in live {
                    let outcome = if timed_out {
                        Outcome::DeadlineExceeded {
                            waited_ms: finish.saturating_sub(p.enqueued_ms),
                        }
                    } else {
                        Outcome::Failed(error.clone())
                    };
                    self.complete(p, outcome, start, finish, hit, batch_size);
                }
            }
            RetryOutcome::Cancelled => {
                for p in live {
                    self.complete(
                        p,
                        Outcome::Failed("cancelled".into()),
                        start,
                        finish,
                        hit,
                        batch_size,
                    );
                }
            }
        }
    }

    /// Records one finished request: outcome event on (and close of) the
    /// request span, completion buffer, per-tenant latency histogram,
    /// outcome counters, and the attached [`Obs`] hub, if any.
    fn complete(
        &self,
        p: Pending,
        outcome: Outcome,
        batch_start_ms: u64,
        finish_ms: u64,
        cache_hit: bool,
        batch_size: usize,
    ) {
        let latency_ms = finish_ms.saturating_sub(p.enqueued_ms);
        let queued_ms = batch_start_ms.saturating_sub(p.enqueued_ms);
        let event = match outcome {
            Outcome::Classified(_) => "serve.completed",
            Outcome::DeadlineExceeded { .. } => "serve.deadline_exceeded",
            Outcome::Failed(_) => "serve.failed",
        };
        self.tracer.quiet_counter(event).inc();
        // The outcome event lands *inside* the request span (then the
        // span closes), so a flight recorder triggered on it captures
        // the whole causal chain by trace id.
        p.span.event(
            event,
            vec![("tenant", p.req.tenant.clone().into()), ("latency_ms", latency_ms.into())],
        );
        self.tracer
            .histogram(&format!("serve.latency_ms.{}", p.req.tenant), &LATENCY_BOUNDS)
            .observe(latency_ms as f64);
        if let Some(obs) = &self.obs {
            obs.record_request(
                &p.req.tenant,
                latency_ms as f64,
                matches!(outcome, Outcome::Classified(_)),
            );
        }
        let completion = Completion {
            ticket: p.ticket,
            tenant: p.req.tenant.clone(),
            outcome,
            engine: p.req.engine,
            queued_ms,
            latency_ms,
            cache_hit,
            batch_size,
        };
        drop(p.span);
        let inflight = {
            let mut inner = self.lock_inner();
            inner.completed.push(completion);
            let count = inner.inflight.entry(p.req.tenant.clone()).or_insert(0);
            *count = count.saturating_sub(1);
            *count
        };
        self.publish_inflight(&p.req.tenant, inflight);
    }
}
