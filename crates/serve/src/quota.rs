//! Per-tenant admission quotas: a token bucket on the logical clock.
//!
//! Every tenant gets a bucket of `capacity` burst tokens refilled at
//! `refill_per_sec`; a submission spends one token or is rejected with
//! [`crate::Rejected::QuotaExceeded`]. Time comes from the serving layer's
//! injected [`ei_faults::Clock`], so quota behaviour is scripted exactly in
//! tests — no wall-clock flakiness.

/// A token bucket over logical milliseconds.
///
/// Refill arithmetic is plain `f64`; for a fixed sequence of
/// `(now_ms, take)` calls the token trajectory is bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket observed at logical time `now_ms`.
    ///
    /// `capacity` is clamped to at least one token; a non-positive
    /// `refill_per_sec` means the bucket never refills (burst-only).
    pub fn new(capacity: u32, refill_per_sec: f64, now_ms: u64) -> TokenBucket {
        let capacity = f64::from(capacity.max(1));
        TokenBucket {
            capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            tokens: capacity,
            last_ms: now_ms,
        }
    }

    /// Attempts to spend one token at logical time `now_ms`; `false`
    /// means the tenant is over quota right now.
    pub fn try_take(&mut self, now_ms: u64) -> bool {
        let elapsed_ms = now_ms.saturating_sub(self.last_ms);
        self.last_ms = now_ms;
        self.tokens =
            (self.tokens + elapsed_ms as f64 * self.refill_per_sec / 1_000.0).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u32 {
        self.tokens.floor().max(0.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_reject_then_refill() {
        let mut bucket = TokenBucket::new(2, 1_000.0, 0);
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(0), "burst capacity exhausted");
        // 1000 tokens/s -> one token per logical millisecond
        assert!(bucket.try_take(1));
        assert!(!bucket.try_take(1));
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut bucket = TokenBucket::new(3, 1_000.0, 0);
        assert!(bucket.try_take(0));
        // an hour of idle refill still leaves at most `capacity` tokens
        assert!(bucket.try_take(3_600_000));
        assert_eq!(bucket.available(), 2);
    }

    #[test]
    fn zero_refill_is_burst_only() {
        let mut bucket = TokenBucket::new(1, 0.0, 0);
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(10_000_000));
    }
}
