//! Scripted fault injection for pipeline stages.
//!
//! A [`FaultPlan`] wraps any stage closure and injects an exact,
//! attempt-indexed failure sequence: return an error on attempt N, panic
//! on attempt N, or sleep past a deadline (through the [`Clock`], so a
//! [`crate::VirtualClock`] makes the overrun instantaneous). Combined with
//! [`crate::retry::execute`] this lets tests script scenarios like
//! *"panics on attempt 1, errors on attempt 2, succeeds on attempt 3"*
//! deterministically.

use crate::clock::Clock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One scripted fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Replace the call with an error return.
    Error(String),
    /// Replace the call with a panic (exercises panic isolation).
    Panic(String),
    /// Delay the call by `ms` logical milliseconds before running the
    /// real work (exercises per-attempt timeouts).
    SleepMs(u64),
}

/// An attempt-indexed fault script for one stage.
///
/// The plan counts the wrapped closure's invocations itself (1-based), so
/// it composes with any retry loop. The counter is shared: keep the plan
/// around after [`FaultPlan::arm`] to assert how many calls happened.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u32, Fault>,
    calls: Arc<AtomicU32>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that errors on every attempt up to and including `k`
    /// (succeeds from attempt `k + 1` on) — the classic flaky stage.
    pub fn flaky_until(k: u32) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for attempt in 1..=k {
            plan = plan.error_on(attempt, &format!("flaky failure {attempt}/{k}"));
        }
        plan
    }

    /// Scripts an error return on the given 1-based attempt.
    pub fn error_on(mut self, attempt: u32, msg: &str) -> FaultPlan {
        self.faults.insert(attempt, Fault::Error(msg.to_string()));
        self
    }

    /// Scripts a panic on the given 1-based attempt.
    pub fn panic_on(mut self, attempt: u32, msg: &str) -> FaultPlan {
        self.faults.insert(attempt, Fault::Panic(msg.to_string()));
        self
    }

    /// Scripts a pre-work delay of `ms` logical milliseconds on the given
    /// 1-based attempt.
    pub fn sleep_on(mut self, attempt: u32, ms: u64) -> FaultPlan {
        self.faults.insert(attempt, Fault::SleepMs(ms));
        self
    }

    /// How many times the armed closure has been invoked.
    pub fn calls(&self) -> u32 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Advances the invocation counter and applies any fault scripted for
    /// this call: a sleep advances `clock` and returns `Ok` (the real work
    /// may still proceed, now past its deadline), an error returns `Err`,
    /// a panic panics.
    ///
    /// # Errors
    ///
    /// Returns the scripted error message on an error-scripted call.
    ///
    /// # Panics
    ///
    /// Panics with the scripted message on a panic-scripted call.
    pub fn fire(&self, clock: &dyn Clock) -> Result<(), String> {
        let attempt = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        match self.faults.get(&attempt) {
            Some(Fault::Error(msg)) => Err(msg.clone()),
            Some(Fault::Panic(msg)) => panic!("{}", msg.clone()),
            Some(Fault::SleepMs(ms)) => {
                clock.sleep_ms(*ms, None);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Wraps `inner`, injecting this plan's faults by invocation count.
    ///
    /// Sleep faults advance `clock` before delegating to `inner`; error
    /// and panic faults replace the call entirely.
    pub fn arm<F, T>(
        &self,
        clock: Arc<dyn Clock>,
        mut inner: F,
    ) -> impl FnMut() -> Result<T, String> + Send
    where
        F: FnMut() -> Result<T, String> + Send,
    {
        let plan = self.clone();
        move || {
            plan.fire(clock.as_ref())?;
            inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::clock::VirtualClock;
    use crate::retry::{execute, FailureCause, RetryOutcome, RetryPolicy};

    #[test]
    fn scripts_error_panic_then_success() {
        let clock = VirtualClock::shared();
        let plan = FaultPlan::new().panic_on(1, "boom").error_on(2, "transient");
        let mut work = plan.arm(clock.clone(), || Ok::<_, String>("payload".to_string()));
        let policy = RetryPolicy::default().with_seed(9).with_max_attempts(5);
        let r = execute(&policy, clock.as_ref(), 0, &CancelToken::new(), |_| {}, |_| work());
        assert_eq!(r.outcome, RetryOutcome::Success { output: "payload".into(), attempts: 3 });
        assert_eq!(plan.calls(), 3);
        assert_eq!(r.attempts[0].cause, FailureCause::Panic("boom".into()));
        assert_eq!(r.attempts[1].cause, FailureCause::Error("transient".into()));
    }

    #[test]
    fn sleep_fault_trips_the_deadline() {
        let clock = VirtualClock::shared();
        let plan = FaultPlan::new().sleep_on(1, 500);
        let mut work = plan.arm(clock.clone(), || Ok::<_, String>("fine".to_string()));
        let policy = RetryPolicy::default().with_timeout(100).with_max_attempts(2);
        let r = execute(&policy, clock.as_ref(), 0, &CancelToken::new(), |_| {}, |_| work());
        assert_eq!(r.outcome, RetryOutcome::Success { output: "fine".into(), attempts: 2 });
        assert_eq!(r.attempts[0].cause, FailureCause::TimedOut { limit_ms: 100 });
        assert!(r.attempts[0].duration_ms >= 500);
    }

    #[test]
    fn flaky_until_recovers_after_k() {
        let clock = VirtualClock::shared();
        let plan = FaultPlan::flaky_until(3);
        let mut work = plan.arm(clock.clone(), || Ok::<_, String>("up".to_string()));
        assert!(work().is_err());
        assert!(work().is_err());
        assert!(work().is_err());
        assert_eq!(work().unwrap(), "up");
        assert_eq!(plan.calls(), 4);
    }
}
