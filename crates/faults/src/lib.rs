#![warn(missing_docs)]

//! Fault-tolerance primitives and a deterministic fault-injection harness.
//!
//! The paper's platform runs ingestion, DSP, training and deployment builds
//! as queued jobs on elastic cloud compute (§4.10). Production job farms
//! must survive worker crashes, slow stages and malformed uploads, and —
//! crucially — those failure modes must be *testable* without flaky
//! wall-clock sleeps. This crate provides the shared substrate:
//!
//! * [`clock`] — a [`Clock`] abstraction with a real [`SystemClock`] and a
//!   deterministic [`VirtualClock`] whose sleeps advance logical time
//!   instantly;
//! * [`cancel`] — a cooperative [`CancelToken`] that resolves sleeping
//!   waiters promptly;
//! * [`retry`] — [`RetryPolicy`] (exponential backoff with decorrelated
//!   jitter from a seeded RNG, max-attempt / max-elapsed caps, per-attempt
//!   timeouts), the [`AttemptRecord`] history entry, and the generic
//!   [`retry::execute`] loop with panic isolation via `catch_unwind`;
//! * [`plan`] — a scripted [`FaultPlan`] (error-on-attempt-N, panic,
//!   sleep-past-deadline, flaky-until-K) that wraps any stage closure so
//!   tests can inject exact failure sequences.
//!
//! `ei-platform`'s job scheduler and `ei-core`'s workflow runner are both
//! built on [`retry::execute`], so they share one failure model.

pub mod cancel;
pub mod clock;
pub mod plan;
pub mod retry;

pub use cancel::CancelToken;
pub use clock::{Clock, SystemClock, VirtualClock};
pub use plan::{Fault, FaultPlan};
pub use retry::{
    execute, AttemptContext, AttemptRecord, FailureCause, RetryEvent, RetryOutcome, RetryPolicy,
    RetryResult,
};
