//! Retry policy, attempt history and the generic fault-tolerant
//! execution loop.
//!
//! [`execute`] runs one unit of work (a job or a workflow stage) under a
//! [`RetryPolicy`]: exponential backoff with decorrelated jitter from a
//! seeded RNG, max-attempt and max-elapsed caps, per-attempt timeouts and
//! panic isolation via `catch_unwind`. Every failed attempt is recorded in
//! an [`AttemptRecord`] (cause, duration, backoff chosen), giving
//! dead-letter queues and degraded-stage reports their full history.

use crate::cancel::CancelToken;
use crate::clock::Clock;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Weyl-sequence increment used both by the RNG and for stream mixing.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A small deterministic RNG (SplitMix64) so backoff jitter is exactly
/// reproducible from a seed without pulling in `rand`.
#[derive(Debug, Clone)]
struct Rng64(u64);

impl Rng64 {
    fn new(seed: u64) -> Rng64 {
        Rng64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How one unit of work is retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum executions (1 = no retries).
    pub max_attempts: u32,
    /// Minimum backoff between attempts, in logical milliseconds.
    pub base_ms: u64,
    /// Maximum backoff between attempts, in logical milliseconds.
    pub cap_ms: u64,
    /// Total logical-time budget across attempts and backoffs; exceeding
    /// it stops retrying even when attempts remain.
    pub max_elapsed_ms: Option<u64>,
    /// Per-attempt deadline; an attempt running longer is discarded as
    /// [`FailureCause::TimedOut`] even if it eventually returned `Ok`.
    pub timeout_ms: Option<u64>,
    /// Seed for the jitter RNG; same seed + same stream ⇒ same backoffs.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 50,
            cap_ms: 5_000,
            max_elapsed_ms: None,
            timeout_ms: None,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` immediate re-runs and no backoff — the
    /// legacy scheduler behaviour.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_ms: 0,
            cap_ms: 0,
            ..RetryPolicy::default()
        }
    }

    /// Sets the maximum attempt count (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the backoff range `[base_ms, cap_ms]`.
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> RetryPolicy {
        self.base_ms = base_ms;
        self.cap_ms = cap_ms.max(base_ms);
        self
    }

    /// Sets the total elapsed-time cap.
    pub fn with_max_elapsed(mut self, ms: u64) -> RetryPolicy {
        self.max_elapsed_ms = Some(ms);
        self
    }

    /// Sets the per-attempt timeout.
    pub fn with_timeout(mut self, ms: u64) -> RetryPolicy {
        self.timeout_ms = Some(ms);
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The first `n` backoff delays this policy will choose for a given
    /// `stream` (job id / stage index) — the exact sequence [`execute`]
    /// uses, exposed so tests and operators can predict retry schedules.
    pub fn backoff_preview(&self, stream: u64, n: usize) -> Vec<u64> {
        let mut rng = self.jitter_rng(stream);
        let mut prev = self.base_ms;
        (0..n).map(|_| self.next_backoff(&mut rng, &mut prev)).collect()
    }

    fn jitter_rng(&self, stream: u64) -> Rng64 {
        Rng64::new(self.seed ^ stream.wrapping_mul(GOLDEN))
    }

    /// Decorrelated jitter (Brooker): `min(cap, uniform(base, prev * 3))`.
    fn next_backoff(&self, rng: &mut Rng64, prev: &mut u64) -> u64 {
        let hi = prev.saturating_mul(3);
        let span = hi.saturating_sub(self.base_ms);
        let raw = if span == 0 { self.base_ms } else { self.base_ms + rng.next_u64() % span };
        let delay = raw.min(self.cap_ms);
        *prev = delay.max(self.base_ms);
        delay
    }
}

/// Why one attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The work returned an error.
    Error(String),
    /// The work panicked (isolated by `catch_unwind`).
    Panic(String),
    /// The attempt overran its per-attempt deadline.
    TimedOut {
        /// The deadline that was exceeded, in logical milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Error(msg) => write!(f, "{msg}"),
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::TimedOut { limit_ms } => {
                write!(f, "attempt exceeded {limit_ms} ms deadline")
            }
        }
    }
}

/// One failed attempt in a job or stage history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Why the attempt failed.
    pub cause: FailureCause,
    /// How long the attempt ran, in logical milliseconds.
    pub duration_ms: u64,
    /// The jittered backoff chosen before the next attempt, or `None`
    /// when this failure was terminal.
    pub backoff_ms: Option<u64>,
}

/// Context handed to the work closure on each attempt.
#[derive(Debug)]
pub struct AttemptContext<'a> {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The job's cancellation token, for cooperative checkpoints.
    pub cancel: &'a CancelToken,
}

/// Progress notifications emitted by [`execute`], letting callers mirror
/// the loop's state into an observable status (e.g. [`execute`]'s use in
/// the platform scheduler maps these onto `JobStatus`).
#[derive(Debug)]
pub enum RetryEvent<'a> {
    /// An attempt is about to run; `deadline_ms` is its absolute logical
    /// deadline when the policy sets a timeout.
    AttemptStarted {
        /// 1-based attempt number.
        attempt: u32,
        /// Absolute logical deadline, if any.
        deadline_ms: Option<u64>,
    },
    /// The attempt's closure returned (or unwound).
    AttemptFinished {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The attempt failed; the record carries cause/duration/backoff.
    AttemptFailed {
        /// The recorded failure.
        record: &'a AttemptRecord,
    },
    /// The loop is sleeping before the next attempt.
    BackingOff {
        /// The attempt that will run after the sleep.
        next_attempt: u32,
        /// The jittered delay, in logical milliseconds.
        delay_ms: u64,
    },
}

/// Terminal result of [`execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome {
    /// The work succeeded.
    Success {
        /// The work's output.
        output: String,
        /// How many attempts were used (≥ 1).
        attempts: u32,
    },
    /// Retries were exhausted (attempt cap, elapsed cap, or terminal
    /// failure); `error` describes the last cause.
    Exhausted {
        /// Description of the final failure.
        error: String,
    },
    /// The work was cancelled before completing.
    Cancelled,
}

/// The outcome plus the full failed-attempt history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryResult {
    /// Terminal outcome.
    pub outcome: RetryOutcome,
    /// Every failed attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Extracts a printable message from a panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work` under `policy` until success, exhaustion or cancellation.
///
/// * Panics inside `work` are caught and recorded as
///   [`FailureCause::Panic`] — the calling thread survives.
/// * An attempt whose logical duration exceeds `policy.timeout_ms` is
///   discarded as [`FailureCause::TimedOut`] even if it returned `Ok`.
/// * Backoff sleeps go through `clock` (instant under a
///   [`crate::VirtualClock`]) and resolve promptly on cancellation.
/// * `stream` decorrelates the jitter of concurrent callers sharing one
///   policy; the chosen delays equal
///   [`RetryPolicy::backoff_preview`]`(stream, …)` exactly.
pub fn execute<F>(
    policy: &RetryPolicy,
    clock: &dyn Clock,
    stream: u64,
    cancel: &CancelToken,
    mut observer: impl FnMut(RetryEvent<'_>),
    mut work: F,
) -> RetryResult
where
    F: FnMut(&AttemptContext<'_>) -> Result<String, String>,
{
    let start = clock.now_ms();
    let mut rng = policy.jitter_rng(stream);
    let mut prev = policy.base_ms;
    let mut records: Vec<AttemptRecord> = Vec::new();
    let mut attempt = 0u32;
    loop {
        if cancel.is_cancelled() {
            return RetryResult { outcome: RetryOutcome::Cancelled, attempts: records };
        }
        attempt += 1;
        let t0 = clock.now_ms();
        observer(RetryEvent::AttemptStarted {
            attempt,
            deadline_ms: policy.timeout_ms.map(|t| t0 + t),
        });
        let caught = catch_unwind(AssertUnwindSafe(|| work(&AttemptContext { attempt, cancel })));
        let duration_ms = clock.now_ms().saturating_sub(t0);
        observer(RetryEvent::AttemptFinished { attempt });
        let overran = policy.timeout_ms.is_some_and(|limit| duration_ms > limit);
        let failure = match caught {
            Ok(Ok(output)) if !overran => {
                return RetryResult {
                    outcome: RetryOutcome::Success { output, attempts: attempt },
                    attempts: records,
                };
            }
            // the deadline passed while the attempt ran: whatever it
            // returned is stale — the watchdog already gave up on it
            _ if overran => {
                FailureCause::TimedOut { limit_ms: policy.timeout_ms.unwrap_or_default() }
            }
            Ok(Err(msg)) => FailureCause::Error(msg),
            Ok(Ok(_)) => unreachable!("success without overrun returns above"),
            Err(payload) => FailureCause::Panic(panic_message(payload)),
        };
        let elapsed = clock.now_ms().saturating_sub(start);
        let out_of_attempts = attempt >= policy.max_attempts;
        let out_of_time = policy.max_elapsed_ms.is_some_and(|cap| elapsed >= cap);
        let cancelled = cancel.is_cancelled();
        let retryable = !out_of_attempts && !out_of_time && !cancelled;
        let backoff_ms =
            if retryable { Some(policy.next_backoff(&mut rng, &mut prev)) } else { None };
        records.push(AttemptRecord { attempt, cause: failure, duration_ms, backoff_ms });
        let record = records.last().expect("just pushed");
        observer(RetryEvent::AttemptFailed { record });
        if cancelled {
            return RetryResult { outcome: RetryOutcome::Cancelled, attempts: records };
        }
        if !retryable {
            let mut error = record.cause.to_string();
            if out_of_time && !out_of_attempts {
                error.push_str(" (retry budget exhausted)");
            }
            return RetryResult { outcome: RetryOutcome::Exhausted { error }, attempts: records };
        }
        let delay_ms = backoff_ms.unwrap_or_default();
        observer(RetryEvent::BackingOff { next_attempt: attempt + 1, delay_ms });
        if clock.sleep_ms(delay_ms, Some(cancel)) {
            return RetryResult { outcome: RetryOutcome::Cancelled, attempts: records };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn run<F>(policy: &RetryPolicy, clock: &VirtualClock, work: F) -> RetryResult
    where
        F: FnMut(&AttemptContext<'_>) -> Result<String, String>,
    {
        execute(policy, clock, 1, &CancelToken::new(), |_| {}, work)
    }

    #[test]
    fn succeeds_first_try_with_no_records() {
        let clock = VirtualClock::new();
        let r = run(&RetryPolicy::default(), &clock, |_| Ok("done".into()));
        assert_eq!(r.outcome, RetryOutcome::Success { output: "done".into(), attempts: 1 });
        assert!(r.attempts.is_empty());
    }

    #[test]
    fn flaky_work_recovers_and_history_matches_preview() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy::default().with_seed(42).with_max_attempts(5);
        let r = run(&policy, &clock, |ctx| {
            if ctx.attempt < 3 {
                Err(format!("flaky {}", ctx.attempt))
            } else {
                Ok("recovered".into())
            }
        });
        assert_eq!(r.outcome, RetryOutcome::Success { output: "recovered".into(), attempts: 3 });
        let backoffs: Vec<u64> = r.attempts.iter().map(|a| a.backoff_ms.unwrap()).collect();
        assert_eq!(backoffs, policy.backoff_preview(1, 2));
        for b in &backoffs {
            assert!((policy.base_ms..=policy.cap_ms).contains(b), "backoff {b} out of range");
        }
        // the virtual clock slept exactly the sum of the backoffs
        assert_eq!(clock.now_ms(), backoffs.iter().sum::<u64>());
    }

    #[test]
    fn backoff_preview_is_deterministic_and_stream_decorrelated() {
        let policy = RetryPolicy::default().with_seed(7);
        assert_eq!(policy.backoff_preview(3, 4), policy.backoff_preview(3, 4));
        assert_ne!(policy.backoff_preview(3, 4), policy.backoff_preview(4, 4));
        // a different seed changes the schedule
        assert_ne!(policy.backoff_preview(3, 4), policy.with_seed(8).backoff_preview(3, 4));
    }

    #[test]
    fn panic_is_isolated_and_recorded() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy::default().with_max_attempts(2);
        let r = run(&policy, &clock, |ctx| {
            if ctx.attempt == 1 {
                panic!("kaboom");
            }
            Ok("ok".into())
        });
        assert_eq!(r.outcome, RetryOutcome::Success { output: "ok".into(), attempts: 2 });
        assert_eq!(r.attempts[0].cause, FailureCause::Panic("kaboom".into()));
    }

    #[test]
    fn exhaustion_reports_last_cause() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy::default().with_max_attempts(2);
        let r = run(&policy, &clock, |ctx| Err(format!("err {}", ctx.attempt)));
        assert_eq!(r.outcome, RetryOutcome::Exhausted { error: "err 2".into() });
        assert_eq!(r.attempts.len(), 2);
        assert!(r.attempts[1].backoff_ms.is_none(), "terminal attempt has no backoff");
    }

    #[test]
    fn timeout_discards_late_success() {
        let clock = VirtualClock::new();
        let policy = RetryPolicy::default().with_timeout(10).with_max_attempts(2);
        let mut calls = 0;
        let r = execute(
            &policy,
            &clock,
            0,
            &CancelToken::new(),
            |_| {},
            |_| {
                calls += 1;
                if calls == 1 {
                    clock.advance_ms(25); // overruns the 10 ms deadline
                }
                Ok("late".into())
            },
        );
        assert_eq!(r.outcome, RetryOutcome::Success { output: "late".into(), attempts: 2 });
        assert_eq!(r.attempts[0].cause, FailureCause::TimedOut { limit_ms: 10 });
    }

    #[test]
    fn max_elapsed_stops_retrying_early() {
        let clock = VirtualClock::new();
        let policy =
            RetryPolicy::default().with_max_attempts(100).with_backoff(10, 10).with_max_elapsed(25);
        let r = run(&policy, &clock, |_| Err("always".into()));
        let RetryOutcome::Exhausted { error } = &r.outcome else {
            panic!("expected exhaustion, got {:?}", r.outcome);
        };
        assert!(error.contains("retry budget exhausted"), "{error}");
        assert!(r.attempts.len() < 100, "elapsed cap must beat the attempt cap");
    }

    #[test]
    fn cancellation_during_backoff_resolves() {
        let clock = VirtualClock::new();
        let token = CancelToken::new();
        let policy = RetryPolicy::default().with_max_attempts(10);
        let t = token.clone();
        let r = execute(
            &policy,
            &clock,
            0,
            &token,
            |_| {},
            move |_| {
                t.cancel(); // cancelled mid-attempt; backoff sleep must notice
                Err("fail".into())
            },
        );
        assert_eq!(r.outcome, RetryOutcome::Cancelled);
        assert_eq!(r.attempts.len(), 1);
    }

    #[test]
    fn immediate_policy_has_zero_backoff() {
        assert_eq!(RetryPolicy::immediate(4).backoff_preview(9, 3), vec![0, 0, 0]);
    }

    #[test]
    fn zero_attempt_policies_clamp_to_one_run() {
        assert_eq!(RetryPolicy::immediate(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().with_max_attempts(0).max_attempts, 1);
        // the clamped policy still runs the work exactly once
        let clock = VirtualClock::new();
        let mut calls = 0;
        let r = run(&RetryPolicy::default().with_max_attempts(0), &clock, |_| {
            calls += 1;
            Err("doomed".into())
        });
        assert_eq!(r.outcome, RetryOutcome::Exhausted { error: "doomed".into() });
        assert_eq!(calls, 1);
        assert_eq!(r.attempts.len(), 1);
        assert!(r.attempts[0].backoff_ms.is_none(), "a single-shot failure never backs off");
        assert_eq!(clock.now_ms(), 0, "no backoff sleep may consume logical time");
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        // base == cap pins every delay: uniform(base, prev * 3) can only
        // draw above the cap, so min(cap) flattens the whole schedule
        let flat = RetryPolicy::default().with_backoff(100, 100).with_seed(5);
        assert_eq!(flat.backoff_preview(2, 8), vec![100; 8]);
        // near u64::MAX the decorrelated-jitter growth (`prev * 3`) must
        // saturate instead of overflowing, and delays stay in [base, cap]
        let huge = RetryPolicy::default().with_backoff(u64::MAX / 2, u64::MAX).with_seed(5);
        for delay in huge.backoff_preview(2, 8) {
            assert!(delay >= u64::MAX / 2, "delay {delay} fell below base");
        }
    }

    #[test]
    fn cancellation_before_the_first_attempt_runs_nothing() {
        let clock = VirtualClock::new();
        let token = CancelToken::new();
        token.cancel();
        let mut calls = 0;
        let r = execute(
            &RetryPolicy::default(),
            &clock,
            0,
            &token,
            |_| {},
            |_| {
                calls += 1;
                Ok("never".into())
            },
        );
        assert_eq!(r.outcome, RetryOutcome::Cancelled);
        assert_eq!(calls, 0, "a pre-cancelled job must not run its closure");
        assert!(r.attempts.is_empty());
    }

    #[test]
    fn cancellation_between_attempts_skips_the_backoff_sleep() {
        let clock = VirtualClock::new();
        let token = CancelToken::new();
        let policy = RetryPolicy::default().with_max_attempts(10).with_backoff(500, 5_000);
        let t = token.clone();
        // cancel from the observer after the failure is recorded but
        // before the backoff sleep starts — the window between attempts
        let r = execute(
            &policy,
            &clock,
            0,
            &token,
            move |event| {
                if matches!(event, RetryEvent::AttemptFailed { .. }) {
                    t.cancel();
                }
            },
            |_| Err("fail".into()),
        );
        assert_eq!(r.outcome, RetryOutcome::Cancelled);
        assert_eq!(r.attempts.len(), 1);
        assert_eq!(clock.now_ms(), 0, "the pending backoff must be skipped, not slept");
    }
}
