//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A cooperative cancellation token shared between a job's submitter and
/// its worker.
///
/// Cancellation is *cooperative*: long-running stage closures receive the
/// token and are expected to poll [`CancelToken::is_cancelled`] at natural
/// checkpoints. Sleepers parked in [`CancelToken::wait_timeout_ms`] (the
/// backoff path) are woken promptly by [`CancelToken::cancel`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation and wakes any waiter parked in
    /// [`CancelToken::wait_timeout_ms`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
        let _guard = self.inner.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.inner.cond.notify_all();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Blocks for up to `ms` milliseconds of wall-clock time, returning
    /// early (with `true`) if the token is cancelled.
    pub fn wait_timeout_ms(&self, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        let mut guard = self.inner.lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _timeout) = self
                .inner
                .cond
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_cancels() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let other = token.clone();
        token.cancel();
        assert!(other.is_cancelled());
    }

    #[test]
    fn wait_resolves_promptly_on_cancel() {
        let token = CancelToken::new();
        let waiter = token.clone();
        let start = std::time::Instant::now();
        let handle = std::thread::spawn(move || waiter.wait_timeout_ms(60_000));
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
        assert!(handle.join().unwrap(), "waiter must observe cancellation");
        assert!(start.elapsed() < Duration::from_secs(10), "must not sleep the full timeout");
    }

    #[test]
    fn wait_times_out_without_cancel() {
        let token = CancelToken::new();
        assert!(!token.wait_timeout_ms(1));
    }
}
