//! Logical time: a clock abstraction with a deterministic mock.
//!
//! All fault-tolerance machinery (backoff sleeps, per-attempt deadlines,
//! elapsed-time caps) reads time through [`Clock`], so tests can script
//! exact timing with a [`VirtualClock`] and never sleep for real.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A source of monotonic logical milliseconds.
pub trait Clock: Send + Sync {
    /// Monotonic milliseconds since some fixed epoch.
    fn now_ms(&self) -> u64;

    /// Sleeps for `ms` logical milliseconds.
    ///
    /// If `cancel` is provided the sleep resolves promptly on
    /// cancellation; returns `true` when the sleep was interrupted (or the
    /// token was already cancelled).
    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool;

    /// Parks the caller until logical time moves past `from_ms`, waiting at
    /// most `real_cap_ms` wall milliseconds, and returns the current time.
    ///
    /// Unlike [`Clock::sleep_ms`] this *never advances* logical time — it
    /// is the primitive for pollers (watchdogs, status waiters) that want
    /// to observe time another party drives. On the real clock it is a
    /// plain bounded sleep; a [`VirtualClock`] wakes the caller the moment
    /// [`VirtualClock::advance_ms`] moves time, so polling loops built on
    /// it are wall-clock independent under virtual time.
    fn wait_for_tick_ms(&self, from_ms: u64, real_cap_ms: u64) -> u64 {
        if self.now_ms() == from_ms {
            std::thread::sleep(Duration::from_millis(real_cap_ms));
        }
        self.now_ms()
    }
}

/// The real wall clock.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a wall clock with its epoch at construction time.
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool {
        match cancel {
            Some(token) => token.wait_timeout_ms(ms),
            None => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                false
            }
        }
    }
}

/// A deterministic mocked clock.
///
/// `sleep_ms` advances logical time instantly (jump-to-deadline
/// semantics) and never blocks, so a scripted fault that "sleeps past a
/// deadline" runs in microseconds of wall time while the fault-tolerance
/// layer observes a genuine deadline overrun. Tests may also move time
/// explicitly with [`VirtualClock::advance_ms`].
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
    tick_lock: Mutex<()>,
    tick_cond: Condvar,
}

impl VirtualClock {
    /// Creates a virtual clock at logical time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Creates a shared handle, the form the schedulers consume.
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Moves logical time forward by `ms` and wakes any
    /// [`Clock::wait_for_tick_ms`] waiters.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
        let _guard = self.tick_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.tick_cond.notify_all();
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        self.advance_ms(ms);
        cancel.is_some_and(CancelToken::is_cancelled)
    }

    fn wait_for_tick_ms(&self, from_ms: u64, real_cap_ms: u64) -> u64 {
        let mut guard = self.tick_lock.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + Duration::from_millis(real_cap_ms);
        while self.now_ms() == from_ms {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            guard = match self.tick_cond.wait_timeout(guard, left) {
                Ok((g, _)) => g,
                Err(e) => e.into_inner().0,
            };
        }
        self.now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_without_blocking() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        let start = Instant::now();
        assert!(!clock.sleep_ms(3_600_000, None));
        assert_eq!(clock.now_ms(), 3_600_000);
        assert!(start.elapsed().as_millis() < 1_000, "virtual sleep must not block");
        clock.advance_ms(5);
        assert_eq!(clock.now_ms(), 3_600_005);
    }

    #[test]
    fn virtual_sleep_reports_pre_cancelled_token() {
        let clock = VirtualClock::new();
        let token = CancelToken::new();
        token.cancel();
        assert!(clock.sleep_ms(10, Some(&token)));
        // a pre-cancelled sleep does not consume logical time
        assert_eq!(clock.now_ms(), 0);
    }

    #[test]
    fn wait_for_tick_wakes_on_virtual_advance() {
        let clock = VirtualClock::shared();
        let waiter = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.wait_for_tick_ms(0, 30_000))
        };
        // give the waiter a moment to park, then advance: it must observe
        // the tick long before the 30 s real cap
        std::thread::sleep(Duration::from_millis(5));
        let started = Instant::now();
        clock.advance_ms(7);
        assert_eq!(waiter.join().unwrap(), 7);
        assert!(started.elapsed().as_secs() < 5, "waiter must wake on advance, not the cap");
        // a passive wait never advances logical time itself
        assert_eq!(clock.wait_for_tick_ms(7, 1), 7);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        clock.sleep_ms(2, None);
        assert!(clock.now_ms() >= a);
    }
}
