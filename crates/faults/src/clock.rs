//! Logical time: a clock abstraction with a deterministic mock.
//!
//! All fault-tolerance machinery (backoff sleeps, per-attempt deadlines,
//! elapsed-time caps) reads time through [`Clock`], so tests can script
//! exact timing with a [`VirtualClock`] and never sleep for real.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of monotonic logical milliseconds.
pub trait Clock: Send + Sync {
    /// Monotonic milliseconds since some fixed epoch.
    fn now_ms(&self) -> u64;

    /// Sleeps for `ms` logical milliseconds.
    ///
    /// If `cancel` is provided the sleep resolves promptly on
    /// cancellation; returns `true` when the sleep was interrupted (or the
    /// token was already cancelled).
    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool;
}

/// The real wall clock.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a wall clock with its epoch at construction time.
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool {
        match cancel {
            Some(token) => token.wait_timeout_ms(ms),
            None => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                false
            }
        }
    }
}

/// A deterministic mocked clock.
///
/// `sleep_ms` advances logical time instantly (jump-to-deadline
/// semantics) and never blocks, so a scripted fault that "sleeps past a
/// deadline" runs in microseconds of wall time while the fault-tolerance
/// layer observes a genuine deadline overrun. Tests may also move time
/// explicitly with [`VirtualClock::advance_ms`].
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// Creates a virtual clock at logical time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Creates a shared handle, the form the schedulers consume.
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Moves logical time forward by `ms`.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64, cancel: Option<&CancelToken>) -> bool {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return true;
            }
        }
        self.advance_ms(ms);
        cancel.is_some_and(CancelToken::is_cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_without_blocking() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        let start = Instant::now();
        assert!(!clock.sleep_ms(3_600_000, None));
        assert_eq!(clock.now_ms(), 3_600_000);
        assert!(start.elapsed().as_millis() < 1_000, "virtual sleep must not block");
        clock.advance_ms(5);
        assert_eq!(clock.now_ms(), 3_600_005);
    }

    #[test]
    fn virtual_sleep_reports_pre_cancelled_token() {
        let clock = VirtualClock::new();
        let token = CancelToken::new();
        token.cancel();
        assert!(clock.sleep_ms(10, Some(&token)));
        // a pre-cancelled sleep does not consume logical time
        assert_eq!(clock.now_ms(), 0);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        clock.sleep_ms(2, None);
        assert!(clock.now_ms() >= a);
    }
}
