#![warn(missing_docs)]

//! The EON Tuner: AutoML over the joint DSP × NN design space under
//! device constraints (paper §4.7, Fig. 3, Table 3).
//!
//! The tuner "combines a random search algorithm with a heuristic to
//! quickly estimate the performance of the configurations" while "taking
//! into account available RAM, ROM, and CPU clock speed of the target
//! device". This crate implements that loop end to end:
//!
//! 1. build the candidate cross product of DSP configurations and model
//!    families ([`space::SearchSpace`]);
//! 2. *heuristic pre-filter*: estimate latency/RAM/flash with the device
//!    cost model **before** training and drop configurations that cannot
//!    meet the constraints ([`tuner::EonTuner::estimate_candidate`]);
//! 3. train the survivors briefly and measure accuracy on the held-out
//!    split ([`tuner::EonTuner::run`] — random search);
//! 4. report every trial with the Fig. 3 columns (accuracy + stacked
//!    DSP/NN latency, RAM, flash) and the accuracy/resource Pareto front.
//!
//! The paper lists Hyperband as future work; [`tuner::EonTuner::run_hyperband`]
//! implements successive halving as that extension. Custom strategies can
//! drive [`tuner::EonTuner::evaluate_candidate`] directly (the "users can
//! override the default search algorithm" hook).

pub mod space;
pub mod tuner;

pub use space::{Candidate, ModelChoice, SearchSpace};
pub use tuner::{EonTuner, TrialResult, TunerConfig, TunerReport};
