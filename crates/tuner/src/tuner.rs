//! The tuner engine: heuristic pre-filtering, random search, successive
//! halving, and Pareto reporting.
//!
//! Candidate estimation and training run on an [`ei_par::ParPool`]
//! (shared process-wide pool by default, injectable via
//! [`EonTuner::with_pool`]). Results land by candidate index and the
//! pre-filter walk is replayed in shuffle order, so a parallel run
//! produces a [`TunerReport`] byte-identical (see
//! [`TunerReport::to_json`]) to the serial one.

use crate::space::{Candidate, SearchSpace};
use ei_core::impulse::{ImpulseDesign, TrainedImpulse};
use ei_core::{CoreError, Result};
use ei_data::{Dataset, Split};
use ei_device::Profiler;
use ei_dist::{DistConfig, DistFaultPlan, DistTrainer};
use ei_faults::CancelToken;
use ei_nn::train::{TrainConfig, Trainer, TrainingReport};
use ei_nn::Sequential;
use ei_par::{ParError, ParPool};
use ei_runtime::{EngineKind, EonProgram, Interpreter, ModelArtifact};
use ei_trace::json::{Json, JsonObject};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// How many candidates the random search actually trains.
    pub trials: usize,
    /// Training configuration used per trial (keep epochs short).
    pub train: TrainConfig,
    /// Execute/report trials as int8 (quantized) or float32.
    pub quantize: bool,
    /// Engine whose memory/dispatch model is used for estimates.
    pub engine: EngineKind,
    /// Optional latency budget in milliseconds (end-to-end).
    pub max_latency_ms: Option<f64>,
    /// Search RNG seed.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            trials: 8,
            train: TrainConfig { epochs: 8, ..TrainConfig::default() },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            max_latency_ms: None,
            seed: 7,
        }
    }
}

/// One evaluated configuration — a row of paper Table 3 / a card in Fig. 3.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The candidate that was evaluated.
    pub candidate: Candidate,
    /// Display name of the preprocessing block (Table 3 notation).
    pub dsp_name: String,
    /// Display name of the model.
    pub model_name: String,
    /// Held-out accuracy (0–1).
    pub accuracy: f32,
    /// Estimated preprocessing latency (ms).
    pub dsp_ms: f64,
    /// Estimated inference latency (ms).
    pub nn_ms: f64,
    /// Estimated DSP scratch RAM (bytes).
    pub dsp_ram: usize,
    /// Estimated model RAM (bytes).
    pub nn_ram: usize,
    /// Estimated model flash (bytes).
    pub flash: usize,
    /// Whether the configuration fits the target device.
    pub fits: bool,
}

impl TrialResult {
    /// Total estimated latency.
    pub fn total_ms(&self) -> f64 {
        self.dsp_ms + self.nn_ms
    }

    /// Total estimated RAM.
    pub fn total_ram(&self) -> usize {
        self.dsp_ram + self.nn_ram
    }
}

/// The outcome of a tuner run.
#[derive(Debug, Clone, Default)]
pub struct TunerReport {
    /// Every trained trial, sorted by accuracy (descending).
    pub trials: Vec<TrialResult>,
    /// Candidates dropped by the heuristic pre-filter (with reasons).
    pub filtered: Vec<(Candidate, String)>,
}

impl TunerReport {
    /// The accuracy-vs-latency Pareto front (no trial both slower and less
    /// accurate than another), sorted by latency.
    pub fn pareto_front(&self) -> Vec<&TrialResult> {
        let mut front: Vec<&TrialResult> = Vec::new();
        for t in &self.trials {
            let dominated = self.trials.iter().any(|o| {
                (o.accuracy > t.accuracy && o.total_ms() <= t.total_ms())
                    || (o.accuracy >= t.accuracy && o.total_ms() < t.total_ms())
            });
            if !dominated {
                front.push(t);
            }
        }
        front.sort_by(|a, b| a.total_ms().partial_cmp(&b.total_ms()).expect("finite"));
        front
    }

    /// The most accurate trial that fits the device, if any.
    pub fn best_fitting(&self) -> Option<&TrialResult> {
        self.trials
            .iter()
            .filter(|t| t.fits)
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite accuracy"))
    }

    /// A deterministic compact-JSON rendering of the whole report:
    /// every trial (in order, with all estimates), every filtered
    /// candidate with its reason, and the derived Pareto front. Two
    /// reports serialize to the same bytes iff they are identical —
    /// this is what the determinism regression (serial vs. parallel
    /// tuner run) compares.
    pub fn to_json(&self) -> String {
        let trial_json = |t: &TrialResult| {
            Json::Object(
                JsonObject::new()
                    .field("dsp", Json::Str(t.dsp_name.clone()))
                    .field("model", Json::Str(t.model_name.clone()))
                    .field("accuracy", Json::Float(f64::from(t.accuracy)))
                    .field("dsp_ms", Json::Float(t.dsp_ms))
                    .field("nn_ms", Json::Float(t.nn_ms))
                    .field("dsp_ram", Json::Uint(t.dsp_ram as u64))
                    .field("nn_ram", Json::Uint(t.nn_ram as u64))
                    .field("flash", Json::Uint(t.flash as u64))
                    .field("fits", Json::Bool(t.fits)),
            )
        };
        JsonObject::new()
            .field("trials", Json::Array(self.trials.iter().map(trial_json).collect()))
            .field(
                "filtered",
                Json::Array(
                    self.filtered
                        .iter()
                        .map(|(candidate, reason)| {
                            Json::Object(
                                JsonObject::new()
                                    .field("dsp", Json::Str(candidate.dsp.summary()))
                                    .field("model", Json::Str(candidate.model.name()))
                                    .field("reason", Json::Str(reason.clone())),
                            )
                        })
                        .collect(),
                ),
            )
            .field(
                "pareto_front",
                Json::Array(self.pareto_front().into_iter().map(trial_json).collect()),
            )
            .to_json()
    }
}

/// The EON Tuner bound to a dataset-independent problem definition.
#[derive(Debug, Clone)]
pub struct EonTuner {
    space: SearchSpace,
    profiler: Profiler,
    config: TunerConfig,
    window_samples: usize,
    pool: Option<Arc<ParPool>>,
    cancel: Option<CancelToken>,
    dist: Option<DistConfig>,
    dist_faults: Option<DistFaultPlan>,
}

impl EonTuner {
    /// Creates a tuner for a search space, target device and window size.
    /// Candidate sweeps run on the process-wide [`ParPool::global`]
    /// unless [`EonTuner::with_pool`] installs a dedicated one.
    pub fn new(
        space: SearchSpace,
        profiler: Profiler,
        window_samples: usize,
        config: TunerConfig,
    ) -> EonTuner {
        EonTuner {
            space,
            profiler,
            config,
            window_samples,
            pool: None,
            cancel: None,
            dist: None,
            dist_faults: None,
        }
    }

    /// Trains trials on the `ei-dist` data-parallel cluster instead of
    /// the in-process serial trainer. Distributed training is bitwise
    /// deterministic at any worker count, so the report is unchanged by
    /// `dist.workers`; what changes is the failure model — a trial whose
    /// cluster dies (every worker lost, or an epoch out of retries)
    /// becomes a skipped-trial record instead of aborting the search.
    #[must_use]
    pub fn with_distributed(mut self, dist: DistConfig) -> EonTuner {
        self.dist = Some(dist);
        self
    }

    /// Arms a worker-fault script for distributed trials. Each trial gets
    /// a [`DistFaultPlan::fresh`] copy, so every trial faces the same
    /// scripted faults independently.
    #[must_use]
    pub fn with_dist_faults(mut self, faults: DistFaultPlan) -> EonTuner {
        self.dist_faults = Some(faults);
        self
    }

    /// Runs candidate sweeps on `pool` instead of the global pool.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ParPool>) -> EonTuner {
        self.pool = Some(pool);
        self
    }

    /// Observes `cancel` cooperatively: once the token fires, no new
    /// candidate starts and [`EonTuner::run`]/[`EonTuner::run_hyperband`]
    /// return [`CoreError::Cancelled`].
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> EonTuner {
        self.cancel = Some(cancel);
        self
    }

    fn pool(&self) -> &ParPool {
        self.pool.as_deref().unwrap_or_else(|| ParPool::global())
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Runs `f` once per item on the pool; per-candidate errors are data
    /// (`Ok(Err(_))` slots), while cancellation aborts the whole sweep.
    fn sweep<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> Result<R> + Sync,
    ) -> Result<Vec<Result<R>>> {
        let outcome = self.pool().par_map_fallible(self.cancel.as_ref(), items, |item| {
            if self.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            Ok(f(item))
        });
        match outcome {
            Ok(results) => Ok(results),
            Err(ParError::Cancelled) | Err(ParError::Task(CoreError::Cancelled)) => {
                Err(CoreError::Cancelled)
            }
            Err(ParError::Task(other)) => Err(other),
        }
    }

    /// Heuristic pre-estimate of one candidate **without training**: builds
    /// the (untrained) model, compiles it, and runs the device cost model.
    ///
    /// Returns a [`TrialResult`] with `accuracy = NaN`.
    ///
    /// # Errors
    ///
    /// Fails when the candidate's DSP or model cannot be built for the
    /// window size.
    pub fn estimate_candidate(&self, candidate: &Candidate, classes: usize) -> Result<TrialResult> {
        let design = ImpulseDesign::new("tuner-probe", self.window_samples, candidate.dsp.clone())?;
        let dims = design.feature_dims()?;
        let spec = candidate.model.spec(dims, classes);
        let model = Sequential::build(&spec, self.config.seed)?;
        let artifact = if self.config.quantize {
            // weights are untrained; ranges from a zero probe are fine for
            // *size* estimation
            let probe = vec![vec![0.0f32; dims.len()]];
            ModelArtifact::Int8(ei_quant::quantize_model(&model, &probe)?)
        } else {
            ModelArtifact::Float(model)
        };
        let dsp_block = design.dsp_block()?;
        let dsp_cost = dsp_block.cost(self.window_samples)?;
        let report = match self.config.engine {
            EngineKind::TflmInterpreter => {
                let engine = Interpreter::new(artifact)?;
                self.profiler.profile(Some(dsp_cost), &engine)
            }
            EngineKind::EonCompiled => {
                let engine = EonProgram::compile(artifact)?;
                self.profiler.profile(Some(dsp_cost), &engine)
            }
        };
        Ok(TrialResult {
            dsp_name: candidate.dsp.summary(),
            model_name: candidate.model.name(),
            candidate: candidate.clone(),
            accuracy: f32::NAN,
            dsp_ms: report.dsp_ms,
            nn_ms: report.inference_ms,
            dsp_ram: report.dsp_ram_bytes,
            nn_ram: report.model_ram_bytes,
            flash: report.model_flash_bytes,
            fits: report.fit.fits,
        })
    }

    /// Fully evaluates one candidate: train on the dataset's training
    /// split, measure accuracy on the testing split, and attach estimates.
    ///
    /// # Errors
    ///
    /// Propagates training and estimation failures.
    pub fn evaluate_candidate(
        &self,
        candidate: &Candidate,
        dataset: &Dataset,
        train: &TrainConfig,
    ) -> Result<TrialResult> {
        let classes = dataset.labels().len();
        let mut result = self.estimate_candidate(candidate, classes)?;
        let design = ImpulseDesign::new("tuner-trial", self.window_samples, candidate.dsp.clone())?;
        let dims = design.feature_dims()?;
        let spec = candidate.model.spec(dims, classes);
        let trained = match &self.dist {
            Some(dist) => self.train_distributed(dist, &design, &spec, dataset, train)?,
            None => design.train(&spec, dataset, train)?,
        };
        let artifact =
            if self.config.quantize { trained.int8_artifact()? } else { trained.float_artifact() };
        let eval = trained.evaluate(&artifact, dataset, Split::Testing)?;
        result.accuracy = eval.accuracy;
        Ok(result)
    }

    /// Trains one trial on the `ei-dist` cluster: extract features, init
    /// the class-prior bias exactly as the serial path does, run the
    /// data-parallel trainer, and assemble the result via
    /// [`TrainedImpulse::from_parts`]. A cluster failure (all workers
    /// dead, retries exhausted) surfaces as [`CoreError::Nn`], which the
    /// search loops record as a skipped trial.
    fn train_distributed(
        &self,
        dist: &DistConfig,
        design: &ImpulseDesign,
        spec: &ei_nn::ModelSpec,
        dataset: &Dataset,
        train: &TrainConfig,
    ) -> Result<TrainedImpulse> {
        let (features, ys, labels) = design.extract_features(dataset, Split::Training)?;
        let n_classes = labels.len();
        let mut model = Sequential::build(spec, train.seed)?;
        if model.output_dims().len() != n_classes {
            return Err(CoreError::InvalidImpulse(format!(
                "model has {} outputs, dataset has {} classes",
                model.output_dims().len(),
                n_classes
            )));
        }
        Trainer::new(train.clone()).init_class_bias(&mut model, &ys, n_classes)?;
        let mut trainer = DistTrainer::new(dist.clone(), train.clone());
        if let Some(faults) = &self.dist_faults {
            trainer = trainer.with_faults(faults.fresh());
        }
        let dist_report = trainer
            .train(&mut model, &features, &ys)
            .map_err(|e| CoreError::Nn(format!("distributed training failed: {e}")))?;
        let report = TrainingReport {
            train_loss: dist_report.train_loss,
            val_loss: Vec::new(),
            val_accuracy: Vec::new(),
            best_epoch: dist_report.epochs.saturating_sub(1),
            best_val_accuracy: f32::NAN,
        };
        Ok(TrainedImpulse::from_parts(design.clone(), labels, model, report, features))
    }

    /// Random search (the paper's default algorithm): shuffle the cross
    /// product, heuristically drop configurations that cannot fit the
    /// device or latency budget, then train up to `trials` survivors.
    ///
    /// Estimation and training both fan out over the pool; the
    /// pre-filter walk is then replayed serially in shuffle order on the
    /// precomputed estimates, so the report (trial set, filter records,
    /// sort order) is identical at any thread count.
    ///
    /// # Errors
    ///
    /// Fails when the search space is empty or the dataset is unusable;
    /// returns [`CoreError::Cancelled`] when the cancel token fires.
    pub fn run(&self, dataset: &Dataset) -> Result<TunerReport> {
        if self.space.is_empty() {
            return Err(CoreError::InvalidImpulse("empty search space".into()));
        }
        let classes = dataset.labels().len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut candidates = self.space.candidates();
        candidates.shuffle(&mut rng);

        // Estimates are training-free and pure, so sweep them all up
        // front; the surplus beyond the trial quota is discarded by the
        // replay below exactly where the serial loop would have stopped.
        let estimates = self.sweep(&candidates, |c| self.estimate_candidate(c, classes))?;

        let mut report = TunerReport::default();
        let mut selected: Vec<Candidate> = Vec::new();
        for (candidate, estimate) in candidates.into_iter().zip(estimates) {
            if selected.len() >= self.config.trials {
                break;
            }
            // heuristic pre-filter: skip what cannot work before training
            let estimate = match estimate {
                Ok(e) => e,
                Err(e) => {
                    report.filtered.push((candidate, format!("build failed: {e}")));
                    continue;
                }
            };
            if !estimate.fits {
                report.filtered.push((candidate, "exceeds device memory".into()));
                continue;
            }
            if let Some(budget) = self.config.max_latency_ms {
                if estimate.total_ms() > budget {
                    report.filtered.push((
                        candidate,
                        format!("estimated {:.0} ms > budget", estimate.total_ms()),
                    ));
                    continue;
                }
            }
            selected.push(candidate);
        }

        let outcomes =
            self.sweep(&selected, |c| self.evaluate_candidate(c, dataset, &self.config.train))?;
        for (candidate, trial) in selected.into_iter().zip(outcomes) {
            match trial {
                Ok(trial) => report.trials.push(trial),
                // Under the distributed backend a dead cluster is an
                // expected per-trial hazard: record the killed trial and
                // keep searching, exactly as `run_hyperband` does.
                Err(err) if self.dist.is_some() => {
                    report.filtered.push((candidate, format!("evaluation failed: {err}")));
                }
                // The serial path keeps its abort-on-first-error
                // contract: the lowest-index error, as the serial loop
                // would hit it.
                Err(err) => return Err(err),
            }
        }
        report.trials.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite accuracy"));
        Ok(report)
    }

    /// Successive halving (Hyperband's inner loop — the paper's "future
    /// work" search): start `width` random candidates at `base_epochs`,
    /// keep the best half each round, double the budget, until one remains
    /// or `rounds` elapse.
    ///
    /// Each round's evaluations fan out over the pool. A candidate whose
    /// evaluation fails is recorded under `filtered` (reason
    /// `"evaluation failed: …"`) and drops out of the round; the round —
    /// and the search — carry on with the rest.
    ///
    /// # Errors
    ///
    /// Fails when the search space is empty; returns
    /// [`CoreError::Cancelled`] when the cancel token fires.
    pub fn run_hyperband(
        &self,
        dataset: &Dataset,
        width: usize,
        base_epochs: usize,
        rounds: usize,
    ) -> Result<TunerReport> {
        if self.space.is_empty() {
            return Err(CoreError::InvalidImpulse("empty search space".into()));
        }
        let classes = dataset.labels().len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut candidates = self.space.candidates();
        candidates.shuffle(&mut rng);

        let mut report = TunerReport::default();
        let estimates = self.sweep(&candidates, |c| self.estimate_candidate(c, classes))?;
        let mut pool: Vec<Candidate> = Vec::new();
        for (candidate, estimate) in candidates.into_iter().zip(estimates) {
            if pool.len() >= width {
                break;
            }
            match estimate {
                Ok(e) if e.fits => pool.push(candidate),
                Ok(_) => report.filtered.push((candidate, "exceeds device memory".into())),
                Err(err) => report.filtered.push((candidate, format!("build failed: {err}"))),
            }
        }
        let mut epochs = base_epochs.max(1);
        let mut survivors = pool;
        for round in 0..rounds {
            if survivors.len() <= 1 {
                break;
            }
            let train = TrainConfig { epochs, ..self.config.train.clone() };
            let outcomes =
                self.sweep(&survivors, |c| self.evaluate_candidate(c, dataset, &train))?;
            let mut scored: Vec<TrialResult> = Vec::with_capacity(survivors.len());
            for (candidate, outcome) in survivors.iter().zip(outcomes) {
                match outcome {
                    Ok(trial) => scored.push(trial),
                    // A failing candidate is a skipped trial, not a
                    // failed round: record it and keep going.
                    Err(err) => report
                        .filtered
                        .push((candidate.clone(), format!("evaluation failed: {err}"))),
                }
            }
            if scored.is_empty() {
                break;
            }
            scored.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite"));
            let keep = (scored.len() / 2).max(1);
            survivors = scored.iter().take(keep).map(|t| t.candidate.clone()).collect();
            if round + 1 == rounds || survivors.len() == 1 {
                report.trials = scored;
            }
            epochs *= 2;
        }
        report.trials.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite accuracy"));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ModelChoice;
    use ei_data::synth::KwsGenerator;
    use ei_device::Board;
    use ei_dsp::{DspConfig, MfccConfig, MfeConfig};

    fn small_space() -> SearchSpace {
        SearchSpace {
            dsp: vec![
                DspConfig::Mfcc(MfccConfig {
                    frame_s: 0.032,
                    stride_s: 0.016,
                    n_coefficients: 8,
                    n_filters: 16,
                    sample_rate_hz: 4_000,
                }),
                DspConfig::Mfe(MfeConfig {
                    frame_s: 0.032,
                    stride_s: 0.016,
                    n_filters: 12,
                    sample_rate_hz: 4_000,
                    low_hz: 0.0,
                    high_hz: 0.0,
                }),
            ],
            models: vec![
                ModelChoice::DenseMlp { hidden: 16 },
                ModelChoice::Conv1dStack { depth: 2, base_filters: 8 },
            ],
        }
    }

    fn small_dataset() -> Dataset {
        KwsGenerator {
            classes: vec!["on".into(), "off".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
        .dataset(12, 3)
    }

    fn quick_tuner(trials: usize) -> EonTuner {
        EonTuner::new(
            small_space(),
            Profiler::new(Board::nano33_ble_sense()),
            1_000,
            TunerConfig {
                trials,
                train: TrainConfig { epochs: 6, learning_rate: 0.01, ..TrainConfig::default() },
                ..TunerConfig::default()
            },
        )
    }

    #[test]
    fn estimate_without_training() {
        let tuner = quick_tuner(4);
        let candidate = &tuner.space.candidates()[0];
        let est = tuner.estimate_candidate(candidate, 2).unwrap();
        assert!(est.accuracy.is_nan());
        assert!(est.dsp_ms > 0.0);
        assert!(est.nn_ms > 0.0);
        assert!(est.flash > 0);
    }

    #[test]
    fn random_search_produces_sorted_trials() {
        let tuner = quick_tuner(3);
        let report = tuner.run(&small_dataset()).unwrap();
        assert_eq!(report.trials.len(), 3);
        for pair in report.trials.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
        // synthetic keywords are separable: the best trial should be good
        assert!(report.trials[0].accuracy > 0.7, "best accuracy {}", report.trials[0].accuracy);
    }

    #[test]
    fn latency_budget_filters_candidates() {
        let mut tuner = quick_tuner(10);
        tuner.config.max_latency_ms = Some(0.001); // impossible budget
        let report = tuner.run(&small_dataset()).unwrap();
        assert!(report.trials.is_empty());
        assert_eq!(report.filtered.len(), 4, "every candidate filtered");
        assert!(report.filtered.iter().all(|(_, why)| why.contains("budget")));
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let tuner = quick_tuner(4);
        let report = tuner.run(&small_dataset()).unwrap();
        let front = report.pareto_front();
        assert!(!front.is_empty());
        for f in &front {
            for t in &report.trials {
                let dominates = t.accuracy > f.accuracy && t.total_ms() <= f.total_ms();
                assert!(!dominates, "front member dominated");
            }
        }
        // front sorted by latency
        for pair in front.windows(2) {
            assert!(pair[0].total_ms() <= pair[1].total_ms());
        }
    }

    #[test]
    fn eon_engine_estimates_leaner_than_tflm() {
        let tflm = quick_tuner(1);
        let eon_cfg = TunerConfig { engine: EngineKind::EonCompiled, ..TunerConfig::default() };
        let eon =
            EonTuner::new(small_space(), Profiler::new(Board::nano33_ble_sense()), 1_000, eon_cfg);
        let candidate = &small_space().candidates()[0];
        let t = tflm.estimate_candidate(candidate, 2).unwrap();
        let e = eon.estimate_candidate(candidate, 2).unwrap();
        assert!(e.flash < t.flash, "eon flash {} vs tflm {}", e.flash, t.flash);
        assert!(e.nn_ram < t.nn_ram);
        assert!(e.nn_ms <= t.nn_ms);
    }

    #[test]
    fn best_fitting_respects_fits_flag() {
        let tuner = quick_tuner(2);
        let report = tuner.run(&small_dataset()).unwrap();
        let best = report.best_fitting().expect("small models fit the nano");
        assert!(best.fits);
    }

    #[test]
    fn hyperband_narrows_to_survivors() {
        let tuner = quick_tuner(4);
        let report = tuner.run_hyperband(&small_dataset(), 4, 2, 2).unwrap();
        // final round scored at least one trial, sorted
        assert!(!report.trials.is_empty());
        for pair in report.trials.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        use ei_par::Parallelism;
        let dataset = small_dataset();
        let reports: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let pool = Arc::new(ParPool::new(Parallelism::new(threads)));
                let tuner = quick_tuner(3).with_pool(pool);
                tuner.run(&dataset).unwrap().to_json()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "TunerReport must not depend on thread count");
    }

    #[test]
    fn hyperband_records_evaluation_failures_instead_of_aborting() {
        // Window of 800 samples vs. 1000-sample recordings: estimation
        // (window-only) succeeds, evaluation (feature extraction over the
        // dataset) fails for every candidate. The old behaviour aborted
        // the whole round with the first error.
        let tuner = EonTuner::new(
            small_space(),
            Profiler::new(Board::nano33_ble_sense()),
            800,
            TunerConfig {
                trials: 4,
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                ..TunerConfig::default()
            },
        );
        let report = tuner.run_hyperband(&small_dataset(), 4, 1, 2).unwrap();
        assert!(report.trials.is_empty());
        let failures =
            report.filtered.iter().filter(|(_, why)| why.contains("evaluation failed")).count();
        assert_eq!(failures, 4, "every candidate recorded as a skipped trial");
    }

    #[test]
    fn fired_cancel_token_stops_the_run() {
        let cancel = ei_faults::CancelToken::new();
        cancel.cancel();
        let tuner = quick_tuner(3).with_cancel(cancel);
        assert!(matches!(tuner.run(&small_dataset()), Err(CoreError::Cancelled)));
        assert!(matches!(
            tuner.run_hyperband(&small_dataset(), 4, 1, 2),
            Err(CoreError::Cancelled)
        ));
    }

    #[test]
    fn report_json_is_stable_and_complete() {
        let tuner = quick_tuner(2);
        let report = tuner.run(&small_dataset()).unwrap();
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "serialization must be deterministic");
        assert!(json.starts_with(r#"{"trials":["#));
        assert!(json.contains(r#""pareto_front":["#));
        assert_eq!(json.matches(r#""accuracy":"#).count(), 2 + report.pareto_front().len());
    }

    #[test]
    fn distributed_report_is_identical_at_any_worker_count() {
        let dataset = small_dataset();
        let reports: Vec<String> = [1usize, 4]
            .into_iter()
            .map(|workers| {
                let tuner = quick_tuner(2).with_distributed(DistConfig::new(workers));
                tuner.run(&dataset).unwrap().to_json()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "dist training must not depend on worker count");
    }

    #[test]
    fn distributed_trial_survives_injected_worker_crash() {
        let dataset = small_dataset();
        let baseline = quick_tuner(1).with_distributed(DistConfig::new(2)).run(&dataset).unwrap();
        // crash worker 1 mid-epoch in every trial; recovery reruns the
        // epoch from checkpoint, so the report is bitwise unchanged
        let faulted = quick_tuner(1)
            .with_distributed(DistConfig::new(2).with_timeout_ms(40))
            .with_dist_faults(DistFaultPlan::new().inject(1, 0, 0, ei_dist::WorkerFault::Crash))
            .run(&dataset)
            .unwrap();
        assert_eq!(baseline.trials.len(), 1);
        assert_eq!(baseline.to_json(), faulted.to_json());
    }

    #[test]
    fn distributed_killed_trial_becomes_a_skipped_record() {
        // a single-worker cluster whose only worker crashes cannot
        // recover: the trial dies, the search carries on
        let tuner = quick_tuner(2)
            .with_distributed(DistConfig::new(1).with_timeout_ms(40))
            .with_dist_faults(DistFaultPlan::new().inject(0, 0, 0, ei_dist::WorkerFault::Crash));
        let report = tuner.run(&small_dataset()).unwrap();
        assert!(report.trials.is_empty());
        let skipped =
            report.filtered.iter().filter(|(_, why)| why.contains("evaluation failed")).count();
        assert_eq!(skipped, 2, "every killed trial recorded, none aborted the run");
    }

    #[test]
    fn empty_space_rejected() {
        let tuner = EonTuner::new(
            SearchSpace { dsp: vec![], models: vec![] },
            Profiler::new(Board::nano33_ble_sense()),
            1_000,
            TunerConfig::default(),
        );
        assert!(tuner.run(&small_dataset()).is_err());
        assert!(tuner.run_hyperband(&small_dataset(), 2, 1, 1).is_err());
    }
}
