//! The tuner engine: heuristic pre-filtering, random search, successive
//! halving, and Pareto reporting.

use crate::space::{Candidate, SearchSpace};
use ei_core::impulse::ImpulseDesign;
use ei_core::{CoreError, Result};
use ei_data::{Dataset, Split};
use ei_device::Profiler;
use ei_nn::train::TrainConfig;
use ei_nn::Sequential;
use ei_runtime::{EngineKind, EonProgram, Interpreter, ModelArtifact};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// How many candidates the random search actually trains.
    pub trials: usize,
    /// Training configuration used per trial (keep epochs short).
    pub train: TrainConfig,
    /// Execute/report trials as int8 (quantized) or float32.
    pub quantize: bool,
    /// Engine whose memory/dispatch model is used for estimates.
    pub engine: EngineKind,
    /// Optional latency budget in milliseconds (end-to-end).
    pub max_latency_ms: Option<f64>,
    /// Search RNG seed.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            trials: 8,
            train: TrainConfig { epochs: 8, ..TrainConfig::default() },
            quantize: false,
            engine: EngineKind::TflmInterpreter,
            max_latency_ms: None,
            seed: 7,
        }
    }
}

/// One evaluated configuration — a row of paper Table 3 / a card in Fig. 3.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The candidate that was evaluated.
    pub candidate: Candidate,
    /// Display name of the preprocessing block (Table 3 notation).
    pub dsp_name: String,
    /// Display name of the model.
    pub model_name: String,
    /// Held-out accuracy (0–1).
    pub accuracy: f32,
    /// Estimated preprocessing latency (ms).
    pub dsp_ms: f64,
    /// Estimated inference latency (ms).
    pub nn_ms: f64,
    /// Estimated DSP scratch RAM (bytes).
    pub dsp_ram: usize,
    /// Estimated model RAM (bytes).
    pub nn_ram: usize,
    /// Estimated model flash (bytes).
    pub flash: usize,
    /// Whether the configuration fits the target device.
    pub fits: bool,
}

impl TrialResult {
    /// Total estimated latency.
    pub fn total_ms(&self) -> f64 {
        self.dsp_ms + self.nn_ms
    }

    /// Total estimated RAM.
    pub fn total_ram(&self) -> usize {
        self.dsp_ram + self.nn_ram
    }
}

/// The outcome of a tuner run.
#[derive(Debug, Clone, Default)]
pub struct TunerReport {
    /// Every trained trial, sorted by accuracy (descending).
    pub trials: Vec<TrialResult>,
    /// Candidates dropped by the heuristic pre-filter (with reasons).
    pub filtered: Vec<(Candidate, String)>,
}

impl TunerReport {
    /// The accuracy-vs-latency Pareto front (no trial both slower and less
    /// accurate than another), sorted by latency.
    pub fn pareto_front(&self) -> Vec<&TrialResult> {
        let mut front: Vec<&TrialResult> = Vec::new();
        for t in &self.trials {
            let dominated = self.trials.iter().any(|o| {
                (o.accuracy > t.accuracy && o.total_ms() <= t.total_ms())
                    || (o.accuracy >= t.accuracy && o.total_ms() < t.total_ms())
            });
            if !dominated {
                front.push(t);
            }
        }
        front.sort_by(|a, b| a.total_ms().partial_cmp(&b.total_ms()).expect("finite"));
        front
    }

    /// The most accurate trial that fits the device, if any.
    pub fn best_fitting(&self) -> Option<&TrialResult> {
        self.trials
            .iter()
            .filter(|t| t.fits)
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite accuracy"))
    }
}

/// The EON Tuner bound to a dataset-independent problem definition.
#[derive(Debug, Clone)]
pub struct EonTuner {
    space: SearchSpace,
    profiler: Profiler,
    config: TunerConfig,
    window_samples: usize,
}

impl EonTuner {
    /// Creates a tuner for a search space, target device and window size.
    pub fn new(
        space: SearchSpace,
        profiler: Profiler,
        window_samples: usize,
        config: TunerConfig,
    ) -> EonTuner {
        EonTuner { space, profiler, config, window_samples }
    }

    /// Heuristic pre-estimate of one candidate **without training**: builds
    /// the (untrained) model, compiles it, and runs the device cost model.
    ///
    /// Returns a [`TrialResult`] with `accuracy = NaN`.
    ///
    /// # Errors
    ///
    /// Fails when the candidate's DSP or model cannot be built for the
    /// window size.
    pub fn estimate_candidate(&self, candidate: &Candidate, classes: usize) -> Result<TrialResult> {
        let design = ImpulseDesign::new("tuner-probe", self.window_samples, candidate.dsp.clone())?;
        let dims = design.feature_dims()?;
        let spec = candidate.model.spec(dims, classes);
        let model = Sequential::build(&spec, self.config.seed)?;
        let artifact = if self.config.quantize {
            // weights are untrained; ranges from a zero probe are fine for
            // *size* estimation
            let probe = vec![vec![0.0f32; dims.len()]];
            ModelArtifact::Int8(ei_quant::quantize_model(&model, &probe)?)
        } else {
            ModelArtifact::Float(model)
        };
        let dsp_block = design.dsp_block()?;
        let dsp_cost = dsp_block.cost(self.window_samples)?;
        let report = match self.config.engine {
            EngineKind::TflmInterpreter => {
                let engine = Interpreter::new(artifact)?;
                self.profiler.profile(Some(dsp_cost), &engine)
            }
            EngineKind::EonCompiled => {
                let engine = EonProgram::compile(artifact)?;
                self.profiler.profile(Some(dsp_cost), &engine)
            }
        };
        Ok(TrialResult {
            dsp_name: candidate.dsp.summary(),
            model_name: candidate.model.name(),
            candidate: candidate.clone(),
            accuracy: f32::NAN,
            dsp_ms: report.dsp_ms,
            nn_ms: report.inference_ms,
            dsp_ram: report.dsp_ram_bytes,
            nn_ram: report.model_ram_bytes,
            flash: report.model_flash_bytes,
            fits: report.fit.fits,
        })
    }

    /// Fully evaluates one candidate: train on the dataset's training
    /// split, measure accuracy on the testing split, and attach estimates.
    ///
    /// # Errors
    ///
    /// Propagates training and estimation failures.
    pub fn evaluate_candidate(
        &self,
        candidate: &Candidate,
        dataset: &Dataset,
        train: &TrainConfig,
    ) -> Result<TrialResult> {
        let classes = dataset.labels().len();
        let mut result = self.estimate_candidate(candidate, classes)?;
        let design = ImpulseDesign::new("tuner-trial", self.window_samples, candidate.dsp.clone())?;
        let dims = design.feature_dims()?;
        let spec = candidate.model.spec(dims, classes);
        let trained = design.train(&spec, dataset, train)?;
        let artifact =
            if self.config.quantize { trained.int8_artifact()? } else { trained.float_artifact() };
        let eval = trained.evaluate(&artifact, dataset, Split::Testing)?;
        result.accuracy = eval.accuracy;
        Ok(result)
    }

    /// Random search (the paper's default algorithm): shuffle the cross
    /// product, heuristically drop configurations that cannot fit the
    /// device or latency budget, then train up to `trials` survivors.
    ///
    /// # Errors
    ///
    /// Fails when the search space is empty or the dataset is unusable.
    pub fn run(&self, dataset: &Dataset) -> Result<TunerReport> {
        if self.space.is_empty() {
            return Err(CoreError::InvalidImpulse("empty search space".into()));
        }
        let classes = dataset.labels().len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut candidates = self.space.candidates();
        candidates.shuffle(&mut rng);

        let mut report = TunerReport::default();
        for candidate in candidates {
            if report.trials.len() >= self.config.trials {
                break;
            }
            // heuristic pre-filter: skip what cannot work before training
            let estimate = match self.estimate_candidate(&candidate, classes) {
                Ok(e) => e,
                Err(e) => {
                    report.filtered.push((candidate, format!("build failed: {e}")));
                    continue;
                }
            };
            if !estimate.fits {
                report.filtered.push((candidate, "exceeds device memory".into()));
                continue;
            }
            if let Some(budget) = self.config.max_latency_ms {
                if estimate.total_ms() > budget {
                    report.filtered.push((
                        candidate,
                        format!("estimated {:.0} ms > budget", estimate.total_ms()),
                    ));
                    continue;
                }
            }
            let trial = self.evaluate_candidate(&candidate, dataset, &self.config.train)?;
            report.trials.push(trial);
        }
        report.trials.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite accuracy"));
        Ok(report)
    }

    /// Successive halving (Hyperband's inner loop — the paper's "future
    /// work" search): start `width` random candidates at `base_epochs`,
    /// keep the best half each round, double the budget, until one remains
    /// or `rounds` elapse.
    ///
    /// # Errors
    ///
    /// Fails when the search space is empty or training fails.
    pub fn run_hyperband(
        &self,
        dataset: &Dataset,
        width: usize,
        base_epochs: usize,
        rounds: usize,
    ) -> Result<TunerReport> {
        if self.space.is_empty() {
            return Err(CoreError::InvalidImpulse("empty search space".into()));
        }
        let classes = dataset.labels().len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut candidates = self.space.candidates();
        candidates.shuffle(&mut rng);

        let mut report = TunerReport::default();
        let mut pool: Vec<Candidate> = Vec::new();
        for candidate in candidates {
            if pool.len() >= width {
                break;
            }
            match self.estimate_candidate(&candidate, classes) {
                Ok(e) if e.fits => pool.push(candidate),
                Ok(_) => report.filtered.push((candidate, "exceeds device memory".into())),
                Err(err) => report.filtered.push((candidate, format!("build failed: {err}"))),
            }
        }
        let mut epochs = base_epochs.max(1);
        let mut survivors = pool;
        for round in 0..rounds {
            if survivors.len() <= 1 {
                break;
            }
            let train = TrainConfig { epochs, ..self.config.train.clone() };
            let mut scored: Vec<TrialResult> = Vec::with_capacity(survivors.len());
            for candidate in &survivors {
                scored.push(self.evaluate_candidate(candidate, dataset, &train)?);
            }
            scored.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite"));
            let keep = (scored.len() / 2).max(1);
            survivors = scored.iter().take(keep).map(|t| t.candidate.clone()).collect();
            if round + 1 == rounds || survivors.len() == 1 {
                report.trials = scored;
            }
            epochs *= 2;
        }
        report.trials.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite accuracy"));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ModelChoice;
    use ei_data::synth::KwsGenerator;
    use ei_device::Board;
    use ei_dsp::{DspConfig, MfccConfig, MfeConfig};

    fn small_space() -> SearchSpace {
        SearchSpace {
            dsp: vec![
                DspConfig::Mfcc(MfccConfig {
                    frame_s: 0.032,
                    stride_s: 0.016,
                    n_coefficients: 8,
                    n_filters: 16,
                    sample_rate_hz: 4_000,
                }),
                DspConfig::Mfe(MfeConfig {
                    frame_s: 0.032,
                    stride_s: 0.016,
                    n_filters: 12,
                    sample_rate_hz: 4_000,
                    low_hz: 0.0,
                    high_hz: 0.0,
                }),
            ],
            models: vec![
                ModelChoice::DenseMlp { hidden: 16 },
                ModelChoice::Conv1dStack { depth: 2, base_filters: 8 },
            ],
        }
    }

    fn small_dataset() -> Dataset {
        KwsGenerator {
            classes: vec!["on".into(), "off".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
        .dataset(12, 3)
    }

    fn quick_tuner(trials: usize) -> EonTuner {
        EonTuner::new(
            small_space(),
            Profiler::new(Board::nano33_ble_sense()),
            1_000,
            TunerConfig {
                trials,
                train: TrainConfig { epochs: 6, learning_rate: 0.01, ..TrainConfig::default() },
                ..TunerConfig::default()
            },
        )
    }

    #[test]
    fn estimate_without_training() {
        let tuner = quick_tuner(4);
        let candidate = &tuner.space.candidates()[0];
        let est = tuner.estimate_candidate(candidate, 2).unwrap();
        assert!(est.accuracy.is_nan());
        assert!(est.dsp_ms > 0.0);
        assert!(est.nn_ms > 0.0);
        assert!(est.flash > 0);
    }

    #[test]
    fn random_search_produces_sorted_trials() {
        let tuner = quick_tuner(3);
        let report = tuner.run(&small_dataset()).unwrap();
        assert_eq!(report.trials.len(), 3);
        for pair in report.trials.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
        // synthetic keywords are separable: the best trial should be good
        assert!(report.trials[0].accuracy > 0.7, "best accuracy {}", report.trials[0].accuracy);
    }

    #[test]
    fn latency_budget_filters_candidates() {
        let mut tuner = quick_tuner(10);
        tuner.config.max_latency_ms = Some(0.001); // impossible budget
        let report = tuner.run(&small_dataset()).unwrap();
        assert!(report.trials.is_empty());
        assert_eq!(report.filtered.len(), 4, "every candidate filtered");
        assert!(report.filtered.iter().all(|(_, why)| why.contains("budget")));
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let tuner = quick_tuner(4);
        let report = tuner.run(&small_dataset()).unwrap();
        let front = report.pareto_front();
        assert!(!front.is_empty());
        for f in &front {
            for t in &report.trials {
                let dominates = t.accuracy > f.accuracy && t.total_ms() <= f.total_ms();
                assert!(!dominates, "front member dominated");
            }
        }
        // front sorted by latency
        for pair in front.windows(2) {
            assert!(pair[0].total_ms() <= pair[1].total_ms());
        }
    }

    #[test]
    fn eon_engine_estimates_leaner_than_tflm() {
        let tflm = quick_tuner(1);
        let mut eon_cfg = TunerConfig::default();
        eon_cfg.engine = EngineKind::EonCompiled;
        let eon =
            EonTuner::new(small_space(), Profiler::new(Board::nano33_ble_sense()), 1_000, eon_cfg);
        let candidate = &small_space().candidates()[0];
        let t = tflm.estimate_candidate(candidate, 2).unwrap();
        let e = eon.estimate_candidate(candidate, 2).unwrap();
        assert!(e.flash < t.flash, "eon flash {} vs tflm {}", e.flash, t.flash);
        assert!(e.nn_ram < t.nn_ram);
        assert!(e.nn_ms <= t.nn_ms);
    }

    #[test]
    fn best_fitting_respects_fits_flag() {
        let tuner = quick_tuner(2);
        let report = tuner.run(&small_dataset()).unwrap();
        let best = report.best_fitting().expect("small models fit the nano");
        assert!(best.fits);
    }

    #[test]
    fn hyperband_narrows_to_survivors() {
        let tuner = quick_tuner(4);
        let report = tuner.run_hyperband(&small_dataset(), 4, 2, 2).unwrap();
        // final round scored at least one trial, sorted
        assert!(!report.trials.is_empty());
        for pair in report.trials.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
    }

    #[test]
    fn empty_space_rejected() {
        let tuner = EonTuner::new(
            SearchSpace { dsp: vec![], models: vec![] },
            Profiler::new(Board::nano33_ble_sense()),
            1_000,
            TunerConfig::default(),
        );
        assert!(tuner.run(&small_dataset()).is_err());
        assert!(tuner.run_hyperband(&small_dataset(), 2, 1, 1).is_err());
    }
}
