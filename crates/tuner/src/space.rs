//! The tuner's search space: serializable DSP and model families.

use ei_dsp::{DspConfig, MfccConfig, MfeConfig, SpectralConfig};
use ei_nn::presets;
use ei_nn::spec::{Dims, ModelSpec};

/// A model family the tuner can instantiate once the DSP output shape and
/// class count are known.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelChoice {
    /// `depth`-layer conv1d stack with doubling channel counts.
    Conv1dStack {
        /// Number of convolution layers.
        depth: usize,
        /// Channels of the first layer.
        base_filters: usize,
    },
    /// Depthwise-separable CNN (keyword-spotting reference model).
    DsCnn {
        /// Channel width of every separable block.
        width: usize,
    },
    /// MobileNetV2-style separable stack.
    MobileNetV2Like {
        /// Width multiplier.
        alpha: f32,
    },
    /// Fully-connected baseline.
    DenseMlp {
        /// First hidden width.
        hidden: usize,
    },
}

impl ModelChoice {
    /// Builds the concrete model spec for the given feature dimensions.
    pub fn spec(&self, dims: Dims, classes: usize) -> ModelSpec {
        match self {
            ModelChoice::Conv1dStack { depth, base_filters } => {
                presets::conv1d_stack(dims, classes, *depth, *base_filters)
            }
            ModelChoice::DsCnn { width } => presets::ds_cnn(dims, classes, *width),
            ModelChoice::MobileNetV2Like { alpha } => {
                presets::mobilenet_v2_like(dims, classes, *alpha)
            }
            ModelChoice::DenseMlp { hidden } => presets::dense_mlp(dims, classes, *hidden),
        }
    }

    /// Human-readable name matching the preset naming (paper Table 3).
    pub fn name(&self) -> String {
        match self {
            ModelChoice::Conv1dStack { depth, base_filters } => {
                format!("{depth}x conv1d ({base_filters} to {})", base_filters << (depth - 1))
            }
            ModelChoice::DsCnn { width } => format!("DS-CNN {width}"),
            ModelChoice::MobileNetV2Like { alpha } => format!("MobileNetV2 {alpha}"),
            ModelChoice::DenseMlp { hidden } => format!("MLP {hidden}"),
        }
    }
}

/// One point in the joint design space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// DSP configuration.
    pub dsp: DspConfig,
    /// Model family.
    pub model: ModelChoice,
}

/// The cross product the tuner searches.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// DSP candidates.
    pub dsp: Vec<DspConfig>,
    /// Model candidates.
    pub models: Vec<ModelChoice>,
}

impl SearchSpace {
    /// The keyword-spotting space of paper Table 3: MFE/MFCC blocks with
    /// frame/stride/coefficient sweeps × conv1d stacks and a
    /// MobileNetV2-style model.
    pub fn kws_table3(sample_rate_hz: u32) -> SearchSpace {
        let mfe = |frame_s: f32, stride_s: f32, n_filters: usize| {
            DspConfig::Mfe(MfeConfig {
                frame_s,
                stride_s,
                n_filters,
                sample_rate_hz,
                low_hz: 0.0,
                high_hz: 0.0,
            })
        };
        let mfcc = |frame_s: f32, stride_s: f32, n_coefficients: usize| {
            DspConfig::Mfcc(MfccConfig {
                frame_s,
                stride_s,
                n_coefficients,
                n_filters: n_coefficients.max(32),
                sample_rate_hz,
            })
        };
        SearchSpace {
            dsp: vec![
                mfe(0.02, 0.01, 40),
                mfe(0.02, 0.01, 32),
                mfe(0.02, 0.02, 32),
                mfe(0.05, 0.025, 32),
                mfe(0.032, 0.016, 32),
                mfcc(0.02, 0.01, 40),
                mfcc(0.02, 0.01, 32),
                mfcc(0.05, 0.025, 40),
            ],
            models: vec![
                ModelChoice::MobileNetV2Like { alpha: 0.35 },
                ModelChoice::Conv1dStack { depth: 4, base_filters: 32 },
                ModelChoice::Conv1dStack { depth: 4, base_filters: 16 },
                ModelChoice::Conv1dStack { depth: 3, base_filters: 32 },
                ModelChoice::Conv1dStack { depth: 3, base_filters: 16 },
                ModelChoice::Conv1dStack { depth: 2, base_filters: 32 },
                ModelChoice::Conv1dStack { depth: 2, base_filters: 16 },
            ],
        }
    }

    /// A motion/vibration space: spectral-analysis configurations crossed
    /// with small dense networks — the design space for accelerometer
    /// workloads like the SlateSafety case study (paper §8.2).
    pub fn vibration(sample_rate_hz: u32, axes: usize) -> SearchSpace {
        let spectral = |fft_len: usize, n_buckets: usize| {
            DspConfig::Spectral(SpectralConfig { axes, fft_len, n_buckets, sample_rate_hz })
        };
        SearchSpace {
            dsp: vec![spectral(64, 8), spectral(128, 16), spectral(256, 32)],
            models: vec![
                ModelChoice::DenseMlp { hidden: 16 },
                ModelChoice::DenseMlp { hidden: 32 },
                ModelChoice::DenseMlp { hidden: 64 },
            ],
        }
    }

    /// Every `(dsp, model)` combination.
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.dsp.len() * self.models.len());
        for dsp in &self.dsp {
            for model in &self.models {
                out.push(Candidate { dsp: dsp.clone(), model: model.clone() });
            }
        }
        out
    }

    /// Size of the cross product.
    pub fn len(&self) -> usize {
        self.dsp.len() * self.models.len()
    }

    /// `true` when either axis is empty.
    pub fn is_empty(&self) -> bool {
        self.dsp.is_empty() || self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_space_shape() {
        let space = SearchSpace::kws_table3(16_000);
        assert_eq!(space.dsp.len(), 8);
        assert_eq!(space.models.len(), 7);
        assert_eq!(space.candidates().len(), 56);
        assert!(!space.is_empty());
    }

    #[test]
    fn vibration_space_builds() {
        let space = SearchSpace::vibration(100, 3);
        assert_eq!(space.len(), 9);
        for c in space.candidates() {
            assert!(c.dsp.build().is_ok());
        }
    }

    #[test]
    fn model_choice_names_match_paper() {
        assert_eq!(
            ModelChoice::Conv1dStack { depth: 4, base_filters: 32 }.name(),
            "4x conv1d (32 to 256)"
        );
        assert_eq!(ModelChoice::MobileNetV2Like { alpha: 0.35 }.name(), "MobileNetV2 0.35");
    }

    #[test]
    fn choices_build_specs() {
        let dims = Dims::new(49, 13, 1);
        for choice in [
            ModelChoice::Conv1dStack { depth: 2, base_filters: 16 },
            ModelChoice::DsCnn { width: 32 },
            ModelChoice::MobileNetV2Like { alpha: 0.35 },
            ModelChoice::DenseMlp { hidden: 32 },
        ] {
            let spec = choice.spec(dims, 4);
            assert!(spec.depth() > 2, "{}", choice.name());
        }
    }
}
