//! The EIM process-runner protocol (paper §4.6).
//!
//! On Linux targets the platform ships the impulse as an *EIM*: "a
//! compiled, native binary application that exposes the I/O interface for
//! use by any number of programming languages (Python, Go, C++, Node.js,
//! etc.)". The interface is newline-delimited JSON over stdio; this module
//! implements the model side of that protocol so any JSON-speaking client
//! can drive a trained impulse.
//!
//! Messages:
//!
//! * `{"hello": 1}` → model metadata (project, labels, window size, dtype);
//! * `{"classify": [..raw samples..], "id": n}` → per-label probabilities
//!   plus DSP/inference timing;
//! * anything else → `{"success": false, "error": ...}`.

use crate::impulse::TrainedImpulse;
use crate::{CoreError, Result};
use ei_runtime::ModelArtifact;
use serde_json::{json, Value};

/// A trained impulse behind the EIM JSON protocol.
#[derive(Debug, Clone)]
pub struct EimRunner {
    impulse: TrainedImpulse,
    artifact: ModelArtifact,
}

impl EimRunner {
    /// Wraps a trained impulse and a deployment artifact.
    pub fn new(impulse: TrainedImpulse, artifact: ModelArtifact) -> EimRunner {
        EimRunner { impulse, artifact }
    }

    /// Handles one protocol line, returning the JSON response line.
    ///
    /// Protocol errors are returned *in-band* (`success: false`), matching
    /// the real runner; only transport-level problems (non-JSON input)
    /// surface as `Err`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCommand`] when the line is not valid JSON.
    pub fn handle_line(&self, line: &str) -> Result<String> {
        let request: Value = serde_json::from_str(line)
            .map_err(|e| CoreError::BadCommand(format!("invalid json: {e}")))?;
        let response = self.handle(&request);
        serde_json::to_string(&response)
            .map_err(|e| CoreError::BadCommand(format!("response serialization: {e}")))
    }

    /// Handles one parsed request.
    pub fn handle(&self, request: &Value) -> Value {
        if request.get("hello").is_some() {
            return json!({
                "success": true,
                "model_parameters": {
                    "project_name": self.impulse.design().name,
                    "input_features_count": self.impulse.design().window_samples,
                    "labels": self.impulse.labels(),
                    "label_count": self.impulse.labels().len(),
                    "dsp": self.impulse.design().dsp.summary(),
                    "quantized": self.artifact.is_quantized(),
                },
                "protocol_version": 1,
            });
        }
        if let Some(features) = request.get("classify") {
            let id = request.get("id").cloned().unwrap_or(Value::Null);
            let raw: Option<Vec<f32>> = features
                .as_array()
                .map(|a| a.iter().filter_map(|v| v.as_f64().map(|x| x as f32)).collect());
            let raw = match raw {
                Some(r) if Some(r.len()) == features.as_array().map(Vec::len) => r,
                _ => {
                    return json!({
                        "success": false,
                        "id": id,
                        "error": "classify expects an array of numbers",
                    })
                }
            };
            return match self.impulse.classify_with(&self.artifact, &raw) {
                Ok(result) => {
                    let classification: serde_json::Map<String, Value> = self
                        .impulse
                        .labels()
                        .iter()
                        .zip(&result.probabilities)
                        .map(|(l, &p)| (l.clone(), json!(p)))
                        .collect();
                    json!({
                        "success": true,
                        "id": id,
                        "result": { "classification": classification },
                        "winner": result.label,
                    })
                }
                Err(e) => json!({
                    "success": false,
                    "id": id,
                    "error": e.to_string(),
                }),
            };
        }
        json!({
            "success": false,
            "error": "unknown message; expected 'hello' or 'classify'",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impulse::ImpulseDesign;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::{DspConfig, MfccConfig};
    use ei_nn::presets;
    use ei_nn::train::TrainConfig;

    fn generator() -> KwsGenerator {
        KwsGenerator {
            classes: vec!["yes".into(), "no".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
    }

    fn runner() -> EimRunner {
        let dataset = generator().dataset(16, 4);
        let design = ImpulseDesign::new(
            "eim-test",
            1_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        let trained = design
            .train(
                &spec,
                &dataset,
                &TrainConfig { epochs: 14, learning_rate: 0.01, ..TrainConfig::default() },
            )
            .unwrap();
        let artifact = trained.int8_artifact().unwrap();
        EimRunner::new(trained, artifact)
    }

    #[test]
    fn hello_reports_model_parameters() {
        let r = runner();
        let response: Value =
            serde_json::from_str(&r.handle_line(r#"{"hello": 1}"#).unwrap()).unwrap();
        assert_eq!(response["success"], true);
        let params = &response["model_parameters"];
        assert_eq!(params["input_features_count"], 1000);
        assert_eq!(params["label_count"], 2);
        assert_eq!(params["quantized"], true);
        assert_eq!(params["labels"][0], "no");
    }

    #[test]
    fn classify_round_trip() {
        let r = runner();
        let clip = generator().generate(0, 77);
        // the protocol must agree exactly with the in-process classifier
        let expected = r.impulse.classify_with(&r.artifact, &clip).unwrap();
        let request = json!({"classify": clip, "id": 42});
        let response = r.handle(&request);
        assert_eq!(response["success"], true);
        assert_eq!(response["id"], 42);
        let yes = response["result"]["classification"]["yes"].as_f64().unwrap();
        let no = response["result"]["classification"]["no"].as_f64().unwrap();
        assert!(
            (yes + no - 1.0).abs() < 0.02,
            "int8 probabilities sum within the quantization grid"
        );
        assert_eq!(response["winner"], expected.label);
        let no_index = r.impulse.labels().iter().position(|l| l == "no").expect("'no' is a class");
        assert!((no - expected.probabilities[no_index] as f64).abs() < 1e-6);
    }

    #[test]
    fn classify_separates_the_two_keywords() {
        // semantic check over several clips: the majority must classify to
        // their own class even through the int8 path
        let r = runner();
        let gen = generator();
        let mut correct = 0;
        for seed in 200..210u64 {
            for (ci, label) in ["yes", "no"].iter().enumerate() {
                let response = r.handle(&json!({"classify": gen.generate(ci, seed)}));
                if response["winner"] == *label {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 16, "only {correct}/20 clips classified correctly");
    }

    #[test]
    fn protocol_errors_in_band() {
        let r = runner();
        // wrong window length
        let response = r.handle(&json!({"classify": [1.0, 2.0], "id": 1}));
        assert_eq!(response["success"], false);
        assert_eq!(response["id"], 1);
        // non-numeric payload
        let response = r.handle(&json!({"classify": ["x"]}));
        assert_eq!(response["success"], false);
        // unknown message
        let response = r.handle(&json!({"reboot": true}));
        assert_eq!(response["success"], false);
    }

    #[test]
    fn transport_errors_out_of_band() {
        let r = runner();
        assert!(matches!(r.handle_line("not json"), Err(CoreError::BadCommand(_))));
    }
}
