//! Error type unifying the platform substrates.

use std::fmt;

/// Errors produced by the platform core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// DSP block configuration or processing failed.
    Dsp(String),
    /// Model construction or training failed.
    Nn(String),
    /// Quantization failed.
    Quant(String),
    /// Runtime construction or execution failed.
    Runtime(String),
    /// Dataset access failed.
    Data(String),
    /// Impulse-level configuration problem.
    InvalidImpulse(String),
    /// An AT command was malformed or unsupported.
    BadCommand(String),
    /// A required workflow stage failed after exhausting its retries.
    StageFailed {
        /// The stage that failed.
        stage: String,
        /// Description of the final failure.
        error: String,
    },
    /// The simulated serial link to a device dropped a command.
    DeviceLink(String),
    /// The operation observed a fired [`ei_faults::CancelToken`] and
    /// stopped cooperatively before completing.
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dsp(m) => write!(f, "dsp error: {m}"),
            CoreError::Nn(m) => write!(f, "model error: {m}"),
            CoreError::Quant(m) => write!(f, "quantization error: {m}"),
            CoreError::Runtime(m) => write!(f, "runtime error: {m}"),
            CoreError::Data(m) => write!(f, "data error: {m}"),
            CoreError::InvalidImpulse(m) => write!(f, "invalid impulse: {m}"),
            CoreError::BadCommand(m) => write!(f, "bad command: {m}"),
            CoreError::StageFailed { stage, error } => {
                write!(f, "workflow stage {stage:?} failed: {error}")
            }
            CoreError::DeviceLink(m) => write!(f, "device link error: {m}"),
            CoreError::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ei_dsp::DspError> for CoreError {
    fn from(e: ei_dsp::DspError) -> Self {
        CoreError::Dsp(e.to_string())
    }
}

impl From<ei_nn::NnError> for CoreError {
    fn from(e: ei_nn::NnError) -> Self {
        CoreError::Nn(e.to_string())
    }
}

impl From<ei_quant::QuantError> for CoreError {
    fn from(e: ei_quant::QuantError) -> Self {
        CoreError::Quant(e.to_string())
    }
}

impl From<ei_runtime::RuntimeError> for CoreError {
    fn from(e: ei_runtime::RuntimeError) -> Self {
        CoreError::Runtime(e.to_string())
    }
}

impl From<ei_data::DataError> for CoreError {
    fn from(e: ei_data::DataError) -> Self {
        CoreError::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: CoreError = ei_dsp::DspError::InvalidConfig("x".into()).into();
        assert!(matches!(e, CoreError::Dsp(_)));
        let e: CoreError = ei_data::DataError::UnknownSample(3).into();
        assert!(matches!(e, CoreError::Data(_)));
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<CoreError>();
    }
}
