//! The firmware SDK facade: a simulated device speaking the AT-command
//! serial protocol of the platform's precompiled binaries (paper §4.6:
//! "the precompiled binary presents a simple set of AT commands for usage
//! over a serial port").
//!
//! The same object doubles as the data-collection firmware: samples pushed
//! over the "serial port" can be harvested for ingestion, which is how the
//! CLI tools gather data from real devices (paper §4.1).

use crate::impulse::TrainedImpulse;
use crate::{CoreError, Result};
use ei_faults::{Clock, FaultPlan};
use ei_runtime::ModelArtifact;
use std::sync::Arc;

/// A scripted fault injector on the simulated serial link.
#[derive(Clone)]
struct LinkFaults {
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for LinkFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkFaults").field("plan", &self.plan).finish_non_exhaustive()
    }
}

/// A simulated device running the inference firmware.
#[derive(Debug, Clone)]
pub struct FirmwareDevice {
    device_name: String,
    impulse: TrainedImpulse,
    artifact: ModelArtifact,
    buffer: Vec<f32>,
    link: Option<LinkFaults>,
}

impl FirmwareDevice {
    /// Boots the firmware with a trained impulse and a deployment artifact.
    pub fn new(
        device_name: &str,
        impulse: TrainedImpulse,
        artifact: ModelArtifact,
    ) -> FirmwareDevice {
        FirmwareDevice {
            device_name: device_name.to_string(),
            impulse,
            artifact,
            buffer: Vec::new(),
            link: None,
        }
    }

    /// Scripts faults on the serial link: each subsequent
    /// [`FirmwareDevice::handle_command`] first consults `plan`, and
    /// scripted faults surface as [`CoreError::DeviceLink`] — the flaky
    /// cable the CLI daemon has to retry through.
    pub fn inject_link_faults(&mut self, plan: FaultPlan, clock: Arc<dyn Clock>) {
        self.link = Some(LinkFaults { plan, clock });
    }

    /// Raw samples currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Handles one AT command line and returns the serial response.
    ///
    /// Supported commands:
    ///
    /// * `AT` — liveness ping;
    /// * `AT+CONFIG?` — device and impulse information;
    /// * `AT+SAMPLE=<v1,v2,…>` — append raw samples to the capture buffer;
    /// * `AT+BUFFER?` — buffered sample count;
    /// * `AT+CLEARBUFFER` — reset the buffer;
    /// * `AT+RUNIMPULSE` — classify the buffered window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCommand`] for unknown or malformed commands,
    /// [`CoreError::DeviceLink`] when an injected link fault drops the
    /// command, and propagates classification failures.
    pub fn handle_command(&mut self, line: &str) -> Result<String> {
        if let Some(link) = &self.link {
            link.plan.fire(link.clock.as_ref()).map_err(CoreError::DeviceLink)?;
        }
        let line = line.trim();
        if line == "AT" {
            return Ok("OK".into());
        }
        if line == "AT+CONFIG?" {
            return Ok(format!(
                "device={}\nproject={}\nwindow={}\nlabels={}\nquantized={}\nOK",
                self.device_name,
                self.impulse.design().name,
                self.impulse.design().window_samples,
                self.impulse.labels().join(","),
                self.artifact.is_quantized(),
            ));
        }
        if let Some(csv) = line.strip_prefix("AT+SAMPLE=") {
            let mut added = 0usize;
            for cell in csv.split(',') {
                let v: f32 = cell
                    .trim()
                    .parse()
                    .map_err(|_| CoreError::BadCommand(format!("non-numeric sample {cell:?}")))?;
                self.buffer.push(v);
                added += 1;
            }
            return Ok(format!("ADDED {added}\nOK"));
        }
        if line == "AT+BUFFER?" {
            return Ok(format!(
                "{}/{}\nOK",
                self.buffer.len(),
                self.impulse.design().window_samples
            ));
        }
        if line == "AT+CLEARBUFFER" {
            self.buffer.clear();
            return Ok("OK".into());
        }
        if line == "AT+RUNIMPULSE" {
            let window = self.impulse.design().window_samples;
            if self.buffer.len() < window {
                return Err(CoreError::BadCommand(format!(
                    "buffer has {} samples, impulse needs {window}",
                    self.buffer.len()
                )));
            }
            let raw: Vec<f32> = self.buffer[self.buffer.len() - window..].to_vec();
            let result = self.impulse.classify_with(&self.artifact, &raw)?;
            let mut out = String::new();
            for (label, p) in self.impulse.labels().iter().zip(&result.probabilities) {
                out.push_str(&format!("{label}: {p:.5}\n"));
            }
            out.push_str(&format!(
                "winner={} ({:.2}%)\nOK",
                result.label,
                result.confidence * 100.0
            ));
            return Ok(out);
        }
        Err(CoreError::BadCommand(format!("unknown command {line:?}")))
    }

    /// Drains the capture buffer for ingestion (the data-collection path).
    pub fn take_buffer(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impulse::ImpulseDesign;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::{DspConfig, MfccConfig};
    use ei_nn::presets;
    use ei_nn::train::TrainConfig;

    fn generator() -> KwsGenerator {
        KwsGenerator {
            classes: vec!["go".into(), "stop".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
    }

    fn device() -> FirmwareDevice {
        let dataset = generator().dataset(15, 2);
        let design = ImpulseDesign::new(
            "at-test",
            1_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        let trained = design
            .train(
                &spec,
                &dataset,
                &TrainConfig { epochs: 10, learning_rate: 0.01, ..TrainConfig::default() },
            )
            .unwrap();
        let artifact = trained.float_artifact();
        FirmwareDevice::new("sim-nano33", trained, artifact)
    }

    #[test]
    fn ping_and_config() {
        let mut dev = device();
        assert_eq!(dev.handle_command("AT").unwrap(), "OK");
        let cfg = dev.handle_command("AT+CONFIG?").unwrap();
        assert!(cfg.contains("device=sim-nano33"));
        assert!(cfg.contains("window=1000"));
        assert!(cfg.contains("labels=go,stop"));
    }

    #[test]
    fn sample_buffer_lifecycle() {
        let mut dev = device();
        assert_eq!(dev.handle_command("AT+SAMPLE=0.1,0.2,0.3").unwrap(), "ADDED 3\nOK");
        assert!(dev.handle_command("AT+BUFFER?").unwrap().starts_with("3/1000"));
        dev.handle_command("AT+CLEARBUFFER").unwrap();
        assert_eq!(dev.buffered(), 0);
        assert!(dev.handle_command("AT+SAMPLE=abc").is_err());
    }

    #[test]
    fn run_impulse_over_serial() {
        let mut dev = device();
        // too early
        assert!(dev.handle_command("AT+RUNIMPULSE").is_err());
        // stream a real clip in chunks, as a serial capture would
        let clip = generator().generate(0, 77);
        for chunk in clip.chunks(250) {
            let csv: Vec<String> = chunk.iter().map(f32::to_string).collect();
            dev.handle_command(&format!("AT+SAMPLE={}", csv.join(","))).unwrap();
        }
        let out = dev.handle_command("AT+RUNIMPULSE").unwrap();
        assert!(out.contains("go:"));
        assert!(out.contains("stop:"));
        assert!(out.contains("winner="));
        assert!(out.ends_with("OK"));
    }

    #[test]
    fn unknown_command_rejected() {
        let mut dev = device();
        assert!(matches!(dev.handle_command("AT+NONSENSE"), Err(CoreError::BadCommand(_))));
    }

    #[test]
    fn take_buffer_for_ingestion() {
        let mut dev = device();
        dev.handle_command("AT+SAMPLE=1,2,3").unwrap();
        let data = dev.take_buffer();
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        assert_eq!(dev.buffered(), 0);
    }

    #[test]
    fn flaky_link_recovers_under_retry() {
        use ei_faults::retry::RetryOutcome;
        use ei_faults::{CancelToken, FaultPlan, RetryPolicy, VirtualClock};

        let mut dev = device();
        let clock = VirtualClock::shared();
        let plan = FaultPlan::flaky_until(2);
        dev.inject_link_faults(plan.clone(), clock.clone());
        // the first command dies on the link
        assert!(matches!(dev.handle_command("AT"), Err(CoreError::DeviceLink(_))));
        // the shared retry loop drives the same command to success
        let policy = RetryPolicy::default().with_seed(3).with_max_attempts(5);
        let r = ei_faults::execute(
            &policy,
            clock.as_ref(),
            0,
            &CancelToken::new(),
            |_| {},
            |_| dev.handle_command("AT").map_err(|e| e.to_string()),
        );
        assert_eq!(r.outcome, RetryOutcome::Success { output: "OK".into(), attempts: 2 });
        assert_eq!(plan.calls(), 3);
    }
}
