#![warn(missing_docs)]

//! The `edgelab` platform core: the impulse pipeline.
//!
//! An *impulse* is Edge Impulse's name for the deployable signal chain
//! (paper §3, Fig. 2): raw sensor window → DSP processing block → learn
//! block → classification. This crate wires the substrates together:
//!
//! * [`impulse::ImpulseDesign`] / [`impulse::TrainedImpulse`] — design,
//!   feature extraction, training orchestration, end-to-end inference and
//!   post-training quantization;
//! * [`eval`] — confusion matrices, accuracy and per-class F1 (paper §4.4);
//! * [`deploy`] — deployment bundles for the targets the platform exports
//!   (standalone C++ library, Arduino library, Linux EIM descriptor,
//!   WebAssembly) built on the EON code generator (paper §4.6);
//! * [`eim`] — the Linux "EIM" process-runner JSON protocol (paper §4.6);
//! * [`sdk`] — the firmware SDK facade: a simulated device that exposes
//!   the AT-command serial protocol the platform's precompiled binaries
//!   speak (paper §4.6);
//! * [`workflow`] — the workflow-stage ↔ challenge map of paper Fig. 1,
//!   plus [`workflow::FlowRunner`]: fault-tolerant execution of a concrete
//!   impulse flow with retries, panic isolation and degraded-stage
//!   semantics for optional stages (built on `ei-faults`).
//!
//! # Example
//!
//! ```no_run
//! use ei_core::impulse::ImpulseDesign;
//! use ei_data::synth::KwsGenerator;
//! use ei_dsp::{DspConfig, MfccConfig};
//! use ei_nn::presets;
//! use ei_nn::train::TrainConfig;
//!
//! # fn main() -> Result<(), ei_core::CoreError> {
//! let dataset = KwsGenerator::default().dataset(20, 42);
//! let design = ImpulseDesign::new("kws-demo", 16_000, DspConfig::Mfcc(MfccConfig::default()))?;
//! let dims = design.feature_dims()?;
//! let spec = presets::ds_cnn(dims, 4, 32);
//! let trained = design.train(&spec, &dataset, &TrainConfig::default())?;
//! let clip = KwsGenerator::default().generate(0, 7);
//! let result = trained.classify(&clip)?;
//! println!("{} ({:.1}%)", result.label, result.confidence * 100.0);
//! # Ok(())
//! # }
//! ```

pub mod deploy;
pub mod eim;
pub mod error;
pub mod eval;
pub mod impulse;
pub mod sdk;
pub mod workflow;

pub use error::CoreError;
pub use eval::{ConfusionMatrix, EvalReport};
pub use impulse::{Classification, ImpulseDesign, TrainedImpulse};
pub use workflow::{FlowReport, FlowRunner, FlowStage, StageOutcome, StageReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
