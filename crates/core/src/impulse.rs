//! Impulse design, training orchestration and end-to-end inference.

use crate::eval::{ConfusionMatrix, EvalReport};
use crate::{CoreError, Result};
use ei_data::{Dataset, Split};
use ei_dsp::{DspBlock, DspConfig};
use ei_nn::spec::{Dims, ModelSpec};
use ei_nn::train::{TrainConfig, Trainer, TrainingReport};
use ei_nn::Sequential;
use ei_quant::{quantize_model, QuantizedModel};
use ei_runtime::ModelArtifact;
use ei_tensor::ops::argmax;
use serde::{Deserialize, Serialize};

/// Extracted features, their label indices, and the sorted label names —
/// the triple the trainer consumes.
pub type ExtractedFeatures = (Vec<Vec<f32>>, Vec<usize>, Vec<String>);

/// The serializable design of an impulse: window size + DSP configuration.
///
/// This mirrors what a project stores (paper Fig. 2): the left-hand
/// "time series data" block (window) and the middle processing block. The
/// learn block's [`ModelSpec`] is supplied at training time because its
/// input dimensions derive from the DSP output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpulseDesign {
    /// Impulse name.
    pub name: String,
    /// Raw samples per classification window.
    pub window_samples: usize,
    /// Processing-block configuration.
    pub dsp: DspConfig,
}

impl ImpulseDesign {
    /// Creates a design, validating that the DSP block accepts the window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpulse`] for a zero-length window or a
    /// DSP block that rejects it.
    pub fn new(name: &str, window_samples: usize, dsp: DspConfig) -> Result<ImpulseDesign> {
        if window_samples == 0 {
            return Err(CoreError::InvalidImpulse("window must be non-zero".into()));
        }
        let block = dsp.build()?;
        block.output_len(window_samples)?;
        Ok(ImpulseDesign { name: name.to_string(), window_samples, dsp })
    }

    /// Instantiates the processing block.
    ///
    /// # Errors
    ///
    /// Propagates DSP configuration errors.
    pub fn dsp_block(&self) -> Result<Box<dyn DspBlock>> {
        Ok(self.dsp.build()?)
    }

    /// The learn block's input dimensions (the DSP output shape).
    ///
    /// # Errors
    ///
    /// Propagates DSP errors for incompatible windows.
    pub fn feature_dims(&self) -> Result<Dims> {
        let block = self.dsp_block()?;
        let (h, w, c) = block.output_shape(self.window_samples)?;
        Ok(Dims::new(h, w, c))
    }

    /// Runs the processing block over one split of a dataset, producing
    /// `(features, label indices, labels)` for the trainer.
    ///
    /// # Errors
    ///
    /// Fails when the split is empty or samples have the wrong length.
    pub fn extract_features(&self, dataset: &Dataset, split: Split) -> Result<ExtractedFeatures> {
        let block = self.dsp_block()?;
        let (raw, ys) = dataset.xy(split)?;
        // Windows fan out over the shared pool; each task length-checks
        // then processes its own sample — the same per-sample sequence as
        // the old serial loop — and the lowest-index error wins, so the
        // result (and the error on bad data) is identical to serial.
        let features = ei_par::ParPool::global().par_map_result(&raw, |sample| {
            if sample.len() != self.window_samples {
                return Err(CoreError::InvalidImpulse(format!(
                    "sample has {} values, impulse window is {}",
                    sample.len(),
                    self.window_samples
                )));
            }
            Ok(block.process(sample)?)
        })?;
        Ok((features, ys, dataset.labels()))
    }

    /// Trains a model spec on a dataset's training split: extracts
    /// features, initializes the classifier bias from class priors, and
    /// runs the trainer (paper §4.3).
    ///
    /// # Errors
    ///
    /// Fails when the model spec's input does not match the DSP output,
    /// the dataset is empty, or training data is inconsistent.
    pub fn train(
        &self,
        model_spec: &ModelSpec,
        dataset: &Dataset,
        config: &TrainConfig,
    ) -> Result<TrainedImpulse> {
        self.train_traced(model_spec, dataset, config, ei_trace::Tracer::disabled())
    }

    /// Like [`ImpulseDesign::train`], but the internal [`Trainer`] emits
    /// its `train` span and per-epoch `train.epoch` events through
    /// `tracer`.
    ///
    /// # Errors
    ///
    /// Same as [`ImpulseDesign::train`].
    pub fn train_traced(
        &self,
        model_spec: &ModelSpec,
        dataset: &Dataset,
        config: &TrainConfig,
        tracer: ei_trace::Tracer,
    ) -> Result<TrainedImpulse> {
        let dims = self.feature_dims()?;
        if model_spec.input != dims {
            return Err(CoreError::InvalidImpulse(format!(
                "model expects input {}, dsp produces {}",
                model_spec.input, dims
            )));
        }
        let (features, ys, labels) = self.extract_features(dataset, Split::Training)?;
        let n_classes = labels.len();
        let mut model = Sequential::build(model_spec, config.seed)?;
        if model.output_dims().len() != n_classes {
            return Err(CoreError::InvalidImpulse(format!(
                "model has {} outputs, dataset has {} classes",
                model.output_dims().len(),
                n_classes
            )));
        }
        let trainer = Trainer::new(config.clone()).with_tracer(tracer);
        trainer.init_class_bias(&mut model, &ys, n_classes)?;
        let report = trainer.train(&mut model, &features, &ys)?;
        Ok(TrainedImpulse { design: self.clone(), labels, model, report, feature_cache: features })
    }

    /// Trains a single-output regression model on numeric labels (the
    /// platform's regression learn block).
    ///
    /// # Errors
    ///
    /// Fails when labels are non-numeric, the model is not single-output,
    /// or windows are wrongly sized.
    pub fn train_regression(
        &self,
        model_spec: &ModelSpec,
        dataset: &Dataset,
        config: &TrainConfig,
    ) -> Result<RegressionImpulse> {
        self.train_regression_traced(model_spec, dataset, config, ei_trace::Tracer::disabled())
    }

    /// Like [`ImpulseDesign::train_regression`], but the internal
    /// [`Trainer`] reports per-epoch metrics through `tracer`.
    ///
    /// # Errors
    ///
    /// Same as [`ImpulseDesign::train_regression`].
    pub fn train_regression_traced(
        &self,
        model_spec: &ModelSpec,
        dataset: &Dataset,
        config: &TrainConfig,
        tracer: ei_trace::Tracer,
    ) -> Result<RegressionImpulse> {
        let dims = self.feature_dims()?;
        if model_spec.input != dims {
            return Err(CoreError::InvalidImpulse(format!(
                "model expects input {}, dsp produces {dims}",
                model_spec.input
            )));
        }
        let (raw, targets) = regression_xy(dataset, Split::Training, self.window_samples)?;
        let block = self.dsp_block()?;
        let mut features = Vec::with_capacity(raw.len());
        for sample in &raw {
            features.push(block.process(sample)?);
        }
        let mut model = Sequential::build(model_spec, config.seed)?;
        let trainer = Trainer::new(config.clone()).with_tracer(tracer);
        let report = trainer.train_regression(&mut model, &features, &targets)?;
        Ok(RegressionImpulse { design: self.clone(), model, report })
    }
}

/// Evaluation metrics of a regression impulse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionEval {
    /// Mean absolute error.
    pub mae: f32,
    /// Root mean squared error.
    pub rmse: f32,
    /// Coefficient of determination (1 = perfect, 0 = predicting the mean).
    pub r2: f32,
    /// Samples evaluated.
    pub count: usize,
}

/// A trained regression impulse: processing block + single-output model.
///
/// The platform's regression learn block (used for continuous targets such
/// as the heat-strain index of the SlateSafety case study, paper §8.2).
/// Targets come from parsing each sample's label as a number.
#[derive(Debug, Clone)]
pub struct RegressionImpulse {
    design: ImpulseDesign,
    model: Sequential,
    report: TrainingReport,
}

impl RegressionImpulse {
    /// The impulse design.
    pub fn design(&self) -> &ImpulseDesign {
        &self.design
    }

    /// The trained model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// The training report (losses are MSE).
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Predicts the target value for one raw window.
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized windows.
    pub fn predict(&self, raw: &[f32]) -> Result<f32> {
        let block = self.design.dsp_block()?;
        let features = block.process(raw)?;
        Ok(self.model.forward(&features)?[0])
    }

    /// Evaluates MAE/RMSE/R² on one dataset split.
    ///
    /// # Errors
    ///
    /// Fails when the split is empty, labels are non-numeric, or windows
    /// are wrongly sized.
    pub fn evaluate(&self, dataset: &Dataset, split: Split) -> Result<RegressionEval> {
        let (raw, targets) = regression_xy(dataset, split, self.design.window_samples)?;
        let block = self.design.dsp_block()?;
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut preds = Vec::with_capacity(raw.len());
        for sample in &raw {
            let features = block.process(sample)?;
            preds.push(self.model.forward(&features)?[0]);
        }
        for (&p, &t) in preds.iter().zip(&targets) {
            abs_sum += (p - t).abs() as f64;
            sq_sum += ((p - t) as f64).powi(2);
        }
        let n = targets.len() as f64;
        let mean_t = targets.iter().map(|&t| t as f64).sum::<f64>() / n;
        let total_var: f64 = targets.iter().map(|&t| (t as f64 - mean_t).powi(2)).sum();
        let r2 = if total_var > 1e-12 { 1.0 - sq_sum / total_var } else { 0.0 };
        Ok(RegressionEval {
            mae: (abs_sum / n) as f32,
            rmse: (sq_sum / n).sqrt() as f32,
            r2: r2 as f32,
            count: targets.len(),
        })
    }
}

/// Extracts `(windows, numeric targets)` from a split by parsing labels.
fn regression_xy(
    dataset: &Dataset,
    split: Split,
    window: usize,
) -> Result<(Vec<Vec<f32>>, Vec<f32>)> {
    let mut raw = Vec::new();
    let mut targets = Vec::new();
    for sample in dataset.split(split) {
        let Some(label) = sample.label() else { continue };
        let target: f32 = label.parse().map_err(|_| {
            CoreError::InvalidImpulse(format!("regression label {label:?} is not numeric"))
        })?;
        if sample.len() != window {
            return Err(CoreError::InvalidImpulse(format!(
                "sample has {} values, impulse window is {window}",
                sample.len()
            )));
        }
        raw.push(sample.values().to_vec());
        targets.push(target);
    }
    if raw.is_empty() {
        return Err(CoreError::Data(format!("no labeled samples in {split:?} split")));
    }
    Ok((raw, targets))
}

/// Format version of [`SavedImpulse`] payloads.
const SAVED_IMPULSE_VERSION: u32 = 1;

/// The serialized form of a trained impulse (see
/// [`TrainedImpulse::to_json`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedImpulse {
    format_version: u32,
    design: ImpulseDesign,
    labels: Vec<String>,
    model: Sequential,
    calibration: Vec<Vec<f32>>,
}

/// One end-to-end classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Winning label.
    pub label: String,
    /// Winning probability.
    pub confidence: f32,
    /// Full probability vector in label order.
    pub probabilities: Vec<f32>,
    /// Index of the winning label.
    pub label_index: usize,
}

/// A trained impulse: processing block + trained model + label map.
#[derive(Debug, Clone)]
pub struct TrainedImpulse {
    design: ImpulseDesign,
    labels: Vec<String>,
    model: Sequential,
    report: TrainingReport,
    /// Training-split features kept for quantization calibration.
    feature_cache: Vec<Vec<f32>>,
}

impl TrainedImpulse {
    /// Assembles a trained impulse from externally trained parts — the
    /// entry point for alternative training backends (e.g. the `ei-dist`
    /// parameter-server trainer) that run the optimization loop
    /// themselves. `feature_cache` must be the training-split features
    /// the model was fitted on; quantization calibrates against it.
    pub fn from_parts(
        design: ImpulseDesign,
        labels: Vec<String>,
        model: Sequential,
        report: TrainingReport,
        feature_cache: Vec<Vec<f32>>,
    ) -> TrainedImpulse {
        TrainedImpulse { design, labels, model, report, feature_cache }
    }

    /// The impulse design.
    pub fn design(&self) -> &ImpulseDesign {
        &self.design
    }

    /// Class labels in output order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The trained float model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// The training report.
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Classifies one raw window (DSP + NN).
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized windows.
    pub fn classify(&self, raw: &[f32]) -> Result<Classification> {
        let block = self.design.dsp_block()?;
        let features = block.process(raw)?;
        let probabilities = self.model.forward(&features)?;
        Ok(self.classification_from(probabilities))
    }

    /// Classifies using an arbitrary artifact (float or quantized), so
    /// evaluation can compare both paths.
    ///
    /// # Errors
    ///
    /// Fails for wrongly sized windows.
    pub fn classify_with(&self, artifact: &ModelArtifact, raw: &[f32]) -> Result<Classification> {
        let block = self.design.dsp_block()?;
        let features = block.process(raw)?;
        let probabilities = artifact.run_reference(&features)?;
        Ok(self.classification_from(probabilities))
    }

    fn classification_from(&self, probabilities: Vec<f32>) -> Classification {
        let label_index = argmax(&probabilities);
        Classification {
            label: self.labels.get(label_index).cloned().unwrap_or_default(),
            confidence: probabilities.get(label_index).copied().unwrap_or(0.0),
            probabilities,
            label_index,
        }
    }

    /// Post-training int8 quantization calibrated on the training features.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn quantized(&self) -> Result<QuantizedModel> {
        let calib: Vec<Vec<f32>> = self.feature_cache.iter().take(64).cloned().collect();
        Ok(quantize_model(&self.model, &calib)?)
    }

    /// The float deployment artifact.
    pub fn float_artifact(&self) -> ModelArtifact {
        ModelArtifact::Float(self.model.clone())
    }

    /// The int8 deployment artifact.
    ///
    /// # Errors
    ///
    /// Propagates quantization failures.
    pub fn int8_artifact(&self) -> Result<ModelArtifact> {
        Ok(ModelArtifact::Int8(self.quantized()?))
    }

    /// Serializes the trained impulse (design, labels, weights and the
    /// quantization-calibration features) as versioned JSON — the artifact
    /// a model registry stores and a teammate reloads byte-identically.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpulse`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        let saved = SavedImpulse {
            format_version: SAVED_IMPULSE_VERSION,
            design: self.design.clone(),
            labels: self.labels.clone(),
            model: self.model.clone(),
            calibration: self.feature_cache.iter().take(64).cloned().collect(),
        };
        serde_json::to_string(&saved).map_err(|e| CoreError::InvalidImpulse(e.to_string()))
    }

    /// Reloads a trained impulse saved by [`TrainedImpulse::to_json`].
    ///
    /// The training report is not persisted; the reloaded impulse carries
    /// an empty one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpulse`] for malformed JSON, an
    /// unsupported format version, or a model that does not match the
    /// design's feature dimensions.
    pub fn from_json(json: &str) -> Result<TrainedImpulse> {
        let saved: SavedImpulse =
            serde_json::from_str(json).map_err(|e| CoreError::InvalidImpulse(e.to_string()))?;
        if saved.format_version != SAVED_IMPULSE_VERSION {
            return Err(CoreError::InvalidImpulse(format!(
                "unsupported saved-impulse version {}",
                saved.format_version
            )));
        }
        let dims = saved.design.feature_dims()?;
        if saved.model.input_dims() != dims {
            return Err(CoreError::InvalidImpulse(format!(
                "saved model expects {}, design produces {dims}",
                saved.model.input_dims()
            )));
        }
        if saved.model.output_dims().len() != saved.labels.len() {
            return Err(CoreError::InvalidImpulse(format!(
                "saved model has {} outputs for {} labels",
                saved.model.output_dims().len(),
                saved.labels.len()
            )));
        }
        Ok(TrainedImpulse {
            design: saved.design,
            labels: saved.labels,
            model: saved.model,
            report: TrainingReport::default(),
            feature_cache: saved.calibration,
        })
    }

    /// Transfer learning (paper §4.3): reuses this impulse's feature
    /// extractor on a *new* classification task.
    ///
    /// Builds a model with the same body but a fresh classifier head sized
    /// for the new dataset's classes, copies every compatible layer's
    /// weights, freezes the first `freeze_layers` layers, and fine-tunes on
    /// the new data.
    ///
    /// # Errors
    ///
    /// Fails when the new dataset's windows do not match the design or
    /// training fails.
    pub fn transfer_to(
        &self,
        dataset: &Dataset,
        freeze_layers: usize,
        config: &TrainConfig,
    ) -> Result<TrainedImpulse> {
        let new_labels = dataset.labels();
        // same body, new head: swap the units of the last Dense layer
        let mut spec = self.model.spec().clone();
        let head = spec
            .layers
            .iter()
            .rposition(|l| matches!(l, ei_nn::spec::LayerSpec::Dense { .. }))
            .ok_or_else(|| {
                CoreError::InvalidImpulse("model has no dense head to replace".into())
            })?;
        if let ei_nn::spec::LayerSpec::Dense { units, .. } = &mut spec.layers[head] {
            *units = new_labels.len();
        }
        let mut model = Sequential::build(&spec, config.seed)?;
        // copy weights for every layer whose shapes survived the head swap
        for (new_layer, old_layer) in
            model.layers_mut().iter_mut().zip(self.model.layers()).take(head)
        {
            if let (Some(nw), Some(ow)) = (&new_layer.weights, &old_layer.weights) {
                if nw.shape() == ow.shape() {
                    new_layer.weights = Some(ow.clone());
                    new_layer.bias = old_layer.bias.clone();
                }
            }
        }
        model.freeze_first(freeze_layers.min(head));
        let (features, ys, labels) = self.design.extract_features(dataset, Split::Training)?;
        let trainer = Trainer::new(config.clone());
        trainer.init_class_bias(&mut model, &ys, labels.len())?;
        let report = trainer.train(&mut model, &features, &ys)?;
        Ok(TrainedImpulse {
            design: self.design.clone(),
            labels,
            model,
            report,
            feature_cache: features,
        })
    }

    /// Evaluates an artifact on one dataset split, producing the confusion
    /// matrix and summary metrics (paper §4.4).
    ///
    /// # Errors
    ///
    /// Fails when the split is empty or windows are wrongly sized.
    pub fn evaluate(
        &self,
        artifact: &ModelArtifact,
        dataset: &Dataset,
        split: Split,
    ) -> Result<EvalReport> {
        let block = self.design.dsp_block()?;
        let (raw, ys) = dataset.xy(split)?;
        let mut matrix = ConfusionMatrix::new(self.labels.clone());
        for (sample, &truth) in raw.iter().zip(&ys) {
            let features = block.process(sample)?;
            let probs = artifact.run_reference(&features)?;
            matrix.record(truth, argmax(&probs));
        }
        Ok(EvalReport::from_matrix(matrix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::MfccConfig;
    use ei_nn::presets;
    use ei_nn::spec::{Activation, LayerSpec};

    fn small_generator() -> KwsGenerator {
        KwsGenerator {
            classes: vec!["alpha".into(), "beta".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        }
    }

    fn small_design() -> ImpulseDesign {
        ImpulseDesign::new(
            "test-kws",
            1_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 10,
                n_filters: 20,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig { epochs: 12, batch_size: 8, learning_rate: 0.01, ..TrainConfig::default() }
    }

    #[test]
    fn design_validation() {
        assert!(ImpulseDesign::new("x", 0, DspConfig::Mfcc(MfccConfig::default())).is_err());
        // window shorter than one frame
        assert!(ImpulseDesign::new("x", 10, DspConfig::Mfcc(MfccConfig::default())).is_err());
        let d = small_design();
        let dims = d.feature_dims().unwrap();
        assert_eq!(dims.c, 1);
        assert_eq!(dims.w, 10);
    }

    #[test]
    fn end_to_end_training_learns_synthetic_keywords() {
        let gen = small_generator();
        let dataset = gen.dataset(20, 11);
        let design = small_design();
        let dims = design.feature_dims().unwrap();
        let spec = presets::dense_mlp(dims, 2, 24);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        // evaluate on the held-out split
        let report = trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing).unwrap();
        assert!(report.accuracy > 0.8, "test accuracy {}", report.accuracy);
        // classify a fresh clip
        let clip = gen.generate(1, 999);
        let result = trained.classify(&clip).unwrap();
        assert_eq!(result.probabilities.len(), 2);
        assert!(result.confidence >= 0.5);
    }

    #[test]
    fn quantized_accuracy_close_to_float() {
        let gen = small_generator();
        let dataset = gen.dataset(15, 3);
        let design = small_design();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        let float_eval =
            trained.evaluate(&trained.float_artifact(), &dataset, Split::Testing).unwrap();
        let int8_eval =
            trained.evaluate(&trained.int8_artifact().unwrap(), &dataset, Split::Testing).unwrap();
        assert!(
            (float_eval.accuracy - int8_eval.accuracy).abs() <= 0.25,
            "float {} vs int8 {}",
            float_eval.accuracy,
            int8_eval.accuracy
        );
    }

    #[test]
    fn train_rejects_mismatched_model() {
        let dataset = small_generator().dataset(4, 1);
        let design = small_design();
        // wrong input dims
        let bad = presets::dense_mlp(Dims::new(1, 7, 1), 2, 8);
        assert!(design.train(&bad, &dataset, &quick_config()).is_err());
        // wrong class count
        let wrong_classes = presets::dense_mlp(design.feature_dims().unwrap(), 5, 8);
        assert!(design.train(&wrong_classes, &dataset, &quick_config()).is_err());
    }

    #[test]
    fn classify_rejects_wrong_window() {
        let dataset = small_generator().dataset(4, 1);
        let design = small_design();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        assert!(trained.classify(&[0.0; 10]).is_err());
    }

    #[test]
    fn design_serde_round_trip() {
        let d = small_design();
        let json = serde_json::to_string(&d).unwrap();
        let back: ImpulseDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn extract_features_shapes() {
        let dataset = small_generator().dataset(5, 2);
        let design = small_design();
        let (features, ys, labels) = design.extract_features(&dataset, Split::Training).unwrap();
        assert_eq!(features.len(), ys.len());
        assert_eq!(labels, vec!["alpha".to_string(), "beta".to_string()]);
        let expected = design.feature_dims().unwrap().len();
        assert!(features.iter().all(|f| f.len() == expected));
    }

    #[test]
    fn save_load_round_trip_preserves_behavior() {
        let gen = small_generator();
        let dataset = gen.dataset(10, 8);
        let design = small_design();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 16);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        let json = trained.to_json().unwrap();
        let reloaded = TrainedImpulse::from_json(&json).unwrap();
        assert_eq!(reloaded.labels(), trained.labels());
        let clip = gen.generate(0, 123);
        assert_eq!(
            reloaded.classify(&clip).unwrap().probabilities,
            trained.classify(&clip).unwrap().probabilities,
            "reloaded model must be byte-identical"
        );
        // quantization also survives (calibration features persisted)
        let q = reloaded.int8_artifact().unwrap();
        assert!(q.is_quantized());
    }

    #[test]
    fn from_json_rejects_bad_payloads() {
        assert!(TrainedImpulse::from_json("not json").is_err());
        // version mismatch
        let gen = small_generator();
        let dataset = gen.dataset(4, 1);
        let design = small_design();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        let json =
            trained.to_json().unwrap().replace("\"format_version\":1", "\"format_version\":99");
        assert!(TrainedImpulse::from_json(&json).is_err());
    }

    #[test]
    fn transfer_learning_reuses_the_body() {
        let gen = small_generator();
        let base_dataset = gen.dataset(15, 4);
        let design = small_design();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 24);
        let base = design.train(&spec, &base_dataset, &quick_config()).unwrap();

        // new task: three classes with different names
        let new_gen = KwsGenerator {
            classes: vec!["gamma".into(), "delta".into(), "epsilon".into()],
            ..small_generator()
        };
        let new_dataset = new_gen.dataset(12, 9);
        let transferred = base.transfer_to(&new_dataset, 2, &quick_config()).unwrap();
        assert_eq!(transferred.labels().len(), 3);
        // frozen body layers kept the base weights
        let base_w = base.model().layers()[1].weights.as_ref().unwrap();
        let new_w = transferred.model().layers()[1].weights.as_ref().unwrap();
        assert_eq!(base_w, new_w, "frozen transferred layer must keep base weights");
        // and the new task is learnable
        let eval = transferred
            .evaluate(&transferred.float_artifact(), &new_dataset, Split::Testing)
            .unwrap();
        assert!(eval.accuracy > 0.6, "transfer accuracy {}", eval.accuracy);
    }

    #[test]
    fn regression_impulse_predicts_signal_amplitude() {
        use ei_data::{Sample, SensorKind};
        use ei_dsp::SpectralConfig;
        // windows of a 5 Hz sine whose amplitude is the target
        let window = 128usize;
        let make = |amp: f32, phase: f32| -> Vec<f32> {
            (0..window)
                .map(|t| amp * (2.0 * std::f32::consts::PI * 5.0 * t as f32 / 100.0 + phase).sin())
                .collect()
        };
        let mut ds = ei_data::Dataset::new("amplitude");
        for i in 0..40 {
            let amp = 0.2 + (i % 10) as f32 * 0.15;
            ds.add(
                Sample::new(0, make(amp, i as f32 * 0.37), SensorKind::Inertial)
                    .with_label(&format!("{amp}")),
            );
        }
        let design = ImpulseDesign::new(
            "regress",
            window,
            DspConfig::Spectral(SpectralConfig {
                axes: 1,
                fft_len: 128,
                n_buckets: 8,
                sample_rate_hz: 100,
            }),
        )
        .unwrap();
        let dims = design.feature_dims().unwrap();
        let spec = ModelSpec::new(dims)
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 12, activation: Activation::Relu })
            .layer(LayerSpec::Dense { units: 1, activation: Activation::None });
        let model = design
            .train_regression(
                &spec,
                &ds,
                &TrainConfig { epochs: 200, learning_rate: 0.01, ..TrainConfig::default() },
            )
            .unwrap();
        let eval = model.evaluate(&ds, Split::Testing).unwrap();
        assert!(eval.rmse < 0.15, "rmse {}", eval.rmse);
        assert!(eval.r2 > 0.8, "r2 {}", eval.r2);
        // prediction tracks an unseen amplitude
        let pred = model.predict(&make(1.0, 0.1)).unwrap();
        assert!((pred - 1.0).abs() < 0.25, "pred {pred}");
    }

    #[test]
    fn regression_rejects_non_numeric_labels() {
        let dataset = small_generator().dataset(4, 1); // labels "alpha"/"beta"
        let design = small_design();
        let dims = design.feature_dims().unwrap();
        let spec = ModelSpec::new(dims)
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 1, activation: Activation::None });
        assert!(matches!(
            design.train_regression(&spec, &dataset, &quick_config()),
            Err(CoreError::InvalidImpulse(_))
        ));
    }

    #[test]
    fn custom_model_specs_work() {
        // a conv1d model through the full pipeline
        let dataset = small_generator().dataset(8, 5);
        let design = small_design();
        let dims = design.feature_dims().unwrap();
        let spec = ModelSpec::new(dims)
            .named("tiny-conv")
            .layer(LayerSpec::Reshape { h: 1, w: dims.h, c: dims.w * dims.c })
            .layer(LayerSpec::Conv1d {
                filters: 8,
                kernel: 3,
                stride: 1,
                padding: ei_nn::spec::Padding::Same,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::GlobalAvgPool)
            .layer(LayerSpec::Dense { units: 2, activation: Activation::None })
            .layer(LayerSpec::Softmax);
        let trained = design.train(&spec, &dataset, &quick_config()).unwrap();
        assert_eq!(trained.labels().len(), 2);
    }
}
