//! Model evaluation: confusion matrices, accuracy, precision/recall/F1.
//!
//! "A confusion matrix can be generated from the holdout set to provide
//! overall or per-class accuracy and F1 scores" (paper §4.4).

use std::fmt;

/// A confusion matrix over a fixed label set.
///
/// `counts[truth][predicted]` is the number of samples with true class
/// `truth` classified as `predicted`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for the given labels.
    pub fn new(labels: Vec<String>) -> ConfusionMatrix {
        let n = labels.len();
        ConfusionMatrix { labels, counts: vec![vec![0; n]; n] }
    }

    /// Records one prediction. Out-of-range indices are ignored (they can
    /// only arise from a mismatched artifact and would otherwise panic).
    pub fn record(&mut self, truth: usize, predicted: usize) {
        if truth < self.counts.len() && predicted < self.counts.len() {
            self.counts[truth][predicted] += 1;
        }
    }

    /// The label set.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw count for a `(truth, predicted)` pair.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Total recorded samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f32 / total as f32
    }

    /// Precision of one class: `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self, class: usize) -> f32 {
        let tp = self.counts[class][class];
        let predicted: usize = (0..self.counts.len()).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f32 / predicted as f32
        }
    }

    /// Recall of one class: `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self, class: usize) -> f32 {
        let tp = self.counts[class][class];
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f32 / actual as f32
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f32 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f32 {
        if self.labels.is_empty() {
            return 0.0;
        }
        (0..self.labels.len()).map(|c| self.f1(c)).sum::<f32>() / self.labels.len() as f32
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.labels.iter().map(String::len).max().unwrap_or(4).max(6);
        write!(f, "{:>width$} |", "")?;
        for l in &self.labels {
            write!(f, " {l:>width$}")?;
        }
        writeln!(f)?;
        for (t, row) in self.counts.iter().enumerate() {
            write!(f, "{:>width$} |", self.labels[t])?;
            for &c in row {
                write!(f, " {c:>width$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Summary metrics derived from a confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// The full confusion matrix.
    pub matrix: ConfusionMatrix,
    /// Overall accuracy.
    pub accuracy: f32,
    /// Macro-averaged F1.
    pub macro_f1: f32,
    /// Per-class `(precision, recall, f1)` in label order.
    pub per_class: Vec<(f32, f32, f32)>,
}

impl EvalReport {
    /// Computes the summary from a finished matrix.
    pub fn from_matrix(matrix: ConfusionMatrix) -> EvalReport {
        let per_class = (0..matrix.labels().len())
            .map(|c| (matrix.precision(c), matrix.recall(c), matrix.f1(c)))
            .collect();
        EvalReport { accuracy: matrix.accuracy(), macro_f1: matrix.macro_f1(), per_class, matrix }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels2() -> Vec<String> {
        vec!["cat".into(), "dog".into()]
    }

    #[test]
    fn perfect_classifier() {
        let mut m = ConfusionMatrix::new(labels2());
        for _ in 0..10 {
            m.record(0, 0);
            m.record(1, 1);
        }
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(0), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn known_metrics() {
        let mut m = ConfusionMatrix::new(labels2());
        // class 0: 8 correct, 2 misclassified as 1
        // class 1: 6 correct, 4 misclassified as 0
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..6 {
            m.record(1, 1);
        }
        for _ in 0..4 {
            m.record(1, 0);
        }
        assert!((m.accuracy() - 0.7).abs() < 1e-6);
        assert!((m.precision(0) - 8.0 / 12.0).abs() < 1e-6);
        assert!((m.recall(0) - 0.8).abs() < 1e-6);
        let p = 8.0 / 12.0f32;
        let r = 0.8f32;
        assert!((m.f1(0) - 2.0 * p * r / (p + r)).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases() {
        let m = ConfusionMatrix::new(labels2());
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.f1(0), 0.0);
        let empty = ConfusionMatrix::new(vec![]);
        assert_eq!(empty.macro_f1(), 0.0);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut m = ConfusionMatrix::new(labels2());
        m.record(5, 0);
        m.record(0, 5);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_contains_labels_and_counts() {
        let mut m = ConfusionMatrix::new(labels2());
        m.record(0, 0);
        m.record(1, 0);
        let s = m.to_string();
        assert!(s.contains("cat"));
        assert!(s.contains("dog"));
        assert!(s.contains('1'));
    }

    #[test]
    fn report_from_matrix() {
        let mut m = ConfusionMatrix::new(labels2());
        m.record(0, 0);
        m.record(1, 1);
        m.record(1, 0);
        let report = EvalReport::from_matrix(m);
        assert!((report.accuracy - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(report.per_class.len(), 2);
        assert!(report.macro_f1 > 0.0);
    }
}
