//! The ML-workflow stage ↔ challenge map of paper Figure 1, and a
//! fault-tolerant [`FlowRunner`] that executes an end-to-end impulse flow
//! with retry and degraded-stage semantics.
//!
//! The runner shares the platform scheduler's failure model (both are
//! built on [`ei_faults::retry::execute`]): every stage runs under a
//! [`RetryPolicy`] with seeded jittered backoff, per-attempt timeouts and
//! panic isolation. A *required* stage that exhausts its retries aborts
//! the flow with [`CoreError::StageFailed`]; an *optional* stage (say,
//! anomaly-detection enrichment) is recorded as
//! [`StageOutcome::Degraded`] with its full attempt history and the flow
//! carries on — the MLOps loop degrades gracefully instead of losing the
//! whole pipeline run.

use crate::{CoreError, Result};
use ei_faults::retry::{self, RetryEvent, RetryOutcome};
use ei_faults::{AttemptContext, AttemptRecord, CancelToken, Clock, RetryPolicy, SystemClock};
use ei_trace::Tracer;
use std::sync::Arc;

/// One stage of the end-to-end embedded-ML workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowStage {
    /// Gathering and curating sensor data.
    DataCollection,
    /// DSP feature extraction.
    Preprocessing,
    /// Model design and training.
    Training,
    /// Accuracy / latency / memory evaluation.
    Evaluation,
    /// Compression and optimization (quantization, fusion, EON).
    Optimization,
    /// Conversion and compilation for a target.
    Deployment,
    /// Fleet monitoring and updates.
    Monitoring,
}

/// The ecosystem challenge each stage answers (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Challenge {
    /// Challenge #1: no large curated sensor datasets; labeling is costly.
    DataCollection,
    /// Challenge #2: DSP is critical but lacks automated tooling.
    DataPreprocessing,
    /// Challenge #3: dependency hell across training and deployment.
    Development,
    /// Challenge #4: hardware heterogeneity restricts portability.
    Deployment,
    /// Challenge #5: no unified MLOps loop for embedded fleets.
    Monitoring,
}

/// One row of the Figure 1 map: stage, the challenge it answers, and the
/// platform feature that implements it (with the module that builds it
/// here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowEntry {
    /// Workflow stage.
    pub stage: WorkflowStage,
    /// Ecosystem challenge addressed.
    pub challenge: Challenge,
    /// Platform feature (paper terminology).
    pub feature: &'static str,
    /// The `edgelab` module implementing it.
    pub module: &'static str,
}

/// The full workflow map in pipeline order.
pub fn workflow_map() -> Vec<WorkflowEntry> {
    vec![
        WorkflowEntry {
            stage: WorkflowStage::DataCollection,
            challenge: Challenge::DataCollection,
            feature: "multi-format ingestion, dataset versioning, active learning",
            module: "ei-data / ei-active",
        },
        WorkflowEntry {
            stage: WorkflowStage::Preprocessing,
            challenge: Challenge::DataPreprocessing,
            feature: "DSP processing blocks with autotune",
            module: "ei-dsp",
        },
        WorkflowEntry {
            stage: WorkflowStage::Training,
            challenge: Challenge::Development,
            feature: "visual learn blocks, LR finder, bias init, checkpointing",
            module: "ei-nn",
        },
        WorkflowEntry {
            stage: WorkflowStage::Evaluation,
            challenge: Challenge::Development,
            feature: "confusion matrices, on-device estimation, performance calibration",
            module: "ei-core / ei-device / ei-calibration",
        },
        WorkflowEntry {
            stage: WorkflowStage::Optimization,
            challenge: Challenge::Deployment,
            feature: "int8 quantization, operator fusion, EON compiler, EON tuner",
            module: "ei-quant / ei-runtime / ei-tuner",
        },
        WorkflowEntry {
            stage: WorkflowStage::Deployment,
            challenge: Challenge::Deployment,
            feature: "C++/Arduino/EIM/WASM export, firmware SDK",
            module: "ei-core::deploy / ei-core::sdk",
        },
        WorkflowEntry {
            stage: WorkflowStage::Monitoring,
            challenge: Challenge::Monitoring,
            feature: "REST API, jobs, versioned projects (IoT management via integrations)",
            module: "ei-platform",
        },
    ]
}

/// One executable stage of a concrete impulse flow.
///
/// The closure receives an [`AttemptContext`] (attempt number plus the
/// flow's cancellation token) and returns an output string or an error
/// message, mirroring the platform job contract.
pub struct FlowStage<'a> {
    name: String,
    optional: bool,
    #[allow(clippy::type_complexity)]
    work: Box<dyn FnMut(&AttemptContext<'_>) -> std::result::Result<String, String> + 'a>,
}

impl std::fmt::Debug for FlowStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowStage")
            .field("name", &self.name)
            .field("optional", &self.optional)
            .finish_non_exhaustive()
    }
}

impl<'a> FlowStage<'a> {
    /// A stage the flow cannot complete without.
    pub fn required<F>(name: &str, work: F) -> FlowStage<'a>
    where
        F: FnMut(&AttemptContext<'_>) -> std::result::Result<String, String> + 'a,
    {
        FlowStage { name: name.to_string(), optional: false, work: Box::new(work) }
    }

    /// A stage whose failure degrades the flow instead of aborting it.
    pub fn optional<F>(name: &str, work: F) -> FlowStage<'a>
    where
        F: FnMut(&AttemptContext<'_>) -> std::result::Result<String, String> + 'a,
    {
        FlowStage { name: name.to_string(), optional: true, work: Box::new(work) }
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the flow survives this stage failing.
    pub fn is_optional(&self) -> bool {
        self.optional
    }
}

/// How one stage ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage succeeded with an output.
    Completed(String),
    /// An optional stage exhausted its retries; the flow continued
    /// without it. Carries the final failure description.
    Degraded(String),
}

/// The record of one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name.
    pub name: String,
    /// Whether the stage was optional.
    pub optional: bool,
    /// How the stage ended.
    pub outcome: StageOutcome,
    /// Every failed attempt, in order (cause, duration, backoff chosen).
    pub attempts: Vec<AttemptRecord>,
}

/// The result of a completed (possibly degraded) flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowReport {
    /// Per-stage records in execution order.
    pub stages: Vec<StageReport>,
}

impl FlowReport {
    /// Whether any optional stage was lost along the way.
    pub fn degraded(&self) -> bool {
        self.stages.iter().any(|s| matches!(s.outcome, StageOutcome::Degraded(_)))
    }

    /// Names of the degraded stages, in order.
    pub fn degraded_stages(&self) -> Vec<&str> {
        self.stages
            .iter()
            .filter(|s| matches!(s.outcome, StageOutcome::Degraded(_)))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Looks up a stage record by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// A completed stage's output, if it completed.
    pub fn output(&self, name: &str) -> Option<&str> {
        match &self.stage(name)?.outcome {
            StageOutcome::Completed(out) => Some(out),
            StageOutcome::Degraded(_) => None,
        }
    }
}

/// Executes a sequence of [`FlowStage`]s under one retry policy.
///
/// With a tracer attached ([`FlowRunner::with_tracer`]) every run opens a
/// `flow` span with one `flow.stage` child span per stage, and retries,
/// backoffs, timeouts and degradations inside a stage surface as events
/// on that stage's span — so a degraded optional stage is visible in the
/// trace, not just in the returned [`FlowReport`].
pub struct FlowRunner {
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    cancel: CancelToken,
    tracer: Tracer,
}

impl std::fmt::Debug for FlowRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowRunner").field("policy", &self.policy).finish_non_exhaustive()
    }
}

impl FlowRunner {
    /// A runner on the system clock.
    pub fn new(policy: RetryPolicy) -> FlowRunner {
        FlowRunner::with_clock(policy, Arc::new(SystemClock::new()))
    }

    /// A runner on an explicit clock (pass an [`ei_faults::VirtualClock`]
    /// for deterministic tests).
    pub fn with_clock(policy: RetryPolicy, clock: Arc<dyn Clock>) -> FlowRunner {
        FlowRunner { policy, clock, cancel: CancelToken::new(), tracer: Tracer::disabled() }
    }

    /// Attaches a tracer; subsequent runs emit `flow` / `flow.stage`
    /// spans and per-stage retry events through it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> FlowRunner {
        self.tracer = tracer;
        self
    }

    /// The token that cancels a run in progress (from another thread or a
    /// stage closure).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the stages in order, retrying each per the policy. Stage
    /// index is the jitter stream, so each stage gets a decorrelated but
    /// reproducible backoff schedule
    /// ([`RetryPolicy::backoff_preview`]`(index, …)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StageFailed`] when a required stage exhausts
    /// its retries or the run is cancelled; optional-stage failures are
    /// reported as [`StageOutcome::Degraded`] instead.
    pub fn run(&self, stages: Vec<FlowStage<'_>>) -> Result<FlowReport> {
        let flow_span =
            self.tracer.span_with("flow", vec![("stages", (stages.len() as u64).into())]);
        let mut report = FlowReport { stages: Vec::new() };
        for (index, mut stage) in stages.into_iter().enumerate() {
            let stage_span = flow_span.child_with(
                "flow.stage",
                vec![("stage", stage.name.as_str().into()), ("optional", stage.optional.into())],
            );
            let observer = |event: RetryEvent<'_>| match event {
                RetryEvent::AttemptStarted { attempt, .. } => {
                    stage_span.event("stage.attempt", vec![("attempt", attempt.into())]);
                }
                RetryEvent::AttemptFailed { record } => {
                    if matches!(record.cause, ei_faults::FailureCause::TimedOut { .. }) {
                        stage_span
                            .event("stage.timed_out", vec![("attempt", record.attempt.into())]);
                    }
                }
                RetryEvent::BackingOff { next_attempt, delay_ms } => {
                    stage_span.event(
                        "stage.backoff",
                        vec![("next_attempt", next_attempt.into()), ("delay_ms", delay_ms.into())],
                    );
                }
                RetryEvent::AttemptFinished { .. } => {}
            };
            let result = retry::execute(
                &self.policy,
                self.clock.as_ref(),
                index as u64,
                &self.cancel,
                observer,
                |ctx| (stage.work)(ctx),
            );
            let outcome = match result.outcome {
                RetryOutcome::Success { output, .. } => {
                    self.tracer.counter("flow.stages_completed").inc();
                    StageOutcome::Completed(output)
                }
                RetryOutcome::Exhausted { error } if stage.optional => {
                    stage_span.event("stage.degraded", vec![("error", error.as_str().into())]);
                    self.tracer.counter("flow.stages_degraded").inc();
                    StageOutcome::Degraded(error)
                }
                RetryOutcome::Exhausted { error } => {
                    stage_span.event("stage.failed", vec![("error", error.as_str().into())]);
                    self.tracer.counter("flow.stages_failed").inc();
                    return Err(CoreError::StageFailed { stage: stage.name, error });
                }
                RetryOutcome::Cancelled => {
                    stage_span.event("stage.cancelled", vec![]);
                    return Err(CoreError::StageFailed {
                        stage: stage.name,
                        error: "flow cancelled".to_string(),
                    });
                }
            };
            report.stages.push(StageReport {
                name: stage.name,
                optional: stage.optional,
                outcome,
                attempts: result.attempts,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ei_faults::{FailureCause, FaultPlan, VirtualClock};

    #[test]
    fn map_covers_all_stages_in_order() {
        let map = workflow_map();
        assert_eq!(map.len(), 7);
        assert_eq!(map.first().unwrap().stage, WorkflowStage::DataCollection);
        assert_eq!(map.last().unwrap().stage, WorkflowStage::Monitoring);
        // each of the five paper challenges appears at least once
        for challenge in [
            Challenge::DataCollection,
            Challenge::DataPreprocessing,
            Challenge::Development,
            Challenge::Deployment,
            Challenge::Monitoring,
        ] {
            assert!(map.iter().any(|e| e.challenge == challenge), "{challenge:?} missing");
        }
    }

    #[test]
    fn entries_name_modules() {
        assert!(workflow_map().iter().all(|e| !e.module.is_empty() && !e.feature.is_empty()));
    }

    #[test]
    fn flow_completes_and_exposes_outputs() {
        let runner = FlowRunner::with_clock(RetryPolicy::immediate(1), VirtualClock::shared());
        let report = runner
            .run(vec![
                FlowStage::required("ingest", |_| Ok("40 samples".into())),
                FlowStage::required("train", |_| Ok("acc=0.97".into())),
            ])
            .unwrap();
        assert!(!report.degraded());
        assert_eq!(report.output("ingest"), Some("40 samples"));
        assert_eq!(report.output("train"), Some("acc=0.97"));
        assert!(report.stage("train").unwrap().attempts.is_empty());
    }

    #[test]
    fn optional_stage_degrades_with_history_and_flow_continues() {
        let clock = VirtualClock::shared();
        let policy = RetryPolicy::default().with_seed(11).with_max_attempts(2);
        let runner = FlowRunner::with_clock(policy, clock.clone());
        let plan = FaultPlan::new().panic_on(1, "ewma blew up").error_on(2, "still down");
        let mut flaky = plan.arm(clock, || Ok::<_, String>("unreachable".to_string()));
        let report = runner
            .run(vec![
                FlowStage::required("train", |_| Ok("acc=0.95".into())),
                FlowStage::optional("anomaly", move |_| flaky()),
                FlowStage::required("deploy", |_| Ok("bundle built".into())),
            ])
            .unwrap();
        assert!(report.degraded());
        assert_eq!(report.degraded_stages(), vec!["anomaly"]);
        // the later required stage still ran
        assert_eq!(report.output("deploy"), Some("bundle built"));
        // the degraded stage carries its full attempt history
        let anomaly = report.stage("anomaly").unwrap();
        assert_eq!(anomaly.outcome, StageOutcome::Degraded("still down".into()));
        assert_eq!(anomaly.attempts.len(), 2);
        assert_eq!(anomaly.attempts[0].cause, FailureCause::Panic("ewma blew up".into()));
        assert_eq!(anomaly.attempts[1].cause, FailureCause::Error("still down".into()));
    }

    #[test]
    fn required_stage_failure_aborts_the_flow() {
        let runner = FlowRunner::with_clock(
            RetryPolicy::default().with_max_attempts(2),
            VirtualClock::shared(),
        );
        let err = runner
            .run(vec![
                FlowStage::required("ingest", |_| Ok("ok".into())),
                FlowStage::required("train", |_| Err("diverged".into())),
                FlowStage::required("deploy", |_| panic!("must not run")),
            ])
            .unwrap_err();
        assert_eq!(err, CoreError::StageFailed { stage: "train".into(), error: "diverged".into() });
    }

    #[test]
    fn stage_backoffs_follow_the_seeded_schedule_per_stream() {
        let clock = VirtualClock::shared();
        let policy = RetryPolicy::default().with_seed(5).with_max_attempts(3);
        let runner = FlowRunner::with_clock(policy.clone(), clock);
        let report = runner
            .run(vec![
                FlowStage::required("ok", |_| Ok("fine".into())),
                FlowStage::optional("flaky", |_| Err("nope".into())),
            ])
            .unwrap();
        let backoffs: Vec<u64> =
            report.stage("flaky").unwrap().attempts.iter().filter_map(|a| a.backoff_ms).collect();
        // stage index 1 is the jitter stream, so the schedule is exactly
        // the policy preview for stream 1
        assert_eq!(backoffs, policy.backoff_preview(1, 2));
    }

    #[test]
    fn cancellation_aborts_the_flow() {
        let runner = FlowRunner::with_clock(
            RetryPolicy::default().with_max_attempts(10),
            VirtualClock::shared(),
        );
        let token = runner.cancel_token();
        let err = runner
            .run(vec![FlowStage::required("spin", move |_| {
                token.cancel();
                Err("interrupted".into())
            })])
            .unwrap_err();
        assert!(matches!(err, CoreError::StageFailed { stage, .. } if stage == "spin"));
    }

    #[test]
    fn traced_flow_emits_stage_spans_and_degradation_events() {
        use ei_trace::RecordKind;
        let clock = VirtualClock::shared();
        let (tracer, collector) = Tracer::collecting(clock.clone());
        let policy = RetryPolicy::default().with_seed(3).with_max_attempts(2);
        let runner = FlowRunner::with_clock(policy, clock).with_tracer(tracer.clone());
        let report = runner
            .run(vec![
                FlowStage::required("train", |_| Ok("acc=0.96".into())),
                FlowStage::optional("anomaly", |_| Err("ewma down".into())),
            ])
            .unwrap();
        assert!(report.degraded());
        let records = collector.records();
        // span taxonomy: flow → flow.stage ×2, all closed
        let starts: Vec<&str> = records
            .iter()
            .filter(|r| matches!(r.kind, RecordKind::SpanStart { .. }))
            .map(|r| r.name())
            .collect();
        assert_eq!(starts, vec!["flow", "flow.stage", "flow.stage"]);
        let ends = records.iter().filter(|r| matches!(r.kind, RecordKind::SpanEnd { .. })).count();
        assert_eq!(ends, 3, "every span must close");
        // the degraded optional stage is visible in the trace itself
        let degraded: Vec<&ei_trace::TraceRecord> =
            records.iter().filter(|r| r.name() == "stage.degraded").collect();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].fields(), &[("error", ei_trace::Value::Str("ewma down".into()))]);
        // retries inside the stage surface as attempt/backoff events
        assert!(records.iter().any(|r| r.name() == "stage.backoff"));
        let snapshot = tracer.metrics_snapshot();
        assert_eq!(snapshot.get("flow.stages_completed"), Some(&ei_trace::MetricValue::Counter(1)));
        assert_eq!(snapshot.get("flow.stages_degraded"), Some(&ei_trace::MetricValue::Counter(1)));
    }

    #[test]
    fn untraced_flow_behaves_identically() {
        // the disabled tracer must not change retry or report semantics
        let clock = VirtualClock::shared();
        let policy = RetryPolicy::default().with_seed(5).with_max_attempts(3);
        let runner = FlowRunner::with_clock(policy.clone(), clock);
        let report = runner
            .run(vec![
                FlowStage::required("ok", |_| Ok("fine".into())),
                FlowStage::optional("flaky", |_| Err("nope".into())),
            ])
            .unwrap();
        let backoffs: Vec<u64> =
            report.stage("flaky").unwrap().attempts.iter().filter_map(|a| a.backoff_ms).collect();
        assert_eq!(backoffs, policy.backoff_preview(1, 2));
    }
}
