//! The ML-workflow stage ↔ challenge map of paper Figure 1.

/// One stage of the end-to-end embedded-ML workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowStage {
    /// Gathering and curating sensor data.
    DataCollection,
    /// DSP feature extraction.
    Preprocessing,
    /// Model design and training.
    Training,
    /// Accuracy / latency / memory evaluation.
    Evaluation,
    /// Compression and optimization (quantization, fusion, EON).
    Optimization,
    /// Conversion and compilation for a target.
    Deployment,
    /// Fleet monitoring and updates.
    Monitoring,
}

/// The ecosystem challenge each stage answers (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Challenge {
    /// Challenge #1: no large curated sensor datasets; labeling is costly.
    DataCollection,
    /// Challenge #2: DSP is critical but lacks automated tooling.
    DataPreprocessing,
    /// Challenge #3: dependency hell across training and deployment.
    Development,
    /// Challenge #4: hardware heterogeneity restricts portability.
    Deployment,
    /// Challenge #5: no unified MLOps loop for embedded fleets.
    Monitoring,
}

/// One row of the Figure 1 map: stage, the challenge it answers, and the
/// platform feature that implements it (with the module that builds it
/// here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowEntry {
    /// Workflow stage.
    pub stage: WorkflowStage,
    /// Ecosystem challenge addressed.
    pub challenge: Challenge,
    /// Platform feature (paper terminology).
    pub feature: &'static str,
    /// The `edgelab` module implementing it.
    pub module: &'static str,
}

/// The full workflow map in pipeline order.
pub fn workflow_map() -> Vec<WorkflowEntry> {
    vec![
        WorkflowEntry {
            stage: WorkflowStage::DataCollection,
            challenge: Challenge::DataCollection,
            feature: "multi-format ingestion, dataset versioning, active learning",
            module: "ei-data / ei-active",
        },
        WorkflowEntry {
            stage: WorkflowStage::Preprocessing,
            challenge: Challenge::DataPreprocessing,
            feature: "DSP processing blocks with autotune",
            module: "ei-dsp",
        },
        WorkflowEntry {
            stage: WorkflowStage::Training,
            challenge: Challenge::Development,
            feature: "visual learn blocks, LR finder, bias init, checkpointing",
            module: "ei-nn",
        },
        WorkflowEntry {
            stage: WorkflowStage::Evaluation,
            challenge: Challenge::Development,
            feature: "confusion matrices, on-device estimation, performance calibration",
            module: "ei-core / ei-device / ei-calibration",
        },
        WorkflowEntry {
            stage: WorkflowStage::Optimization,
            challenge: Challenge::Deployment,
            feature: "int8 quantization, operator fusion, EON compiler, EON tuner",
            module: "ei-quant / ei-runtime / ei-tuner",
        },
        WorkflowEntry {
            stage: WorkflowStage::Deployment,
            challenge: Challenge::Deployment,
            feature: "C++/Arduino/EIM/WASM export, firmware SDK",
            module: "ei-core::deploy / ei-core::sdk",
        },
        WorkflowEntry {
            stage: WorkflowStage::Monitoring,
            challenge: Challenge::Monitoring,
            feature: "REST API, jobs, versioned projects (IoT management via integrations)",
            module: "ei-platform",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_covers_all_stages_in_order() {
        let map = workflow_map();
        assert_eq!(map.len(), 7);
        assert_eq!(map.first().unwrap().stage, WorkflowStage::DataCollection);
        assert_eq!(map.last().unwrap().stage, WorkflowStage::Monitoring);
        // each of the five paper challenges appears at least once
        for challenge in [
            Challenge::DataCollection,
            Challenge::DataPreprocessing,
            Challenge::Development,
            Challenge::Deployment,
            Challenge::Monitoring,
        ] {
            assert!(map.iter().any(|e| e.challenge == challenge), "{challenge:?} missing");
        }
    }

    #[test]
    fn entries_name_modules() {
        assert!(workflow_map().iter().all(|e| !e.module.is_empty() && !e.feature.is_empty()));
    }
}
