//! Deployment bundles: the export formats the platform ships (paper §4.6).
//!
//! "Edge Impulse offers several possibilities for DSP and model deployment
//! … standalone C++ library, Arduino library, process runner for Linux,
//! WebAssembly library, and precompiled binaries." A bundle is the set of
//! generated files for one target; the model body comes from the EON code
//! generator (or a serialized weight blob for the interpreter path).

use crate::impulse::TrainedImpulse;
use crate::{CoreError, Result};
use ei_runtime::codegen::{emit_c_source, emit_kernels_header};
use ei_runtime::{EngineKind, EonProgram, InferenceEngine, Interpreter, ModelArtifact};

/// Export target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentTarget {
    /// Standalone C++ library (any toolchain).
    CppLibrary,
    /// Arduino library layout.
    ArduinoLibrary,
    /// Linux EIM: native process exposing an I/O protocol.
    LinuxEim,
    /// WebAssembly library with a JS loader.
    Wasm,
}

impl DeploymentTarget {
    /// All targets.
    pub fn all() -> [DeploymentTarget; 4] {
        [
            DeploymentTarget::CppLibrary,
            DeploymentTarget::ArduinoLibrary,
            DeploymentTarget::LinuxEim,
            DeploymentTarget::Wasm,
        ]
    }
}

/// One generated file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleFile {
    /// Path within the bundle.
    pub path: String,
    /// File contents.
    pub contents: String,
}

/// A complete deployment bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentBundle {
    /// The export target.
    pub target: DeploymentTarget,
    /// Engine the bundle embeds.
    pub engine: EngineKind,
    /// Generated files.
    pub files: Vec<BundleFile>,
}

impl DeploymentBundle {
    /// Looks a file up by path.
    pub fn file(&self, path: &str) -> Option<&BundleFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Total bundle size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.files.iter().map(|f| f.contents.len()).sum()
    }
}

/// Builds a deployment bundle for a trained impulse.
///
/// `artifact` selects float or int8; `engine` selects the EON compiled
/// path (model as generated C) or the interpreter path (model as a
/// serialized blob plus runtime).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn build_bundle(
    trained: &TrainedImpulse,
    artifact: ModelArtifact,
    target: DeploymentTarget,
    engine: EngineKind,
) -> Result<DeploymentBundle> {
    let mut files = Vec::new();
    let design = trained.design();

    // model_metadata.h — shared by every target
    let labels_c: Vec<String> = trained.labels().iter().map(|l| format!("\"{l}\"")).collect();
    files.push(BundleFile {
        path: "model/model_metadata.h".into(),
        contents: format!(
            "#pragma once\n\
             #define EI_PROJECT_NAME \"{name}\"\n\
             #define EI_RAW_SAMPLE_COUNT {window}\n\
             #define EI_LABEL_COUNT {nlabels}\n\
             #define EI_QUANTIZED {quant}\n\
             static const char *ei_labels[] = {{ {labels} }};\n",
            name = design.name,
            window = design.window_samples,
            nlabels = trained.labels().len(),
            quant = u8::from(artifact.is_quantized()),
            labels = labels_c.join(", "),
        ),
    });

    // dsp_config.json — rebuildable processing block
    files.push(BundleFile {
        path: "model/dsp_config.json".into(),
        contents: serde_json::to_string_pretty(&design.dsp)
            .map_err(|e| CoreError::InvalidImpulse(e.to_string()))?,
    });

    // engine-specific model body
    match engine {
        EngineKind::EonCompiled => {
            let program = EonProgram::compile(artifact.clone())?;
            files.push(BundleFile {
                path: "model/model_compiled.c".into(),
                contents: emit_c_source(&program),
            });
            files.push(BundleFile {
                path: "model/edgelab_kernels.h".into(),
                contents: emit_kernels_header(&program),
            });
        }
        EngineKind::TflmInterpreter => {
            let interp = Interpreter::new(artifact.clone())?;
            let report = interp.memory();
            files.push(BundleFile {
                path: "model/model_data.h".into(),
                contents: format!(
                    "#pragma once\n\
                     /* serialized model blob for the interpreter */\n\
                     #define EI_MODEL_BLOB_BYTES {}\n\
                     #define EI_ARENA_BYTES {}\n\
                     extern const unsigned char ei_model_blob[];\n",
                    report.weight_bytes + report.model_format_bytes,
                    report.arena_bytes,
                ),
            });
        }
    }

    // target-specific glue
    match target {
        DeploymentTarget::CppLibrary => {
            files.push(BundleFile {
                path: "Makefile".into(),
                contents: "CXXFLAGS += -Os -Imodel\nall:\n\t$(CXX) $(CXXFLAGS) main.cpp -o app\n"
                    .into(),
            });
            files.push(BundleFile {
                path: "main.cpp".into(),
                contents: format!(
                    "#include \"model/model_metadata.h\"\n\
                     int main() {{ /* feed {} samples, call model_invoke */ return 0; }}\n",
                    design.window_samples
                ),
            });
        }
        DeploymentTarget::ArduinoLibrary => {
            files.push(BundleFile {
                path: "library.properties".into(),
                contents: format!(
                    "name={name}\nversion=1.0.0\nsentence=Edge inference for {name}\n\
                     paragraph=Generated by edgelab\ncategory=Data Processing\n",
                    name = design.name
                ),
            });
            files.push(BundleFile {
                path: format!("examples/{0}/{0}.ino", design.name),
                contents: "#include <model/model_metadata.h>\nvoid setup() {}\nvoid loop() {}\n"
                    .into(),
            });
        }
        DeploymentTarget::LinuxEim => {
            files.push(BundleFile {
                path: "model.eim.json".into(),
                contents: serde_json::to_string_pretty(&serde_json::json!({
                    "project": design.name,
                    "protocol": "eim/1",
                    "input_features": design.window_samples,
                    "labels": trained.labels(),
                    "quantized": artifact.is_quantized(),
                    "engine": engine.to_string(),
                }))
                .map_err(|e| CoreError::InvalidImpulse(e.to_string()))?,
            });
        }
        DeploymentTarget::Wasm => {
            files.push(BundleFile {
                path: "edge-impulse-standalone.js".into(),
                contents: format!(
                    "// wasm loader for {name}\n\
                     export async function init() {{\n\
                     \u{20} const module = await WebAssembly.instantiateStreaming(fetch('model.wasm'));\n\
                     \u{20} return {{ classify: (raw) => module.instance.exports.run(raw) }};\n\
                     }}\n",
                    name = design.name
                ),
            });
        }
    }

    Ok(DeploymentBundle { target, engine, files })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impulse::ImpulseDesign;
    use ei_data::synth::KwsGenerator;
    use ei_dsp::{DspConfig, MfccConfig};
    use ei_nn::presets;
    use ei_nn::train::TrainConfig;

    fn trained() -> TrainedImpulse {
        let gen = KwsGenerator {
            classes: vec!["a".into(), "b".into()],
            sample_rate_hz: 4_000,
            duration_s: 0.25,
            noise: 0.02,
        };
        let dataset = gen.dataset(5, 1);
        let design = ImpulseDesign::new(
            "bundle-test",
            1_000,
            DspConfig::Mfcc(MfccConfig {
                frame_s: 0.032,
                stride_s: 0.016,
                n_coefficients: 8,
                n_filters: 16,
                sample_rate_hz: 4_000,
            }),
        )
        .unwrap();
        let spec = presets::dense_mlp(design.feature_dims().unwrap(), 2, 8);
        design.train(&spec, &dataset, &TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap()
    }

    #[test]
    fn eon_cpp_bundle_contains_compiled_model() {
        let t = trained();
        let bundle = build_bundle(
            &t,
            t.float_artifact(),
            DeploymentTarget::CppLibrary,
            EngineKind::EonCompiled,
        )
        .unwrap();
        assert!(bundle.file("model/model_compiled.c").is_some());
        assert!(bundle.file("model/edgelab_kernels.h").is_some());
        assert!(bundle.file("Makefile").is_some());
        let meta = bundle.file("model/model_metadata.h").unwrap();
        assert!(meta.contents.contains("EI_RAW_SAMPLE_COUNT 1000"));
        assert!(meta.contents.contains("\"a\", \"b\""));
        assert!(bundle.size_bytes() > 500);
    }

    #[test]
    fn tflm_bundle_ships_blob_not_source() {
        let t = trained();
        let bundle = build_bundle(
            &t,
            t.float_artifact(),
            DeploymentTarget::CppLibrary,
            EngineKind::TflmInterpreter,
        )
        .unwrap();
        assert!(bundle.file("model/model_data.h").is_some());
        assert!(bundle.file("model/model_compiled.c").is_none());
    }

    #[test]
    fn every_target_builds() {
        let t = trained();
        for target in DeploymentTarget::all() {
            let bundle =
                build_bundle(&t, t.float_artifact(), target, EngineKind::EonCompiled).unwrap();
            assert!(bundle.file("model/dsp_config.json").is_some(), "{target:?}");
            assert!(!bundle.files.is_empty());
        }
    }

    #[test]
    fn eim_descriptor_is_valid_json() {
        let t = trained();
        let bundle = build_bundle(
            &t,
            t.int8_artifact().unwrap(),
            DeploymentTarget::LinuxEim,
            EngineKind::EonCompiled,
        )
        .unwrap();
        let descriptor = bundle.file("model.eim.json").unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&descriptor.contents).unwrap();
        assert_eq!(parsed["quantized"], true);
        assert_eq!(parsed["input_features"], 1000);
    }

    #[test]
    fn dsp_config_round_trips_from_bundle() {
        let t = trained();
        let bundle =
            build_bundle(&t, t.float_artifact(), DeploymentTarget::Wasm, EngineKind::EonCompiled)
                .unwrap();
        let cfg_file = bundle.file("model/dsp_config.json").unwrap();
        let cfg: DspConfig = serde_json::from_str(&cfg_file.contents).unwrap();
        assert_eq!(cfg, t.design().dsp);
    }
}
