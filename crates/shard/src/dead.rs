//! [`DeadLetterShards`]: per-shard dead-letter views.
//!
//! Failures land on the shard of the tenant key that produced them, so
//! an operator staring at a hot shard can pull exactly that shard's
//! failures ([`DeadLetterShards::shard_view`]) without scanning a
//! global queue; a merged, deterministically ordered view serves the
//! fleet-wide dashboard.

use std::sync::{Mutex, MutexGuard};

use crate::map::ShardKey;

/// One dead-lettered item: which tenant key produced it, the job/op id,
/// and the terminal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadEntry<K> {
    /// The tenant key whose work failed.
    pub key: K,
    /// The failed job/operation id.
    pub job: u64,
    /// The terminal error message.
    pub error: String,
}

/// Per-shard dead-letter storage. See the module docs.
#[derive(Debug)]
pub struct DeadLetterShards<K> {
    shards: Vec<Mutex<Vec<DeadEntry<K>>>>,
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<K: Ord + Clone + ShardKey> DeadLetterShards<K> {
    /// Dead-letter views striped over `shards` locks (min 1).
    pub fn new(shards: usize) -> DeadLetterShards<K> {
        DeadLetterShards { shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key`'s failures land on.
    pub fn shard_of(&self, key: &K) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    /// Records a failure on `key`'s shard.
    pub fn push(&self, key: K, job: u64, error: impl Into<String>) {
        let idx = self.shard_of(&key);
        lock_plain(&self.shards[idx]).push(DeadEntry { key, job, error: error.into() });
    }

    /// The failures recorded on shard `idx`, in arrival order.
    pub fn shard_view(&self, idx: usize) -> Vec<DeadEntry<K>> {
        lock_plain(&self.shards[idx % self.shards.len()]).clone()
    }

    /// Every failure, merged across shards and sorted by `(key, job)` so
    /// the view is deterministic regardless of shard count.
    pub fn merged(&self) -> Vec<DeadEntry<K>> {
        let guards: Vec<_> = self.shards.iter().map(lock_plain).collect();
        let mut out: Vec<DeadEntry<K>> = guards.iter().flat_map(|g| g.iter().cloned()).collect();
        out.sort_by(|a, b| a.key.cmp(&b.key).then(a.job.cmp(&b.job)));
        out
    }

    /// Total failures across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_plain(s).len()).sum()
    }

    /// `true` when no shard holds a failure.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| lock_plain(s).is_empty())
    }

    /// Drains every shard (index order), returning the removed entries
    /// sorted by `(key, job)`.
    pub fn drain(&self) -> Vec<DeadEntry<K>> {
        let mut out: Vec<DeadEntry<K>> = Vec::new();
        for shard in &self.shards {
            out.append(&mut lock_plain(shard));
        }
        out.sort_by(|a, b| a.key.cmp(&b.key).then(a.job.cmp(&b.job)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_views_and_merged_order() {
        let dead: DeadLetterShards<u64> = DeadLetterShards::new(4);
        for t in [9u64, 3, 9, 1] {
            dead.push(t, t * 10, format!("boom-{t}"));
        }
        dead.push(9, 5, "late");
        assert_eq!(dead.len(), 5);
        let shard9 = dead.shard_view(dead.shard_of(&9));
        assert!(shard9.iter().all(|e| dead.shard_of(&e.key) == dead.shard_of(&9)));
        assert!(shard9.iter().filter(|e| e.key == 9).count() == 3);
        let merged = dead.merged();
        let order: Vec<(u64, u64)> = merged.iter().map(|e| (e.key, e.job)).collect();
        assert_eq!(order, vec![(1, 10), (3, 30), (9, 5), (9, 90), (9, 90)]);
        // merged order is shard-count independent
        let one: DeadLetterShards<u64> = DeadLetterShards::new(1);
        for e in &merged {
            one.push(e.key, e.job, e.error.clone());
        }
        assert_eq!(one.merged(), merged);
        let drained = dead.drain();
        assert_eq!(drained, merged);
        assert!(dead.is_empty());
    }
}
