//! [`QuotaLedger`]: per-shard quota accounting for tenant keys.
//!
//! Each tenant's ledger (limit, admitted units, denied attempts) lives
//! on the shard its key hashes to, so a `charge` only takes that
//! tenant's shard lock — admission control scales with the store it
//! protects. A merged, key-ordered snapshot serves billing/export.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::map::ShardKey;

/// Outcome of [`QuotaLedger::charge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The units were admitted; `remaining` is what's left of the limit
    /// (`u64::MAX` for unlimited tenants).
    Admitted {
        /// Units left before the tenant hits its limit.
        remaining: u64,
    },
    /// The charge would exceed the limit; nothing was admitted.
    Denied {
        /// Units already admitted for this tenant.
        used: u64,
        /// The tenant's limit.
        limit: u64,
    },
}

impl QuotaDecision {
    /// `true` when the charge was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, QuotaDecision::Admitted { .. })
    }
}

/// One tenant's quota state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaUsage {
    /// The tenant's unit limit (`u64::MAX` = unlimited).
    pub limit: u64,
    /// Units admitted so far.
    pub used: u64,
    /// Charges denied so far.
    pub denied: u64,
}

#[derive(Debug, Clone, Copy)]
struct Ledger {
    limit: u64,
    used: u64,
    denied: u64,
}

/// A sharded per-tenant quota ledger. See the module docs.
#[derive(Debug)]
pub struct QuotaLedger<K> {
    shards: Vec<Mutex<BTreeMap<K, Ledger>>>,
    default_limit: u64,
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<K: Ord + Clone + ShardKey> QuotaLedger<K> {
    /// A ledger striped over `shards` locks. `default_limit` applies to
    /// tenants that never got an explicit [`QuotaLedger::set_limit`]
    /// (`u64::MAX` = unlimited, the platform default — quotas are
    /// opt-in and existing flows never see a denial).
    pub fn new(shards: usize, default_limit: u64) -> QuotaLedger<K> {
        QuotaLedger {
            shards: (0..shards.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect(),
            default_limit,
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    fn entry<'a>(
        guard: &'a mut BTreeMap<K, Ledger>,
        key: &K,
        default_limit: u64,
    ) -> &'a mut Ledger {
        guard.entry(key.clone()).or_insert(Ledger { limit: default_limit, used: 0, denied: 0 })
    }

    /// Sets `key`'s unit limit (does not reset usage).
    pub fn set_limit(&self, key: &K, limit: u64) {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        Self::entry(&mut guard, key, self.default_limit).limit = limit;
    }

    /// Atomically admits or denies `units` against `key`'s ledger,
    /// under only that tenant's shard lock.
    pub fn charge(&self, key: &K, units: u64) -> QuotaDecision {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        let ledger = Self::entry(&mut guard, key, self.default_limit);
        if ledger.used.saturating_add(units) > ledger.limit {
            ledger.denied += 1;
            QuotaDecision::Denied { used: ledger.used, limit: ledger.limit }
        } else {
            ledger.used += units;
            QuotaDecision::Admitted { remaining: ledger.limit.saturating_sub(ledger.used) }
        }
    }

    /// Refunds `units` to `key` (e.g. a job that never ran).
    pub fn release(&self, key: &K, units: u64) {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        let ledger = Self::entry(&mut guard, key, self.default_limit);
        ledger.used = ledger.used.saturating_sub(units);
    }

    /// `key`'s current usage, if the tenant has a ledger.
    pub fn usage(&self, key: &K) -> Option<QuotaUsage> {
        let guard = lock_plain(&self.shards[self.shard_of(key)]);
        guard.get(key).map(|l| QuotaUsage { limit: l.limit, used: l.used, denied: l.denied })
    }

    /// Units admitted per shard, by shard index.
    pub fn used_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| lock_plain(s).values().map(|l| l.used).sum()).collect()
    }

    /// A key-ordered merged snapshot of every tenant's ledger, locking
    /// all shards at once (index order) for a consistent cut.
    pub fn snapshot(&self) -> BTreeMap<K, QuotaUsage> {
        let guards: Vec<_> = self.shards.iter().map(lock_plain).collect();
        let mut out = BTreeMap::new();
        for guard in &guards {
            for (k, l) in guard.iter() {
                out.insert(
                    k.clone(),
                    QuotaUsage { limit: l.limit, used: l.used, denied: l.denied },
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default_then_limited() {
        let ledger: QuotaLedger<u64> = QuotaLedger::new(8, u64::MAX);
        assert!(ledger.charge(&1, 1_000_000).is_admitted());
        ledger.set_limit(&1, 1_000_001);
        assert!(ledger.charge(&1, 1).is_admitted());
        let denied = ledger.charge(&1, 1);
        assert_eq!(denied, QuotaDecision::Denied { used: 1_000_001, limit: 1_000_001 });
        let usage = ledger.usage(&1).unwrap();
        assert_eq!(usage.denied, 1);
        ledger.release(&1, 1);
        assert!(ledger.charge(&1, 1).is_admitted());
    }

    #[test]
    fn snapshot_merges_in_key_order_across_shard_counts() {
        let fill = |l: &QuotaLedger<u64>| {
            for t in (0..50u64).rev() {
                l.charge(&t, t);
            }
        };
        let one: QuotaLedger<u64> = QuotaLedger::new(1, u64::MAX);
        let many: QuotaLedger<u64> = QuotaLedger::new(16, u64::MAX);
        fill(&one);
        fill(&many);
        let a = one.snapshot();
        let b = many.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.keys().copied().collect::<Vec<_>>(), (0..50u64).collect::<Vec<_>>());
        assert_eq!(many.used_per_shard().iter().sum::<u64>(), (0..50u64).sum::<u64>());
    }
}
