//! [`QuotaLedger`]: per-shard quota accounting for tenant keys.
//!
//! Each tenant's ledger (limit, admitted units, denied attempts) lives
//! on the shard its key hashes to, so a `charge` only takes that
//! tenant's shard lock — admission control scales with the store it
//! protects. A merged, key-ordered snapshot serves billing/export.
//!
//! Tenants can additionally carry a *burst bucket*
//! ([`QuotaLedger::set_burst`]): a token bucket with per-tenant burst
//! capacity and clock-driven refill, the same shape as the serving
//! layer's admission buckets. [`QuotaLedger::charge_at`] refills from
//! elapsed logical time, then admits or denies atomically under the one
//! shard lock — a denial consumes neither tokens nor cumulative units.
//! Tenants without a bucket (the default) behave exactly as the plain
//! cumulative ledger.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::map::ShardKey;

/// Outcome of [`QuotaLedger::charge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The units were admitted; `remaining` is what's left of the limit
    /// (`u64::MAX` for unlimited tenants).
    Admitted {
        /// Units left before the tenant hits its limit.
        remaining: u64,
    },
    /// The charge would exceed the limit; nothing was admitted.
    Denied {
        /// Units already admitted for this tenant.
        used: u64,
        /// The tenant's limit.
        limit: u64,
    },
}

impl QuotaDecision {
    /// `true` when the charge was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, QuotaDecision::Admitted { .. })
    }
}

/// One tenant's quota state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaUsage {
    /// The tenant's unit limit (`u64::MAX` = unlimited).
    pub limit: u64,
    /// Units admitted so far.
    pub used: u64,
    /// Charges denied so far.
    pub denied: u64,
}

/// One tenant's burst bucket: capacity, refill rate, and the current
/// token level as of `updated_ms` on the caller's clock.
#[derive(Debug, Clone, Copy)]
struct Burst {
    capacity: u64,
    refill_per_sec: f64,
    tokens: f64,
    updated_ms: u64,
}

impl Burst {
    /// Advances the bucket to `now_ms`, refilling `refill_per_sec`
    /// tokens per elapsed second, saturating at `capacity`. Time never
    /// runs backwards: a stale `now_ms` leaves the bucket untouched.
    fn refill(&mut self, now_ms: u64) {
        if now_ms > self.updated_ms {
            let elapsed_ms = (now_ms - self.updated_ms) as f64;
            self.tokens = (self.tokens + elapsed_ms * self.refill_per_sec / 1_000.0)
                .min(self.capacity as f64);
            self.updated_ms = now_ms;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ledger {
    limit: u64,
    used: u64,
    denied: u64,
    burst: Option<Burst>,
}

/// A sharded per-tenant quota ledger. See the module docs.
#[derive(Debug)]
pub struct QuotaLedger<K> {
    shards: Vec<Mutex<BTreeMap<K, Ledger>>>,
    default_limit: u64,
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<K: Ord + Clone + ShardKey> QuotaLedger<K> {
    /// A ledger striped over `shards` locks. `default_limit` applies to
    /// tenants that never got an explicit [`QuotaLedger::set_limit`]
    /// (`u64::MAX` = unlimited, the platform default — quotas are
    /// opt-in and existing flows never see a denial).
    pub fn new(shards: usize, default_limit: u64) -> QuotaLedger<K> {
        QuotaLedger {
            shards: (0..shards.max(1)).map(|_| Mutex::new(BTreeMap::new())).collect(),
            default_limit,
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    fn entry<'a>(
        guard: &'a mut BTreeMap<K, Ledger>,
        key: &K,
        default_limit: u64,
    ) -> &'a mut Ledger {
        guard.entry(key.clone()).or_insert(Ledger {
            limit: default_limit,
            used: 0,
            denied: 0,
            burst: None,
        })
    }

    /// Sets `key`'s unit limit (does not reset usage).
    pub fn set_limit(&self, key: &K, limit: u64) {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        Self::entry(&mut guard, key, self.default_limit).limit = limit;
    }

    /// Gives `key` a burst bucket: at most `capacity` units of burst,
    /// refilled at `refill_per_sec` units per second of the caller's
    /// clock, full as of `now_ms`. A `capacity` of 0 removes the bucket,
    /// degenerating the tenant back to the plain cumulative ledger.
    pub fn set_burst(&self, key: &K, capacity: u64, refill_per_sec: f64, now_ms: u64) {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        let ledger = Self::entry(&mut guard, key, self.default_limit);
        ledger.burst = (capacity > 0).then_some(Burst {
            capacity,
            refill_per_sec,
            tokens: capacity as f64,
            updated_ms: now_ms,
        });
    }

    /// Atomically admits or denies `units` against `key`'s ledger,
    /// under only that tenant's shard lock. Equivalent to
    /// [`QuotaLedger::charge_at`] with no time elapsed — a tenant with a
    /// burst bucket gets no refill.
    pub fn charge(&self, key: &K, units: u64) -> QuotaDecision {
        self.charge_at(key, units, 0)
    }

    /// Atomically admits or denies `units` against `key`'s ledger at
    /// logical time `now_ms`, under only that tenant's shard lock.
    ///
    /// When the tenant carries a burst bucket ([`QuotaLedger::set_burst`])
    /// the bucket first refills from the time elapsed since its last
    /// charge (saturating at the burst capacity), then the charge is
    /// admitted only if *both* the cumulative limit and the bucket allow
    /// it — denial consumes neither, the same admit-or-deny atomicity as
    /// the plain ledger. Tenants without a bucket ignore `now_ms`
    /// entirely, so this is byte-for-byte the PR 9 `charge` for them.
    pub fn charge_at(&self, key: &K, units: u64, now_ms: u64) -> QuotaDecision {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        let ledger = Self::entry(&mut guard, key, self.default_limit);
        if let Some(burst) = &mut ledger.burst {
            burst.refill(now_ms);
        }
        let over_limit = ledger.used.saturating_add(units) > ledger.limit;
        let out_of_burst = ledger.burst.as_ref().is_some_and(|b| b.tokens < units as f64);
        if over_limit || out_of_burst {
            ledger.denied += 1;
            QuotaDecision::Denied { used: ledger.used, limit: ledger.limit }
        } else {
            if let Some(burst) = &mut ledger.burst {
                burst.tokens -= units as f64;
            }
            ledger.used += units;
            QuotaDecision::Admitted { remaining: ledger.limit.saturating_sub(ledger.used) }
        }
    }

    /// `key`'s burst tokens projected to `now_ms` (read-only: the stored
    /// bucket is not refilled). `None` when the tenant has no bucket.
    pub fn burst_tokens(&self, key: &K, now_ms: u64) -> Option<f64> {
        let guard = lock_plain(&self.shards[self.shard_of(key)]);
        guard.get(key).and_then(|l| l.burst).map(|mut b| {
            b.refill(now_ms);
            b.tokens
        })
    }

    /// Refunds `units` to `key` (e.g. a job that never ran).
    pub fn release(&self, key: &K, units: u64) {
        let mut guard = lock_plain(&self.shards[self.shard_of(key)]);
        let ledger = Self::entry(&mut guard, key, self.default_limit);
        ledger.used = ledger.used.saturating_sub(units);
    }

    /// `key`'s current usage, if the tenant has a ledger.
    pub fn usage(&self, key: &K) -> Option<QuotaUsage> {
        let guard = lock_plain(&self.shards[self.shard_of(key)]);
        guard.get(key).map(|l| QuotaUsage { limit: l.limit, used: l.used, denied: l.denied })
    }

    /// Units admitted per shard, by shard index.
    pub fn used_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| lock_plain(s).values().map(|l| l.used).sum()).collect()
    }

    /// A key-ordered merged snapshot of every tenant's ledger, locking
    /// all shards at once (index order) for a consistent cut.
    pub fn snapshot(&self) -> BTreeMap<K, QuotaUsage> {
        let guards: Vec<_> = self.shards.iter().map(lock_plain).collect();
        let mut out = BTreeMap::new();
        for guard in &guards {
            for (k, l) in guard.iter() {
                out.insert(
                    k.clone(),
                    QuotaUsage { limit: l.limit, used: l.used, denied: l.denied },
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default_then_limited() {
        let ledger: QuotaLedger<u64> = QuotaLedger::new(8, u64::MAX);
        assert!(ledger.charge(&1, 1_000_000).is_admitted());
        ledger.set_limit(&1, 1_000_001);
        assert!(ledger.charge(&1, 1).is_admitted());
        let denied = ledger.charge(&1, 1);
        assert_eq!(denied, QuotaDecision::Denied { used: 1_000_001, limit: 1_000_001 });
        let usage = ledger.usage(&1).unwrap();
        assert_eq!(usage.denied, 1);
        ledger.release(&1, 1);
        assert!(ledger.charge(&1, 1).is_admitted());
    }

    #[test]
    fn zero_burst_degenerates_to_plain_ledger() {
        // no bucket, and a bucket explicitly removed with capacity 0,
        // must both make the same decisions as the PR 9 cumulative
        // ledger for the same charge sequence, at any timestamps
        let plain: QuotaLedger<u64> = QuotaLedger::new(4, u64::MAX);
        let bursty: QuotaLedger<u64> = QuotaLedger::new(4, u64::MAX);
        bursty.set_burst(&7, 3, 1_000.0, 0);
        bursty.set_burst(&7, 0, 1_000.0, 0); // capacity 0 removes it
        plain.set_limit(&7, 5);
        bursty.set_limit(&7, 5);
        for (i, &units) in [2u64, 2, 2, 1, 9].iter().enumerate() {
            assert_eq!(
                plain.charge(&7, units),
                bursty.charge_at(&7, units, i as u64 * 1_000),
                "charge {i} must not depend on time without a bucket"
            );
        }
        assert_eq!(plain.usage(&7), bursty.usage(&7));
        assert_eq!(bursty.burst_tokens(&7, u64::MAX), None);
    }

    #[test]
    fn burst_refills_on_the_clock_and_saturates_at_capacity() {
        let ledger: QuotaLedger<u64> = QuotaLedger::new(4, u64::MAX);
        // 4 burst units, refilled at 2 per second
        ledger.set_burst(&1, 4, 2.0, 0);
        for _ in 0..4 {
            assert!(ledger.charge_at(&1, 1, 0).is_admitted(), "burst capacity admits");
        }
        let denied = ledger.charge_at(&1, 1, 0);
        assert_eq!(denied, QuotaDecision::Denied { used: 4, limit: u64::MAX });
        assert_eq!(ledger.usage(&1).unwrap().denied, 1);
        // 500 ms refills exactly one token
        assert!(ledger.charge_at(&1, 1, 500).is_admitted());
        assert!(!ledger.charge_at(&1, 1, 500).is_admitted(), "the one token is spent");
        // a denial never consumes tokens: the very next refilled charge admits
        assert!(ledger.charge_at(&1, 1, 1_000).is_admitted());
        // an hour refills far more than 4 tokens but the bucket saturates
        assert_eq!(ledger.burst_tokens(&1, 3_600_000 + 1_000), Some(4.0));
        for _ in 0..4 {
            assert!(ledger.charge_at(&1, 1, 3_600_000 + 1_000).is_admitted());
        }
        assert!(!ledger.charge_at(&1, 1, 3_600_000 + 1_000).is_admitted());
        // time running backwards never refills
        assert!(!ledger.charge_at(&1, 1, 0).is_admitted());
    }

    #[test]
    fn burst_and_cumulative_limit_deny_atomically() {
        let ledger: QuotaLedger<u64> = QuotaLedger::new(2, u64::MAX);
        ledger.set_limit(&3, 2);
        ledger.set_burst(&3, 10, 0.0, 0);
        assert!(ledger.charge_at(&3, 1, 0).is_admitted());
        assert!(ledger.charge_at(&3, 1, 0).is_admitted());
        // cumulative limit denies even though 8 burst tokens remain...
        assert!(!ledger.charge_at(&3, 1, 0).is_admitted());
        // ...and the denial consumed no tokens
        assert_eq!(ledger.burst_tokens(&3, 0), Some(8.0));
        assert_eq!(ledger.usage(&3).unwrap(), QuotaUsage { limit: 2, used: 2, denied: 1 });
    }

    #[test]
    fn concurrent_charges_match_the_serial_ledger() {
        // 8 real threads, each hammering its own tenant key with the
        // same deterministic (units, now_ms) sequence the serial ledger
        // replays — the merged snapshots and burst levels must be equal
        const THREADS: u64 = 8;
        const CHARGES: u64 = 200;
        let concurrent: std::sync::Arc<QuotaLedger<u64>> =
            std::sync::Arc::new(QuotaLedger::new(4, u64::MAX));
        let serial: QuotaLedger<u64> = QuotaLedger::new(4, u64::MAX);
        for ledger in [&*concurrent, &serial] {
            for key in 0..THREADS {
                ledger.set_limit(&key, 150);
                ledger.set_burst(&key, 8, 100.0, 0);
            }
        }
        let schedule = |key: u64, i: u64| (1 + (key + i) % 2, i * 20); // (units, now_ms)
        std::thread::scope(|scope| {
            for key in 0..THREADS {
                let ledger = std::sync::Arc::clone(&concurrent);
                scope.spawn(move || {
                    for i in 0..CHARGES {
                        let (units, now_ms) = schedule(key, i);
                        ledger.charge_at(&key, units, now_ms);
                    }
                });
            }
        });
        for key in 0..THREADS {
            for i in 0..CHARGES {
                let (units, now_ms) = schedule(key, i);
                serial.charge_at(&key, units, now_ms);
            }
        }
        assert_eq!(concurrent.snapshot(), serial.snapshot());
        for key in 0..THREADS {
            assert_eq!(
                concurrent.burst_tokens(&key, CHARGES * 20),
                serial.burst_tokens(&key, CHARGES * 20),
                "burst level for key {key}"
            );
        }
    }

    #[test]
    fn snapshot_merges_in_key_order_across_shard_counts() {
        let fill = |l: &QuotaLedger<u64>| {
            for t in (0..50u64).rev() {
                l.charge(&t, t);
            }
        };
        let one: QuotaLedger<u64> = QuotaLedger::new(1, u64::MAX);
        let many: QuotaLedger<u64> = QuotaLedger::new(16, u64::MAX);
        fill(&one);
        fill(&many);
        let a = one.snapshot();
        let b = many.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.keys().copied().collect::<Vec<_>>(), (0..50u64).collect::<Vec<_>>());
        assert_eq!(many.used_per_shard().iter().sum::<u64>(), (0..50u64).sum::<u64>());
    }
}
