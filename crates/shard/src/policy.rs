//! [`RebalancePolicy`]: telemetry-driven rebalance triggering.
//!
//! PR 9's [`crate::ShardMap::rebalance`] takes a manual seed — an
//! operator decides *when* to rebalance and *what* seed to use. This
//! module closes the loop: a policy watches the per-shard occupancy the
//! platform already publishes as telemetry gauges
//! (`platform.shard.occupancy` in `ei-obs`) and fires when the
//! occupancy skew stays above a threshold for N consecutive
//! observations on the injected clock. The seed it hands back is a pure
//! function of the observed occupancy vector and the trigger count, so
//! a policy-driven rebalance is exactly as reproducible as a
//! manual-seed one — and just as snapshot-byte-neutral, because the
//! policy only ever *chooses a seed*; the move mechanics are unchanged.

use crate::map::fnv1a_u64;

/// Point-in-time view of a [`RebalancePolicy`] for operator reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicyStatus {
    /// Skew above which observations count toward triggering.
    pub skew_threshold: f64,
    /// Consecutive over-threshold observations required to trigger.
    pub consecutive: u32,
    /// Over-threshold observations in the current streak.
    pub streak: u32,
    /// Rebalances triggered so far.
    pub triggers: u64,
    /// Clock time of the last trigger, if any.
    pub last_trigger_ms: Option<u64>,
}

/// Decides *when* a skewed store should rebalance and *what seed* to
/// use, from the same occupancy telemetry operators watch.
///
/// Feed it one occupancy observation per polling interval via
/// [`RebalancePolicy::observe`]; it returns `Some(seed)` once the skew
/// (max/mean occupancy, the [`crate::ShardMap::occupancy_skew`]
/// definition) has exceeded `skew_threshold` for `consecutive`
/// observations in a row, then resets its streak. An optional cooldown
/// suppresses re-triggering until `cooldown_ms` of clock time has
/// passed since the last trigger, so a persistently skewed store (skew
/// that moves cannot fix, e.g. one giant tenant) doesn't thrash.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    skew_threshold: f64,
    consecutive: u32,
    cooldown_ms: u64,
    streak: u32,
    triggers: u64,
    last_trigger_ms: Option<u64>,
}

impl RebalancePolicy {
    /// A policy that triggers once skew exceeds `skew_threshold` for
    /// `consecutive` observations in a row (`consecutive` is clamped to
    /// at least 1), with no cooldown.
    pub fn new(skew_threshold: f64, consecutive: u32) -> RebalancePolicy {
        RebalancePolicy {
            skew_threshold,
            consecutive: consecutive.max(1),
            cooldown_ms: 0,
            streak: 0,
            triggers: 0,
            last_trigger_ms: None,
        }
    }

    /// Suppresses re-triggering for `cooldown_ms` of clock time after
    /// each trigger (the streak still accumulates underneath).
    pub fn with_cooldown_ms(mut self, cooldown_ms: u64) -> RebalancePolicy {
        self.cooldown_ms = cooldown_ms;
        self
    }

    /// Feeds one occupancy observation (entries per shard, in shard
    /// index order — the `platform.shard.occupancy` gauge vector) taken
    /// at clock time `now_ms`.
    ///
    /// Returns `Some(seed)` when the policy decides to rebalance: the
    /// skew exceeded the threshold on this and the previous
    /// `consecutive - 1` observations, and any cooldown has elapsed.
    /// The seed is a pure FNV-1a fold of the occupancy vector mixed
    /// with the trigger ordinal, so identical telemetry histories
    /// always produce identical seeds (and therefore identical moves).
    pub fn observe(&mut self, occupancy: &[usize], now_ms: u64) -> Option<u64> {
        if Self::skew(occupancy) <= self.skew_threshold {
            self.streak = 0;
            return None;
        }
        self.streak = self.streak.saturating_add(1);
        if self.streak < self.consecutive {
            return None;
        }
        if let Some(last) = self.last_trigger_ms {
            if self.cooldown_ms > 0 && now_ms < last.saturating_add(self.cooldown_ms) {
                return None;
            }
        }
        self.streak = 0;
        self.triggers += 1;
        self.last_trigger_ms = Some(now_ms);
        Some(Self::seed(occupancy, self.triggers))
    }

    /// The policy's current state for [`RebalancePolicyStatus`] reports.
    pub fn status(&self) -> RebalancePolicyStatus {
        RebalancePolicyStatus {
            skew_threshold: self.skew_threshold,
            consecutive: self.consecutive,
            streak: self.streak,
            triggers: self.triggers,
            last_trigger_ms: self.last_trigger_ms,
        }
    }

    /// max/mean occupancy — the same definition as
    /// [`crate::ShardMap::occupancy_skew`]. Empty vectors report 1.0.
    fn skew(occupancy: &[usize]) -> f64 {
        let total: usize = occupancy.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / occupancy.len() as f64;
        occupancy.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Deterministic seed: FNV-1a over the occupancy counts, mixed with
    /// the trigger ordinal so repeated triggers on an unchanged skew
    /// profile still explore different move sets.
    fn seed(occupancy: &[usize], trigger: u64) -> u64 {
        let folded = occupancy.iter().fold(trigger, |acc, &n| fnv1a_u64(acc ^ fnv1a_u64(n as u64)));
        fnv1a_u64(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_only_after_consecutive_over_threshold_observations() {
        let mut policy = RebalancePolicy::new(1.5, 3);
        let skewed = [10usize, 0, 0, 0]; // skew 4.0
        let even = [3usize, 3, 2, 2]; // skew 1.2
        assert_eq!(policy.observe(&skewed, 0), None);
        assert_eq!(policy.observe(&skewed, 100), None);
        let seed = policy.observe(&skewed, 200);
        assert!(seed.is_some(), "third consecutive observation triggers");
        // an under-threshold observation resets the streak
        assert_eq!(policy.observe(&skewed, 300), None);
        assert_eq!(policy.observe(&even, 400), None);
        assert_eq!(policy.observe(&skewed, 500), None);
        assert_eq!(policy.observe(&skewed, 600), None);
        let again = policy.observe(&skewed, 700);
        assert!(again.is_some());
        assert_ne!(seed, again, "trigger ordinal perturbs the seed");
        assert_eq!(policy.status().triggers, 2);
        assert_eq!(policy.status().last_trigger_ms, Some(700));
    }

    #[test]
    fn identical_histories_produce_identical_seeds() {
        let run = || {
            let mut policy = RebalancePolicy::new(1.5, 2);
            let mut seeds = Vec::new();
            for i in 0..10u64 {
                if let Some(seed) = policy.observe(&[7, 1, 0, 0], i * 50) {
                    seeds.push(seed);
                }
            }
            seeds
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "policy seeds are a pure function of telemetry history");
    }

    #[test]
    fn cooldown_suppresses_retriggers_until_elapsed() {
        let mut policy = RebalancePolicy::new(1.5, 1).with_cooldown_ms(1_000);
        let skewed = [9usize, 0, 0];
        assert!(policy.observe(&skewed, 0).is_some());
        assert_eq!(policy.observe(&skewed, 500), None, "inside cooldown");
        assert_eq!(policy.observe(&skewed, 999), None);
        assert!(policy.observe(&skewed, 1_000).is_some(), "cooldown elapsed");
    }

    #[test]
    fn empty_and_even_occupancy_never_trigger() {
        let mut policy = RebalancePolicy::new(1.0, 1);
        assert_eq!(policy.observe(&[], 0), None);
        assert_eq!(policy.observe(&[0, 0, 0], 1), None);
        assert_eq!(policy.observe(&[5, 5, 5], 2), None, "skew exactly 1.0 is not > threshold");
        assert_eq!(policy.status().streak, 0);
    }
}
