//! [`ShardMap`]: a striped key→value store with consistent snapshots and
//! a seeded rebalance pass.
//!
//! Entries stripe across N independently locked shards by FNV-1a of the
//! key, so writers for different tenants almost never contend. Three
//! properties the platform layer leans on:
//!
//! 1. **Placement is a pure function.** A key's *home* shard is
//!    `fnv1a(key) % shards`. An override table (fed by [`ShardMap::insert_at`]
//!    pins and [`ShardMap::rebalance`] moves) is consulted first, so a
//!    key always has exactly one live shard.
//! 2. **Snapshots are consistent and key-ordered.** [`ShardMap::snapshot`]
//!    locks every shard (in index order, the crate-wide lock order) and
//!    merges into one `BTreeMap`, so serializing a snapshot yields bytes
//!    independent of the shard count — a 64-shard export equals the
//!    serial reference byte for byte.
//! 3. **Rebalance is deterministic.** Given the same occupancy and seed,
//!    [`ShardMap::rebalance`] picks the same keys to move (seeded
//!    partial Fisher–Yates over each overfull shard's sorted keys) and
//!    the same destinations (underfull shards in index order).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// FNV-1a over the 8 little-endian bytes of a `u64` — the shard hash for
/// numeric tenant ids ([`ShardKey`] for `u64` and the platform id
/// newtypes route through this).
pub fn fnv1a_u64(raw: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in raw.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over raw bytes (string tenant keys).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A key that knows its shard hash. Typed id newtypes implement this by
/// hashing their raw `u64`, so `ProjectId(7)` and `UserId(7)` of the
/// platform land wherever raw `7` would — placement survives newtype
/// migrations.
pub trait ShardKey {
    /// A stable 64-bit hash of the key (FNV-1a by convention).
    fn shard_hash(&self) -> u64;
}

impl ShardKey for u64 {
    fn shard_hash(&self) -> u64 {
        fnv1a_u64(*self)
    }
}

impl ShardKey for u32 {
    fn shard_hash(&self) -> u64 {
        fnv1a_u64(*self as u64)
    }
}

impl ShardKey for usize {
    fn shard_hash(&self) -> u64 {
        fnv1a_u64(*self as u64)
    }
}

impl ShardKey for String {
    fn shard_hash(&self) -> u64 {
        fnv1a_bytes(self.as_bytes())
    }
}

impl ShardKey for &str {
    fn shard_hash(&self) -> u64 {
        fnv1a_bytes(self.as_bytes())
    }
}

/// Telemetry hooks a [`ShardMap`] calls with its lock-wait times and
/// per-shard occupancy. The platform bridges this into the `ei-obs`
/// registry (`platform.shard.lock_wait`, `platform.shard.occupancy`)
/// so flight dumps can name hot shards. With no observer attached the
/// map never reads a wall clock.
pub trait ShardObserver: Send + Sync {
    /// One lock acquisition on `shard` waited `wait_ns` nanoseconds.
    fn lock_wait(&self, shard: usize, wait_ns: u64);
    /// `shard` now holds `len` entries (called after inserts/removes).
    fn occupancy(&self, shard: usize, len: usize);
}

/// What a [`ShardMap::rebalance`] pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// Entries moved between shards.
    pub moved: usize,
    /// Entries evicted by the `evict` predicate before rebalancing.
    pub evicted: usize,
    /// max/mean occupancy before the pass (1.0 = perfectly even).
    pub skew_before: f64,
    /// max/mean occupancy after the pass.
    pub skew_after: f64,
}

/// A striped, tenant-partitioned key→value store. See the module docs.
pub struct ShardMap<K, V> {
    shards: Vec<Mutex<BTreeMap<K, V>>>,
    /// Keys living away from their home shard (pins + rebalance moves).
    /// Lock order: `overrides` before any shard, shards in index order.
    overrides: Mutex<BTreeMap<K, usize>>,
    observer: OnceLock<Arc<dyn ShardObserver>>,
}

impl<K, V> std::fmt::Debug for ShardMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMap").field("shards", &self.shards.len()).finish_non_exhaustive()
    }
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<K: Ord + Clone + ShardKey, V> ShardMap<K, V> {
    /// A map striped over `shards` locks (clamped to at least 1).
    pub fn new(shards: usize) -> ShardMap<K, V> {
        let shards = shards.max(1);
        ShardMap {
            shards: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            overrides: Mutex::new(BTreeMap::new()),
            observer: OnceLock::new(),
        }
    }

    /// Attaches telemetry hooks (first caller wins; later calls are
    /// ignored so racing attachers cannot swap observers mid-flight).
    pub fn set_observer(&self, observer: Arc<dyn ShardObserver>) {
        let _ = self.observer.set(observer);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` hashes to, ignoring overrides.
    pub fn home_shard(&self, key: &K) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    /// The shard `key` currently lives in (override table first).
    pub fn shard_of(&self, key: &K) -> usize {
        if let Some(&s) = lock_plain(&self.overrides).get(key) {
            return s;
        }
        self.home_shard(key)
    }

    /// Locks shard `idx`, timing the wait when an observer is attached.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, BTreeMap<K, V>> {
        match self.observer.get() {
            None => lock_plain(&self.shards[idx]),
            Some(obs) => {
                let started = std::time::Instant::now();
                let guard = lock_plain(&self.shards[idx]);
                obs.lock_wait(idx, started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    fn note_occupancy(&self, idx: usize, len: usize) {
        if let Some(obs) = self.observer.get() {
            obs.occupancy(idx, len);
        }
    }

    /// Inserts `key → value` into its current shard, returning any
    /// previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let idx = self.shard_of(&key);
        let mut shard = self.lock_shard(idx);
        let prev = shard.insert(key, value);
        let len = shard.len();
        drop(shard);
        self.note_occupancy(idx, len);
        prev
    }

    /// Inserts `key → value` pinned to an explicit shard (recorded in the
    /// override table), e.g. to co-locate a stream session with the shard
    /// of the project that owns it.
    pub fn insert_at(&self, key: K, value: V, shard: usize) -> Option<V> {
        let shard = shard % self.shards.len();
        let mut overrides = lock_plain(&self.overrides);
        let old = if shard == self.home_shard(&key) {
            overrides.remove(&key)
        } else {
            overrides.insert(key.clone(), shard)
        };
        // A re-pin must not strand the old copy in its previous shard.
        if let Some(old_shard) = old {
            if old_shard != shard {
                lock_plain(&self.shards[old_shard]).remove(&key);
            }
        } else if self.home_shard(&key) != shard {
            lock_plain(&self.shards[self.home_shard(&key)]).remove(&key);
        }
        drop(overrides);
        let mut guard = self.lock_shard(shard);
        let prev = guard.insert(key, value);
        let len = guard.len();
        drop(guard);
        self.note_occupancy(shard, len);
        prev
    }

    /// Clones the value for `key`.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let idx = self.shard_of(key);
        self.lock_shard(idx).get(key).cloned()
    }

    /// `true` when `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        let idx = self.shard_of(key);
        self.lock_shard(idx).contains_key(key)
    }

    /// Runs `f` with a shared reference to the value, under only that
    /// key's shard lock.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        let idx = self.shard_of(key);
        let guard = self.lock_shard(idx);
        guard.get(key).map(f)
    }

    /// Runs `f` with a mutable reference to the value, under only that
    /// key's shard lock.
    pub fn with_mut<R>(&self, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let idx = self.shard_of(key);
        let mut guard = self.lock_shard(idx);
        guard.get_mut(key).map(f)
    }

    /// Removes `key`, returning its value and clearing any override.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut overrides = lock_plain(&self.overrides);
        let idx = overrides.remove(key).unwrap_or_else(|| self.home_shard(key));
        drop(overrides);
        let mut shard = self.lock_shard(idx);
        let prev = shard.remove(key);
        let len = shard.len();
        drop(shard);
        self.note_occupancy(idx, len);
        prev
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_plain(s).len()).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| lock_plain(s).is_empty())
    }

    /// Entries per shard, by shard index.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| lock_plain(s).len()).collect()
    }

    /// max/mean shard occupancy: 1.0 is perfectly even, `shards` is
    /// worst-case (everything on one shard). Empty maps report 1.0.
    pub fn occupancy_skew(&self) -> f64 {
        let occ = self.occupancy();
        let total: usize = occ.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / occ.len() as f64;
        occ.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// A consistent point-in-time copy merged in key order: all shard
    /// locks are held at once (in index order), so the snapshot is a
    /// cut no concurrent writer can straddle, and the merged `BTreeMap`
    /// serializes to the same bytes at any shard count.
    pub fn snapshot(&self) -> BTreeMap<K, V>
    where
        V: Clone,
    {
        let guards: Vec<_> = (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        let mut out = BTreeMap::new();
        for guard in &guards {
            for (k, v) in guard.iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }

    /// Visits every entry in **key order** without cloning values: all
    /// shard locks are held at once (index order) and the per-shard
    /// `BTreeMap` iterators are k-way merged. The read-side companion
    /// to [`ShardMap::snapshot`] for scans that only need references
    /// (listings, filtered views, checksums).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let guards: Vec<_> = (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        let mut iters: Vec<_> = guards.iter().map(|g| g.iter().peekable()).collect();
        loop {
            let mut best: Option<usize> = None;
            let mut best_key: Option<&K> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(&(k, _)) = it.peek() {
                    if best_key.is_none_or(|bk| k < bk) {
                        best_key = Some(k);
                        best = Some(i);
                    }
                }
            }
            match best {
                None => break,
                Some(i) => {
                    let (k, v) = iters[i].next().expect("peeked above");
                    f(k, v);
                }
            }
        }
    }

    /// Removes every entry matching `pred` (shard by shard, in index
    /// order), returning the evicted pairs sorted by key.
    pub fn evict_where(&self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        for idx in 0..self.shards.len() {
            let mut shard = self.lock_shard(idx);
            let doomed: Vec<K> =
                shard.iter().filter(|(k, v)| pred(k, v)).map(|(k, _)| k.clone()).collect();
            for k in doomed {
                if let Some(v) = shard.remove(&k) {
                    evicted.push((k, v));
                }
            }
            let len = shard.len();
            drop(shard);
            self.note_occupancy(idx, len);
        }
        if !evicted.is_empty() {
            let mut overrides = lock_plain(&self.overrides);
            for (k, _) in &evicted {
                overrides.remove(k);
            }
        }
        evicted.sort_by(|a, b| a.0.cmp(&b.0));
        evicted
    }

    /// One seeded cross-shard rebalance pass for skewed tenant
    /// distributions.
    ///
    /// Holding the override table and every shard lock, the pass moves
    /// entries out of shards above the even-occupancy target
    /// (`ceil(len / shards)`) into shards below it. Which entries move
    /// is a seeded partial Fisher–Yates over the overfull shard's sorted
    /// keys — deterministic for a given `(occupancy, seed)` — and each
    /// move is recorded in the override table (or erased, when a key
    /// happens to move back to its home shard). Snapshot bytes are
    /// unchanged by construction: only placement moves, never values.
    pub fn rebalance(&self, seed: u64) -> RebalanceReport {
        let mut overrides = lock_plain(&self.overrides);
        let mut guards: Vec<_> = self.shards.iter().map(lock_plain).collect();
        let occ_before: Vec<usize> = guards.iter().map(|g| g.len()).collect();
        let total: usize = occ_before.iter().sum();
        let skew = |occ: &[usize]| {
            if total == 0 {
                1.0
            } else {
                *occ.iter().max().expect("at least one shard") as f64
                    / (total as f64 / occ.len() as f64)
            }
        };
        let skew_before = skew(&occ_before);
        if total == 0 {
            return RebalanceReport { moved: 0, evicted: 0, skew_before, skew_after: skew_before };
        }
        let target = total.div_ceil(self.shards.len());
        let mut rng = SplitMix64::new(seed);
        let mut moved = 0usize;
        for src in 0..guards.len() {
            let excess = guards[src].len().saturating_sub(target);
            if excess == 0 {
                continue;
            }
            // Seeded selection: partial Fisher–Yates over sorted keys.
            let mut keys: Vec<K> = guards[src].keys().cloned().collect();
            for i in 0..excess {
                let j = i + (rng.next_u64() % (keys.len() - i) as u64) as usize;
                keys.swap(i, j);
            }
            for key in keys.into_iter().take(excess) {
                // Destination: first shard (index order) below target.
                let Some(dst) = (0..guards.len()).find(|&d| d != src && guards[d].len() < target)
                else {
                    break;
                };
                let value = guards[src].remove(&key).expect("key was just listed");
                guards[dst].insert(key.clone(), value);
                if dst == self.home_shard(&key) {
                    overrides.remove(&key);
                } else {
                    overrides.insert(key, dst);
                }
                moved += 1;
            }
        }
        let occ_after: Vec<usize> = guards.iter().map(|g| g.len()).collect();
        let lens: Vec<usize> = occ_after.clone();
        drop(guards);
        drop(overrides);
        for (idx, len) in lens.into_iter().enumerate() {
            self.note_occupancy(idx, len);
        }
        RebalanceReport { moved, evicted: 0, skew_before, skew_after: skew(&occ_after) }
    }
}

/// SplitMix64 — the crate's seeded RNG for rebalance selection (and the
/// load harness's arrival processes). Deterministic and dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn insert_get_remove_across_shards() {
        let map: ShardMap<u64, String> = ShardMap::new(8);
        for i in 0..100u64 {
            assert!(map.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&42), Some("v42".to_string()));
        assert_eq!(map.insert(42, "new".into()), Some("v42".to_string()));
        assert_eq!(map.remove(&42), Some("new".to_string()));
        assert!(!map.contains_key(&42));
        assert_eq!(map.len(), 99);
        assert!(map.with(&7, |v| v.clone()).is_some());
        map.with_mut(&7, |v| v.push('!'));
        assert_eq!(map.get(&7), Some("v7!".to_string()));
    }

    #[test]
    fn snapshot_merge_order_is_shard_count_independent() {
        let feed = |map: &ShardMap<u64, u64>| {
            for i in (0..200u64).rev() {
                map.insert(i, i * 3);
            }
        };
        let one: ShardMap<u64, u64> = ShardMap::new(1);
        let many: ShardMap<u64, u64> = ShardMap::new(16);
        feed(&one);
        feed(&many);
        assert_eq!(one.snapshot(), many.snapshot());
        // key order, not shard order
        let keys: Vec<u64> = many.snapshot().keys().copied().collect();
        assert_eq!(keys, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_in_key_order_without_cloning() {
        let map: ShardMap<u64, u64> = ShardMap::new(8);
        for i in [7u64, 1, 9, 3, 200, 42] {
            map.insert(i, i * 2);
        }
        let mut seen = Vec::new();
        map.for_each(|k, v| seen.push((*k, *v)));
        assert_eq!(seen, vec![(1, 2), (3, 6), (7, 14), (9, 18), (42, 84), (200, 400)]);
    }

    #[test]
    fn empty_shard_snapshot_exports_cleanly() {
        let map: ShardMap<u64, u64> = ShardMap::new(16);
        assert!(map.snapshot().is_empty());
        assert!(map.is_empty());
        assert_eq!(map.occupancy(), vec![0; 16]);
        assert_eq!(map.occupancy_skew(), 1.0);
        // one entry: 15 shards stay empty, snapshot still merges fine
        map.insert(5, 50);
        assert_eq!(map.snapshot().into_iter().collect::<Vec<_>>(), vec![(5, 50)]);
    }

    #[test]
    fn insert_at_pins_and_repins_without_stranding() {
        let map: ShardMap<u64, &'static str> = ShardMap::new(4);
        map.insert_at(9, "pinned", 2);
        assert_eq!(map.shard_of(&9), 2);
        assert_eq!(map.occupancy()[2], 1);
        // re-pin to another shard: the old copy must vanish
        map.insert_at(9, "moved", 3);
        assert_eq!(map.shard_of(&9), 3);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&9), Some("moved"));
        // pinning to the home shard erases the override
        let home = map.home_shard(&9);
        map.insert_at(9, "home", home);
        assert_eq!(map.shard_of(&9), home);
        assert_eq!(map.len(), 1);
        // removal clears overrides so a later insert uses the home shard
        map.insert_at(11, "x", (map.home_shard(&11) + 1) % 4);
        map.remove(&11);
        map.insert(11, "y");
        assert_eq!(map.shard_of(&11), map.home_shard(&11));
    }

    #[test]
    fn rebalance_is_deterministic_and_keeps_snapshot_bytes() {
        let build = || {
            let map: ShardMap<u64, u64> = ShardMap::new(4);
            // skew everything onto shard 0
            for i in 0..64u64 {
                map.insert_at(i, i, 0);
            }
            map
        };
        let a = build();
        let b = build();
        let before = a.snapshot();
        assert!(a.occupancy_skew() > 3.9, "skew {}", a.occupancy_skew());
        let ra = a.rebalance(1234);
        let rb = b.rebalance(1234);
        assert_eq!(ra, rb, "same seed + occupancy must move the same keys");
        assert!(ra.moved >= 48 - 1, "moved {}", ra.moved);
        assert!(ra.skew_after <= 1.01, "skew after {}", ra.skew_after);
        assert_eq!(a.occupancy(), b.occupancy());
        // placement moved, content did not
        assert_eq!(a.snapshot(), before);
        // lookups still find every key through the override table
        for i in 0..64u64 {
            assert_eq!(a.get(&i), Some(i));
        }
        // a different seed may choose different keys but the same balance
        let c = build();
        let rc = c.rebalance(9);
        assert_eq!(rc.moved, ra.moved);
        assert_eq!(c.snapshot(), before);
    }

    #[test]
    fn evict_where_returns_sorted_pairs_and_clears_overrides() {
        let map: ShardMap<u64, u64> = ShardMap::new(4);
        for i in 0..20u64 {
            map.insert(i, i);
        }
        map.insert_at(100, 100, 1);
        let evicted = map.evict_where(|k, _| *k % 2 == 0);
        let keys: Vec<u64> = evicted.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 100]);
        assert_eq!(map.len(), 10);
        // the evicted pinned key re-inserts at its home shard
        map.insert(100, 1);
        assert_eq!(map.shard_of(&100), map.home_shard(&100));
    }

    #[test]
    fn observer_sees_occupancy_and_lock_waits() {
        struct Counts {
            occupancy: AtomicU64,
            waits: AtomicU64,
        }
        impl ShardObserver for Counts {
            fn lock_wait(&self, _shard: usize, _wait_ns: u64) {
                self.waits.fetch_add(1, Ordering::Relaxed);
            }
            fn occupancy(&self, _shard: usize, _len: usize) {
                self.occupancy.fetch_add(1, Ordering::Relaxed);
            }
        }
        let map: ShardMap<u64, u64> = ShardMap::new(2);
        let counts = Arc::new(Counts { occupancy: AtomicU64::new(0), waits: AtomicU64::new(0) });
        map.set_observer(counts.clone());
        map.insert(1, 1);
        map.insert(2, 2);
        map.remove(&1);
        assert_eq!(counts.occupancy.load(Ordering::Relaxed), 3);
        assert!(counts.waits.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn string_keys_shard_stably() {
        let map: ShardMap<String, u64> = ShardMap::new(8);
        map.insert("tenant-a".into(), 1);
        assert_eq!(map.shard_of(&"tenant-a".to_string()), map.home_shard(&"tenant-a".to_string()));
        assert_eq!("tenant-a".shard_hash(), "tenant-a".to_string().shard_hash());
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
