#![warn(missing_docs)]

//! Sharded multi-tenant platform state.
//!
//! The platform's north star is "heavy traffic from millions of users",
//! but a single mutex-guarded map serializes every tenant behind one
//! lock. This crate provides the striped building blocks the platform
//! layer is rebuilt on:
//!
//! * [`ShardMap`] — a tenant-partitioned key→value store striping
//!   entries across N independently locked shards by FNV-1a of the
//!   typed key (the same idiom as `ei-obs`'s `ObsRegistry`). Snapshots
//!   lock every shard at once and merge in key order, so an export of a
//!   16-shard store is **byte-identical** to the serial reference.
//! * [`QuotaLedger`] — per-shard quota accounting: admitted/denied unit
//!   counters per tenant, checked and charged under only that tenant's
//!   shard lock.
//! * [`DeadLetterShards`] — per-shard dead-letter views, so operators of
//!   a hot shard can inspect exactly the failures their shard produced
//!   without scanning a global queue.
//! * a seeded cross-shard **rebalance/eviction** pass
//!   ([`ShardMap::rebalance`]) for skewed tenant distributions: moves
//!   are a pure function of `(occupancy, seed)`, recorded in an
//!   override table consulted on lookup, and never change snapshot
//!   bytes.
//! * a [`RebalancePolicy`] that closes the telemetry loop: it watches
//!   the per-shard occupancy gauges and derives the rebalance seed from
//!   the observed skew history, so operators no longer hand-pick seeds.
//!
//! Everything is `std`-only and deterministic: shard choice is a pure
//! function of the key, merges are key-ordered, and the rebalance pass
//! is reproducible from its seed.

pub mod dead;
pub mod map;
pub mod policy;
pub mod quota;

pub use dead::{DeadEntry, DeadLetterShards};
pub use map::{fnv1a_u64, RebalanceReport, ShardKey, ShardMap, ShardObserver, SplitMix64};
pub use policy::{RebalancePolicy, RebalancePolicyStatus};
pub use quota::{QuotaDecision, QuotaLedger, QuotaUsage};
